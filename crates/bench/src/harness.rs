//! Cross-validated kernel classification, embedding classification, and
//! table formatting used by every experiment binary.

use x2v_core::GraphKernel;
use x2v_datasets::metrics::accuracy;
use x2v_datasets::splits::stratified_folds;
use x2v_datasets::synthetic::GraphDataset;
use x2v_kernel::gram::{gram_resumable, normalize, try_normalize};
use x2v_kernel::svm::{MulticlassSvm, SvmConfig};
use x2v_linalg::Matrix;

/// k-fold cross-validated SVM accuracy of a kernel on a dataset. The Gram
/// matrix is computed once and cosine-normalised (standard practice for
/// count-valued kernels feeding an SVM).
pub fn kernel_cv_accuracy(
    kernel: &(dyn GraphKernel + Sync),
    dataset: &GraphDataset,
    folds: usize,
    seed: u64,
) -> f64 {
    let _timer = x2v_obs::span("bench/kernel_cv");
    let gram = {
        let _g = x2v_obs::span("bench/gram");
        normalize(&kernel.gram(&dataset.graphs))
    };
    gram_cv_accuracy(&gram, &dataset.labels, folds, seed)
}

/// [`kernel_cv_accuracy`] with a crash-safe Gram build: the `O(n²)` kernel
/// evaluation — the dominant cost — goes through
/// [`x2v_kernel::gram::gram_resumable`], so with an ambient
/// [`x2v_ckpt::Store`] installed the partial matrix survives a crash or a
/// budget trip and a re-run resumes from the last completed row block
/// instead of recomputing. Fold assignment and SVM training are cheap and
/// deterministic, so they simply re-run.
///
/// # Errors
/// Budget/cancellation errors from the ambient [`x2v_guard::Budget`]
/// (metered per kernel evaluation) and numeric failures from
/// normalisation.
pub fn kernel_cv_accuracy_resumable(
    kernel: &(dyn GraphKernel + Sync),
    dataset: &GraphDataset,
    folds: usize,
    seed: u64,
    job: &str,
) -> x2v_guard::Result<f64> {
    let _timer = x2v_obs::span("bench/kernel_cv");
    let gram = {
        let _g = x2v_obs::span("bench/gram");
        try_normalize(&gram_resumable(kernel, &dataset.graphs, job)?)?
    };
    Ok(gram_cv_accuracy(&gram, &dataset.labels, folds, seed))
}

/// k-fold cross-validated SVM accuracy from a precomputed Gram matrix.
pub fn gram_cv_accuracy(gram: &Matrix, labels: &[usize], folds: usize, seed: u64) -> f64 {
    let fold_of = stratified_folds(labels, folds, seed);
    let n = labels.len();
    // Index maps hoisted out of the fold loop: one pass over the samples
    // builds every fold's train/test lists instead of 2·folds full scans.
    let mut train_of_fold: Vec<Vec<usize>> = vec![Vec::with_capacity(n); folds];
    let mut test_of_fold: Vec<Vec<usize>> = vec![Vec::new(); folds];
    for (i, &fi) in fold_of.iter().enumerate() {
        for (f, train) in train_of_fold.iter_mut().enumerate() {
            if f != fi {
                train.push(i);
            }
        }
        test_of_fold[fi].push(i);
    }
    let mut predictions = vec![usize::MAX; n];
    for f in 0..folds {
        let train_idx = &train_of_fold[f];
        let test_idx = &test_of_fold[f];
        // Training sub-Gram: gather rows once, then gather columns per row.
        let nt = train_idx.len();
        let mut sub = Matrix::zeros(nt, nt);
        {
            let _t = x2v_obs::span("bench/fold_subgram");
            for (a, &i) in train_idx.iter().enumerate() {
                let src = gram.row(i);
                let dst = sub.row_mut(a);
                for (d, &j) in dst.iter_mut().zip(train_idx) {
                    *d = src[j];
                }
            }
        }
        let train_labels: Vec<usize> = train_idx.iter().map(|&i| labels[i]).collect();
        let svm = {
            let _t = x2v_obs::span("bench/fold_train");
            MulticlassSvm::train(&sub, &train_labels, SvmConfig::default())
        };
        let _t = x2v_obs::span("bench/fold_predict");
        let mut krow = vec![0.0f64; nt];
        for &q in test_idx {
            let src = gram.row(q);
            for (k, &i) in krow.iter_mut().zip(train_idx) {
                *k = src[i];
            }
            predictions[q] = svm.predict(&krow);
        }
    }
    accuracy(&predictions, labels)
}

/// k-fold cross-validated SVM accuracy of an explicit embedding (its linear
/// kernel) on a dataset.
pub fn embedding_cv_accuracy(
    embeddings: &[Vec<f64>],
    labels: &[usize],
    folds: usize,
    seed: u64,
) -> f64 {
    let _timer = x2v_obs::span("bench/embedding_cv");
    let n = embeddings.len();
    let mut gram = Matrix::zeros(n, n);
    for i in 0..n {
        for j in i..n {
            let v = x2v_linalg::vector::dot(&embeddings[i], &embeddings[j]);
            gram[(i, j)] = v;
            gram[(j, i)] = v;
        }
    }
    gram_cv_accuracy(&normalize(&gram), labels, folds, seed)
}

/// Runs an experiment body under an [`ObsRun`](crate::ObsRun) guard and
/// exits with the workspace-standard exit code for its outcome: 0 on
/// success, otherwise [`GuardError::exit_code`] (see
/// [`x2v_guard::TRIAGE`]), so scripts and CI can branch on *why* an
/// `exp_*` binary stopped instead of pattern-matching stderr. The obs
/// guard drops — writing the run report — before the process exits,
/// including on the error path.
pub fn guarded_main(
    run: &'static str,
    body: impl FnOnce() -> Result<(), x2v_guard::GuardError>,
) -> ! {
    let result = {
        let _obs = crate::ObsRun::new(run);
        body()
    };
    match result {
        Ok(()) => std::process::exit(0),
        Err(e) => {
            eprintln!("[{run}] failed: {e}");
            eprintln!("{}", x2v_guard::TRIAGE);
            std::process::exit(e.exit_code());
        }
    }
}

/// Prints a fixed-width table row.
pub fn print_row(cells: &[String], widths: &[usize]) {
    let mut line = String::new();
    for (cell, &w) in cells.iter().zip(widths) {
        line.push_str(&format!("{cell:<w$}  "));
    }
    println!("{}", line.trim_end());
}

/// Prints a header row plus a separator.
pub fn print_header(cells: &[&str], widths: &[usize]) {
    print_row(
        &cells.iter().map(|s| s.to_string()).collect::<Vec<_>>(),
        widths,
    );
    let total: usize = widths.iter().sum::<usize>() + 2 * widths.len();
    println!("{}", "-".repeat(total));
}

/// Formats a probability/accuracy as a percentage.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", 100.0 * x)
}

#[cfg(test)]
mod tests {
    use super::*;
    use x2v_datasets::synthetic::cycles_vs_trees;
    use x2v_kernel::wl::WlSubtreeKernel;

    #[test]
    fn wl_kernel_solves_easy_dataset() {
        let data = cycles_vs_trees(12, 6, 5);
        let kernel = WlSubtreeKernel::new(3);
        let acc = kernel_cv_accuracy(&kernel, &data, 4, 1);
        assert!(acc >= 0.9, "easy dataset should be nearly solved: {acc}");
    }

    #[test]
    fn resumable_cv_matches_plain_cv_without_store() {
        let data = cycles_vs_trees(10, 6, 4);
        let kernel = WlSubtreeKernel::new(2);
        let plain = kernel_cv_accuracy(&kernel, &data, 3, 7);
        let resumable = kernel_cv_accuracy_resumable(&kernel, &data, 3, 7, "test-cv").unwrap();
        assert_eq!(plain.to_bits(), resumable.to_bits(), "bit-identical CV");
    }

    #[test]
    fn embedding_pipeline_runs() {
        let data = cycles_vs_trees(10, 6, 6);
        // Trivial 2-feature embedding: (order, size) — separates trees from
        // cycles perfectly since m = n vs m = n − 1… up to normalisation.
        let embeds: Vec<Vec<f64>> = data
            .graphs
            .iter()
            .map(|g| vec![g.order() as f64, g.size() as f64])
            .collect();
        let acc = embedding_cv_accuracy(&embeds, &data.labels, 4, 2);
        assert!(acc > 0.5, "{acc}");
    }
}
