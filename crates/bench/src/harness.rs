//! Cross-validated kernel classification, embedding classification, and
//! table formatting used by every experiment binary.

use x2v_core::GraphKernel;
use x2v_datasets::metrics::accuracy;
use x2v_datasets::splits::stratified_folds;
use x2v_datasets::synthetic::GraphDataset;
use x2v_kernel::gram::normalize;
use x2v_kernel::svm::{MulticlassSvm, SvmConfig};
use x2v_linalg::Matrix;

/// k-fold cross-validated SVM accuracy of a kernel on a dataset. The Gram
/// matrix is computed once and cosine-normalised (standard practice for
/// count-valued kernels feeding an SVM).
pub fn kernel_cv_accuracy(
    kernel: &dyn GraphKernel,
    dataset: &GraphDataset,
    folds: usize,
    seed: u64,
) -> f64 {
    let gram = normalize(&kernel.gram(&dataset.graphs));
    gram_cv_accuracy(&gram, &dataset.labels, folds, seed)
}

/// k-fold cross-validated SVM accuracy from a precomputed Gram matrix.
pub fn gram_cv_accuracy(gram: &Matrix, labels: &[usize], folds: usize, seed: u64) -> f64 {
    let fold_of = stratified_folds(labels, folds, seed);
    let mut predictions = vec![usize::MAX; labels.len()];
    for f in 0..folds {
        let train_idx: Vec<usize> = (0..labels.len()).filter(|&i| fold_of[i] != f).collect();
        let test_idx: Vec<usize> = (0..labels.len()).filter(|&i| fold_of[i] == f).collect();
        // Training sub-Gram.
        let nt = train_idx.len();
        let mut sub = Matrix::zeros(nt, nt);
        for (a, &i) in train_idx.iter().enumerate() {
            for (b, &j) in train_idx.iter().enumerate() {
                sub[(a, b)] = gram[(i, j)];
            }
        }
        let train_labels: Vec<usize> = train_idx.iter().map(|&i| labels[i]).collect();
        let svm = MulticlassSvm::train(&sub, &train_labels, SvmConfig::default());
        for &q in &test_idx {
            let krow: Vec<f64> = train_idx.iter().map(|&i| gram[(q, i)]).collect();
            predictions[q] = svm.predict(&krow);
        }
    }
    accuracy(&predictions, labels)
}

/// k-fold cross-validated SVM accuracy of an explicit embedding (its linear
/// kernel) on a dataset.
pub fn embedding_cv_accuracy(
    embeddings: &[Vec<f64>],
    labels: &[usize],
    folds: usize,
    seed: u64,
) -> f64 {
    let n = embeddings.len();
    let mut gram = Matrix::zeros(n, n);
    for i in 0..n {
        for j in i..n {
            let v = x2v_linalg::vector::dot(&embeddings[i], &embeddings[j]);
            gram[(i, j)] = v;
            gram[(j, i)] = v;
        }
    }
    gram_cv_accuracy(&normalize(&gram), labels, folds, seed)
}

/// Prints a fixed-width table row.
pub fn print_row(cells: &[String], widths: &[usize]) {
    let mut line = String::new();
    for (cell, &w) in cells.iter().zip(widths) {
        line.push_str(&format!("{cell:<w$}  "));
    }
    println!("{}", line.trim_end());
}

/// Prints a header row plus a separator.
pub fn print_header(cells: &[&str], widths: &[usize]) {
    print_row(
        &cells.iter().map(|s| s.to_string()).collect::<Vec<_>>(),
        widths,
    );
    let total: usize = widths.iter().sum::<usize>() + 2 * widths.len();
    println!("{}", "-".repeat(total));
}

/// Formats a probability/accuracy as a percentage.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", 100.0 * x)
}

#[cfg(test)]
mod tests {
    use super::*;
    use x2v_datasets::synthetic::cycles_vs_trees;
    use x2v_kernel::wl::WlSubtreeKernel;

    #[test]
    fn wl_kernel_solves_easy_dataset() {
        let data = cycles_vs_trees(12, 6, 5);
        let kernel = WlSubtreeKernel::new(3);
        let acc = kernel_cv_accuracy(&kernel, &data, 4, 1);
        assert!(acc >= 0.9, "easy dataset should be nearly solved: {acc}");
    }

    #[test]
    fn embedding_pipeline_runs() {
        let data = cycles_vs_trees(10, 6, 6);
        // Trivial 2-feature embedding: (order, size) — separates trees from
        // cycles perfectly since m = n vs m = n − 1… up to normalisation.
        let embeds: Vec<Vec<f64>> = data
            .graphs
            .iter()
            .map(|g| vec![g.order() as f64, g.size() as f64])
            .collect();
        let acc = embedding_cv_accuracy(&embeds, &data.labels, 4, 2);
        assert!(acc > 0.5, "{acc}");
    }
}
