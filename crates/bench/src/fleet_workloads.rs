//! Concrete [`x2v_fleet::Workload`]s for the paper's quadratic hot paths:
//! WL-kernel Gram row blocks and random-walk corpus chunks.
//!
//! Both workloads honour the fleet determinism contract: `run_task` is a
//! pure function of (kind, params, task index) — the Gram rows because the
//! WL kernel is deterministic, the walk chunks because each chunk draws
//! from its own seeded RNG stream
//! ([`x2v_embed::walks::generate_walk_chunk`]). Merging the shards in task
//! order therefore reproduces the single-process result bit for bit at any
//! worker count and under any kill schedule.
//!
//! [`from_manifest`] is the worker binary's dispatcher: given the manifest
//! `(kind, params)` it reconstructs the workload in a fresh process.

use std::ops::Range;

use x2v_ckpt::codec::{Dec, Enc};
use x2v_core::GraphKernel;
use x2v_embed::walks::{generate_walk_chunk, walk_chunks, WalkConfig};
use x2v_fleet::Workload;
use x2v_graph::Graph;
use x2v_guard::GuardError;
use x2v_kernel::wl::WlSubtreeKernel;
use x2v_linalg::Matrix;

/// Manifest kind of the WL-kernel Gram workload.
pub const GRAM_KIND: &str = "fleet-gram-wl";
/// Manifest kind of the walk-corpus workload.
pub const WALKS_KIND: &str = "fleet-walks";

/// Guarded site of workload (de)serialisation failures.
const SITE: &str = "fleet/workload";

/// Caps accepted when decoding parameter blobs (graphs, walks).
const MAX_ITEMS: usize = 1 << 24;

fn encode_graph(e: &mut Enc, g: &Graph) {
    let n = g.order();
    let mut edges: Vec<(usize, usize)> = Vec::with_capacity(g.size());
    for v in 0..n {
        for &u in g.neighbours(v) {
            if u > v {
                edges.push((v, u));
            }
        }
    }
    e.u64(n as u64).u64(edges.len() as u64);
    for (v, u) in edges {
        e.u64(v as u64).u64(u as u64);
    }
}

fn decode_graph(d: &mut Dec<'_>) -> Result<Graph, GuardError> {
    let bad = |message: String| GuardError::InvalidInput {
        site: SITE,
        message,
    };
    let n = d.u64("graph order").map_err(|e| bad(e.to_string()))? as usize;
    let m = d
        .len(MAX_ITEMS, "graph size")
        .map_err(|e| bad(e.to_string()))?;
    let mut edges = Vec::with_capacity(m);
    for _ in 0..m {
        let v = d.u64("edge endpoint").map_err(|e| bad(e.to_string()))? as usize;
        let u = d.u64("edge endpoint").map_err(|e| bad(e.to_string()))? as usize;
        edges.push((v, u));
    }
    Graph::from_edges(n, &edges).map_err(|e| bad(format!("manifest graph invalid: {e}")))
}

/// The WL-kernel Gram workload: task `t` computes rows
/// `t·block .. (t+1)·block` of the upper triangle of the `n × n` Gram
/// matrix of [`WlSubtreeKernel`] over a fixed graph list.
pub struct GramWorkload {
    rounds: usize,
    block: usize,
    graphs: Vec<Graph>,
    kernel: WlSubtreeKernel,
}

impl GramWorkload {
    /// Gram workload over `graphs` with WL refinement depth `rounds`,
    /// shipping `block` rows per task.
    ///
    /// # Panics
    /// If `block == 0`.
    pub fn new(rounds: usize, block: usize, graphs: Vec<Graph>) -> Self {
        assert!(block > 0, "row block must be non-empty");
        GramWorkload {
            rounds,
            block,
            graphs,
            kernel: WlSubtreeKernel::new(rounds),
        }
    }

    /// Number of graphs (the Gram matrix is `n × n`).
    pub fn n_graphs(&self) -> usize {
        self.graphs.len()
    }

    /// Rows per task.
    pub fn block(&self) -> usize {
        self.block
    }

    /// Reconstructs the workload from its manifest parameter blob.
    pub fn from_params(params: &[u8]) -> Result<Self, GuardError> {
        let bad = |message: String| GuardError::InvalidInput {
            site: SITE,
            message,
        };
        let mut d = Dec::new(params);
        let rounds = d.u64("wl rounds").map_err(|e| bad(e.to_string()))? as usize;
        let block = d.u64("row block").map_err(|e| bad(e.to_string()))? as usize;
        if block == 0 {
            return Err(bad("row block must be non-empty".into()));
        }
        let n = d
            .len(MAX_ITEMS, "graph count")
            .map_err(|e| bad(e.to_string()))?;
        let mut graphs = Vec::with_capacity(n);
        for _ in 0..n {
            graphs.push(decode_graph(&mut d)?);
        }
        d.finish("gram params tail")
            .map_err(|e| bad(e.to_string()))?;
        Ok(GramWorkload::new(rounds, block, graphs))
    }
}

impl Workload for GramWorkload {
    fn kind(&self) -> &'static str {
        GRAM_KIND
    }

    fn params(&self) -> Vec<u8> {
        let mut e = Enc::new();
        e.u64(self.rounds as u64)
            .u64(self.block as u64)
            .u64(self.graphs.len() as u64);
        for g in &self.graphs {
            encode_graph(&mut e, g);
        }
        e.finish()
    }

    fn num_tasks(&self) -> usize {
        self.graphs.len().div_ceil(self.block)
    }

    fn run_task(&self, task: usize) -> Result<Vec<u8>, GuardError> {
        let n = self.graphs.len();
        let r0 = task * self.block;
        let r1 = ((task + 1) * self.block).min(n);
        if r0 >= n {
            return Err(GuardError::InvalidInput {
                site: SITE,
                message: format!("gram task {task} out of range ({n} graphs)"),
            });
        }
        // Upper-triangle entries only: row i contributes n − i values.
        let mut entries = Vec::with_capacity((r1 - r0) * n);
        for i in r0..r1 {
            for j in i..n {
                entries.push(self.kernel.eval(&self.graphs[i], &self.graphs[j]));
            }
        }
        let mut e = Enc::new();
        e.f64_slice(&entries);
        Ok(e.finish())
    }
}

/// Merges Gram row-block shards into the full symmetric matrix.
///
/// `shards[t]` is the byte payload of task `t` or `None` when the fleet
/// declared it missing. Returns the matrix (missing rows left at zero — a
/// *declared* hole, never a silently wrong value) plus the sorted row
/// indices that are missing.
///
/// # Errors
/// [`GuardError::Storage`] when a present shard fails to decode to its
/// exact expected shape — CRC-valid bytes of the wrong shape mean a
/// protocol bug, not a media fault, and must not be papered over.
pub fn merge_gram(
    n: usize,
    block: usize,
    shards: &[Option<Vec<u8>>],
) -> Result<(Matrix, Vec<usize>), GuardError> {
    let mut m = Matrix::zeros(n, n);
    let mut missing = Vec::new();
    for (t, shard) in shards.iter().enumerate() {
        let r0 = (t * block).min(n);
        let r1 = ((t + 1) * block).min(n);
        let Some(bytes) = shard else {
            missing.extend(r0..r1);
            continue;
        };
        let expect: usize = (r0..r1).map(|i| n - i).sum();
        let mut d = Dec::new(bytes);
        let entries = d
            .f64_vec(expect, "gram shard entries")
            .ok()
            .filter(|v| v.len() == expect && d.finish("gram shard tail").is_ok())
            .ok_or_else(|| GuardError::Storage {
                site: SITE,
                message: format!("gram shard {t} has the wrong shape (want {expect} entries)"),
            })?;
        let mut at = 0;
        for i in r0..r1 {
            for j in i..n {
                m[(i, j)] = entries[at];
                m[(j, i)] = entries[at];
                at += 1;
            }
        }
    }
    Ok((m, missing))
}

/// The walk-corpus workload: task `c` generates chunk `c` of the
/// rep-major walk corpus ([`x2v_embed::walks::walk_chunks`]).
pub struct WalkWorkload {
    config: WalkConfig,
    graph: Graph,
    ranges: Vec<Range<usize>>,
}

impl WalkWorkload {
    /// Walk workload over `graph` with corpus hyperparameters `config`.
    pub fn new(graph: Graph, config: WalkConfig) -> Self {
        let ranges = walk_chunks(&graph, &config);
        WalkWorkload {
            config,
            graph,
            ranges,
        }
    }

    /// Reconstructs the workload from its manifest parameter blob.
    pub fn from_params(params: &[u8]) -> Result<Self, GuardError> {
        let bad = |message: String| GuardError::InvalidInput {
            site: SITE,
            message,
        };
        let mut d = Dec::new(params);
        let walks_per_node = d.u64("walks per node").map_err(|e| bad(e.to_string()))? as usize;
        let walk_length = d.u64("walk length").map_err(|e| bad(e.to_string()))? as usize;
        let p = d.f64("node2vec p").map_err(|e| bad(e.to_string()))?;
        let q = d.f64("node2vec q").map_err(|e| bad(e.to_string()))?;
        let seed = d.u64("walk seed").map_err(|e| bad(e.to_string()))?;
        let graph = decode_graph(&mut d)?;
        d.finish("walk params tail")
            .map_err(|e| bad(e.to_string()))?;
        Ok(WalkWorkload::new(
            graph,
            WalkConfig {
                walks_per_node,
                walk_length,
                p,
                q,
                seed,
            },
        ))
    }
}

impl Workload for WalkWorkload {
    fn kind(&self) -> &'static str {
        WALKS_KIND
    }

    fn params(&self) -> Vec<u8> {
        let mut e = Enc::new();
        e.u64(self.config.walks_per_node as u64)
            .u64(self.config.walk_length as u64)
            .f64(self.config.p)
            .f64(self.config.q)
            .u64(self.config.seed);
        encode_graph(&mut e, &self.graph);
        e.finish()
    }

    fn num_tasks(&self) -> usize {
        self.ranges.len()
    }

    fn run_task(&self, task: usize) -> Result<Vec<u8>, GuardError> {
        let range = self
            .ranges
            .get(task)
            .ok_or_else(|| GuardError::InvalidInput {
                site: SITE,
                message: format!("walk chunk {task} out of range ({})", self.ranges.len()),
            })?
            .clone();
        let walks = generate_walk_chunk(&self.graph, &self.config, task, range);
        let mut e = Enc::new();
        e.u64(walks.len() as u64);
        for w in &walks {
            e.u64(w.len() as u64);
            for &v in w {
                e.u64(v as u64);
            }
        }
        Ok(e.finish())
    }
}

/// Merges walk-chunk shards into the corpus: concatenation in task order,
/// which by the [`x2v_embed::walks`] contract *is*
/// `generate_walks`. Returns the walks plus the missing chunk indices
/// (their walks are simply absent from the corpus).
///
/// # Errors
/// [`GuardError::Storage`] when a present shard fails to decode.
pub fn merge_walks(
    shards: &[Option<Vec<u8>>],
) -> Result<(Vec<Vec<usize>>, Vec<usize>), GuardError> {
    let broken = |t: usize| GuardError::Storage {
        site: SITE,
        message: format!("walk shard {t} does not decode"),
    };
    let mut corpus = Vec::new();
    let mut missing = Vec::new();
    for (t, shard) in shards.iter().enumerate() {
        let Some(bytes) = shard else {
            missing.push(t);
            continue;
        };
        let mut d = Dec::new(bytes);
        let n_walks = d.len(MAX_ITEMS, "walk count").map_err(|_| broken(t))?;
        for _ in 0..n_walks {
            let len = d.len(MAX_ITEMS, "walk length").map_err(|_| broken(t))?;
            let mut walk = Vec::with_capacity(len);
            for _ in 0..len {
                walk.push(d.u64("walk node").map_err(|_| broken(t))? as usize);
            }
            corpus.push(walk);
        }
        d.finish("walk shard tail").map_err(|_| broken(t))?;
    }
    Ok((corpus, missing))
}

/// The worker binary's dispatcher: reconstructs a workload from its
/// manifest `(kind, params)`.
///
/// # Errors
/// [`GuardError::InvalidInput`] on an unknown kind or a malformed blob.
pub fn from_manifest(kind: &str, params: &[u8]) -> Result<Box<dyn Workload>, GuardError> {
    match kind {
        GRAM_KIND => Ok(Box::new(GramWorkload::from_params(params)?)),
        WALKS_KIND => Ok(Box::new(WalkWorkload::from_params(params)?)),
        other => Err(GuardError::InvalidInput {
            site: SITE,
            message: format!("unknown fleet workload kind {other:?}"),
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use x2v_datasets::synthetic::cycles_vs_trees;
    use x2v_embed::walks::generate_walks;
    use x2v_graph::generators::cycle;

    fn run_all(w: &dyn Workload) -> Vec<Option<Vec<u8>>> {
        (0..w.num_tasks())
            .map(|t| Some(w.run_task(t).unwrap()))
            .collect()
    }

    #[test]
    fn gram_merge_is_bit_identical_to_direct_gram() {
        let data = cycles_vs_trees(10, 6, 3);
        let w = GramWorkload::new(3, 3, data.graphs.clone());
        let n = w.n_graphs();
        let (merged, missing) = merge_gram(n, w.block(), &run_all(&w)).unwrap();
        assert!(missing.is_empty());
        let direct = WlSubtreeKernel::new(3).gram(&data.graphs);
        for i in 0..n {
            for j in 0..n {
                assert_eq!(
                    merged[(i, j)].to_bits(),
                    direct[(i, j)].to_bits(),
                    "({i},{j})"
                );
            }
        }
    }

    #[test]
    fn gram_round_trips_through_manifest_params() {
        let data = cycles_vs_trees(8, 5, 1);
        let w = GramWorkload::new(2, 2, data.graphs);
        let back = from_manifest(w.kind(), &w.params()).unwrap();
        assert_eq!(back.num_tasks(), w.num_tasks());
        for t in 0..w.num_tasks() {
            assert_eq!(
                back.run_task(t).unwrap(),
                w.run_task(t).unwrap(),
                "task {t}"
            );
        }
    }

    #[test]
    fn gram_merge_declares_missing_rows() {
        let data = cycles_vs_trees(8, 5, 2);
        let w = GramWorkload::new(2, 3, data.graphs);
        let n = w.n_graphs();
        let mut shards = run_all(&w);
        shards[1] = None;
        let (_, missing) = merge_gram(n, w.block(), &shards).unwrap();
        assert_eq!(missing, vec![3, 4, 5], "block 1 of width 3");
        // A wrong-shape shard is a typed storage error, not a hole.
        shards[1] = Some(vec![1, 2, 3]);
        assert!(matches!(
            merge_gram(n, w.block(), &shards),
            Err(GuardError::Storage { .. })
        ));
    }

    #[test]
    fn walk_merge_is_bit_identical_to_generate_walks() {
        let g = cycle(9);
        let cfg = WalkConfig {
            walks_per_node: 4,
            walk_length: 12,
            ..Default::default()
        };
        let w = WalkWorkload::new(g.clone(), cfg.clone());
        let (merged, missing) = merge_walks(&run_all(&w)).unwrap();
        assert!(missing.is_empty());
        assert_eq!(merged, generate_walks(&g, &cfg));
        // And through the manifest round trip.
        let back = from_manifest(w.kind(), &w.params()).unwrap();
        assert_eq!(back.run_task(0).unwrap(), w.run_task(0).unwrap());
    }
}
