//! E21a: 1-WL scaling (the paper cites O((n+m) log n) algorithms; ours is
//! rounds × O(n + m) with hashing) and k-WL cost growth in k.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;
use x2v_graph::generators::{gnp, random_regular};
use x2v_wl::kwl::KwlRefiner;
use x2v_wl::Refiner;

fn bench_1wl_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("1wl_refine_to_stable");
    for n in [50usize, 100, 200, 400] {
        let mut rng = StdRng::seed_from_u64(1);
        let g = gnp(n, 8.0 / n as f64, &mut rng);
        group.bench_with_input(BenchmarkId::from_parameter(n), &g, |b, g| {
            b.iter(|| {
                let mut r = Refiner::new();
                black_box(r.refine_to_stable(g).stable_round)
            })
        });
    }
    group.finish();
}

fn bench_kwl_dimension(c: &mut Criterion) {
    let mut group = c.benchmark_group("kwl_by_dimension");
    let mut rng = StdRng::seed_from_u64(2);
    let g = random_regular(10, 3, &mut rng);
    for k in [2usize, 3] {
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, &k| {
            b.iter(|| {
                let mut r = KwlRefiner::new(k);
                black_box(r.run(&g).rounds)
            })
        });
    }
    group.finish();
}

fn bench_wl_kernel_gram(c: &mut Criterion) {
    use x2v_core::GraphKernel;
    use x2v_kernel::wl::WlSubtreeKernel;
    let mut rng = StdRng::seed_from_u64(3);
    let graphs: Vec<_> = (0..30).map(|_| gnp(25, 0.2, &mut rng)).collect();
    c.bench_function("wl_t5_gram_30x25nodes", |b| {
        b.iter(|| {
            let k = WlSubtreeKernel::new(5);
            black_box(k.gram(&graphs))
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_1wl_scaling, bench_kwl_dimension, bench_wl_kernel_gram
}
criterion_main!(benches);
