//! Observability overhead benchmarks backing the x2v-obs cost claims:
//! a disabled span is a single relaxed atomic load (target: < 5 ns/call)
//! and enabling collection costs < 5% on an instrumented WL-kernel Gram
//! computation.
//!
//! The Gram comparison is also asserted directly (with slack for machine
//! noise) so a regression fails the bench run rather than just shifting a
//! number nobody reads.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;
use std::time::Instant;
use x2v_core::GraphKernel;
use x2v_graph::generators::gnp;
use x2v_kernel::wl::WlSubtreeKernel;

fn bench_disabled_span(c: &mut Criterion) {
    x2v_obs::set_enabled(false);
    c.bench_function("obs_span_disabled", |b| {
        b.iter(|| {
            let guard = x2v_obs::span(black_box("bench/disabled"));
            black_box(&guard);
        })
    });
    c.bench_function("obs_counter_disabled", |b| {
        b.iter(|| x2v_obs::counter_add(black_box("bench/disabled_counter"), 1))
    });

    // Direct assertion that a span with tracing *compiled in but disabled*
    // (x2v-prof linked, X2V_TRACE unset, obs off) still costs nanoseconds:
    // the fast path is one relaxed atomic load. Budget 10 ns/call with
    // headroom for shared-machine noise; the criterion numbers above carry
    // the precise figure.
    assert!(
        !x2v_prof::tracing_enabled(),
        "tracing must be off for the disabled-cost assertion"
    );
    let reps: u32 = 2_000_000;
    for _ in 0..reps / 10 {
        // warm up
        let guard = x2v_obs::span(black_box("bench/trace_disabled"));
        black_box(&guard);
    }
    let start = Instant::now();
    for _ in 0..reps {
        let guard = x2v_obs::span(black_box("bench/trace_disabled"));
        black_box(&guard);
    }
    let per_call_ns = start.elapsed().as_nanos() as f64 / reps as f64;
    println!("disabled span with tracer linked: {per_call_ns:.2} ns/call");
    assert!(
        per_call_ns < 10.0,
        "disabled span costs {per_call_ns:.2} ns/call (budget 10 ns)"
    );
}

fn bench_enabled_span(c: &mut Criterion) {
    x2v_obs::set_enabled(true);
    c.bench_function("obs_span_enabled", |b| {
        b.iter(|| {
            let guard = x2v_obs::span(black_box("bench/enabled"));
            black_box(&guard);
        })
    });
    x2v_obs::set_enabled(false);
    x2v_obs::reset();
}

fn bench_windowed_record(c: &mut Criterion) {
    // Disabled, a windowed record must stay on the same one-atomic-load
    // fast path as everything else in x2v-obs.
    x2v_obs::set_enabled(false);
    c.bench_function("obs_windowed_counter_disabled", |b| {
        b.iter(|| x2v_obs::windowed_counter_add(black_box("bench/w_disabled"), 1))
    });
    let reps: u32 = 2_000_000;
    for _ in 0..reps / 10 {
        x2v_obs::windowed_counter_add(black_box("bench/w_disabled"), 1);
    }
    let start = Instant::now();
    for _ in 0..reps {
        x2v_obs::windowed_counter_add(black_box("bench/w_disabled"), 1);
    }
    let per_call_ns = start.elapsed().as_nanos() as f64 / reps as f64;
    println!("disabled windowed counter: {per_call_ns:.2} ns/call");
    assert!(
        per_call_ns < 10.0,
        "disabled windowed record costs {per_call_ns:.2} ns/call (budget 10 ns)"
    );

    // Enabled, it is two uncontended mutex-protected hash updates
    // (lifetime registry + current window bucket). That belongs at
    // request granularity, so budget single-digit microseconds with
    // generous headroom for shared-machine noise.
    x2v_obs::set_enabled(true);
    c.bench_function("obs_windowed_counter_enabled", |b| {
        b.iter(|| x2v_obs::windowed_counter_add(black_box("bench/w_enabled"), 1))
    });
    c.bench_function("obs_windowed_observe_enabled", |b| {
        b.iter(|| x2v_obs::windowed_observe(black_box("bench/w_hist"), black_box(1.5)))
    });
    let reps: u32 = 200_000;
    for _ in 0..reps / 10 {
        x2v_obs::windowed_observe(black_box("bench/w_hist"), black_box(1.5));
    }
    let start = Instant::now();
    for _ in 0..reps {
        x2v_obs::windowed_observe(black_box("bench/w_hist"), black_box(1.5));
    }
    let per_call_us = start.elapsed().as_secs_f64() * 1e6 / reps as f64;
    println!("enabled windowed observe: {per_call_us:.3} µs/call");
    assert!(
        per_call_us < 10.0,
        "enabled windowed record costs {per_call_us:.3} µs/call (budget 10 µs)"
    );
    x2v_obs::set_enabled(false);
    x2v_obs::reset();
    x2v_obs::global_window().reset();
}

fn gram_secs(graphs: &[x2v_graph::Graph], reps: usize) -> f64 {
    let start = Instant::now();
    for _ in 0..reps {
        let k = WlSubtreeKernel::new(5);
        black_box(k.gram(graphs));
    }
    start.elapsed().as_secs_f64()
}

fn bench_instrumented_gram(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(17);
    let graphs: Vec<_> = (0..30).map(|_| gnp(25, 0.2, &mut rng)).collect();

    x2v_obs::set_enabled(false);
    c.bench_function("wl_gram_obs_off", |b| {
        b.iter(|| {
            let k = WlSubtreeKernel::new(5);
            black_box(k.gram(&graphs))
        })
    });

    x2v_obs::set_enabled(true);
    c.bench_function("wl_gram_obs_on", |b| {
        b.iter(|| {
            let k = WlSubtreeKernel::new(5);
            black_box(k.gram(&graphs))
        })
    });
    x2v_obs::set_enabled(false);
    x2v_obs::reset();

    // Direct regression check: collection must cost well under 5% on the
    // Gram hot path. 15% asserted to keep shared-machine noise from
    // flaking the build; the printed numbers carry the precise story.
    let reps = 30;
    gram_secs(&graphs, 3); // warm up caches and the interner allocator
    x2v_obs::set_enabled(false);
    let off = gram_secs(&graphs, reps);
    x2v_obs::set_enabled(true);
    let on = gram_secs(&graphs, reps);
    x2v_obs::set_enabled(false);
    x2v_obs::reset();
    let overhead = (on - off) / off * 100.0;
    println!("wl_gram obs overhead: off {off:.4}s on {on:.4}s ({overhead:+.2}%)");
    assert!(
        on <= off * 1.15,
        "obs-enabled Gram regressed {overhead:.1}% (budget 15%)"
    );
}

criterion_group!(
    benches,
    bench_disabled_span,
    bench_enabled_span,
    bench_windowed_record,
    bench_instrumented_gram
);
criterion_main!(benches);
