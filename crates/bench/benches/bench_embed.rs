//! E21d: learned-embedding training cost (node2vec walks + SGNS, graph2vec)
//! and the Frank-Wolfe relaxation.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;
use x2v_core::NodeEmbedding;
use x2v_embed::node2vec::{Node2Vec, Node2VecConfig};
use x2v_graph::generators::{cycle, gnp};
use x2v_similarity::relaxed::relaxed_distance;

fn bench_node2vec(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(8);
    let g = gnp(50, 0.1, &mut rng);
    let mut cfg = Node2VecConfig::default();
    cfg.sgns.dim = 16;
    cfg.sgns.epochs = 2;
    cfg.walks.walks_per_node = 5;
    cfg.walks.walk_length = 20;
    c.bench_function("node2vec_50nodes", |b| {
        b.iter(|| black_box(Node2Vec::new(cfg.clone()).embed_nodes(&g)))
    });
}

fn bench_frank_wolfe(c: &mut Criterion) {
    let g = cycle(12);
    let h = x2v_graph::generators::path(12);
    c.bench_function("frank_wolfe_relaxed_dist_12", |b| {
        b.iter(|| black_box(relaxed_distance(&g, &h)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_node2vec, bench_frank_wolfe
}
criterion_main!(benches);
