//! E21c: kernel computation cost — the paper's efficiency claim for the WL
//! subtree kernel against shortest-path, graphlet and random-walk kernels.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;
use x2v_core::GraphKernel;
use x2v_graph::generators::gnp;
use x2v_kernel::graphlet::GraphletKernel;
use x2v_kernel::random_walk::RandomWalkKernel;
use x2v_kernel::shortest_path::ShortestPathKernel;
use x2v_kernel::wl::WlSubtreeKernel;

fn bench_kernel_gram(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(7);
    let graphs: Vec<_> = (0..20).map(|_| gnp(20, 0.2, &mut rng)).collect();
    let mut group = c.benchmark_group("gram_20x20nodes");
    group.sample_size(10);
    group.bench_function("wl_t5", |b| {
        b.iter(|| black_box(WlSubtreeKernel::new(5).gram(&graphs)))
    });
    group.bench_function("shortest_path", |b| {
        b.iter(|| black_box(ShortestPathKernel::new().gram(&graphs)))
    });
    group.bench_function("graphlet34", |b| {
        b.iter(|| black_box(GraphletKernel::three_four().gram(&graphs)))
    });
    group.bench_function("random_walk", |b| {
        b.iter(|| black_box(RandomWalkKernel::new(0.05, 5).gram(&graphs)))
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_kernel_gram
}
criterion_main!(benches);
