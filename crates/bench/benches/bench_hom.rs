//! E21b: homomorphism counting cost vs pattern treewidth — the
//! Dalmau–Jonsson dichotomy made measurable: the decomposition DP scales
//! polynomially for tw 1/2 patterns while brute force grows exponentially.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;
use x2v_graph::generators::{cycle, gnp, grid, path};
use x2v_hom::{brute, decomp, trees, walks};

fn bench_tree_dp_vs_brute(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(4);
    let target = gnp(30, 0.2, &mut rng);
    let pattern = path(8);
    let mut group = c.benchmark_group("hom_P8_into_G30");
    group.bench_function("tree_dp", |b| {
        b.iter(|| black_box(trees::hom_count_tree(&pattern, &target)))
    });
    group.bench_function("walk_closed_form", |b| {
        b.iter(|| black_box(walks::hom_path(8, &target)))
    });
    group.bench_function("brute_force", |b| {
        b.iter(|| black_box(brute::hom_count(&pattern, &target)))
    });
    group.finish();
}

fn bench_by_treewidth(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(5);
    let target = gnp(18, 0.3, &mut rng);
    let patterns: Vec<(&str, x2v_graph::Graph)> = vec![
        ("tw1_path6", path(6)),
        ("tw2_cycle6", cycle(6)),
        ("tw2_grid2x3", grid(2, 3)),
        ("tw3_grid3x3", grid(3, 3)),
    ];
    let mut group = c.benchmark_group("hom_decomp_by_treewidth");
    group.sample_size(10);
    for (name, p) in &patterns {
        group.bench_with_input(BenchmarkId::from_parameter(name), p, |b, p| {
            b.iter(|| black_box(decomp::hom_count_decomp(p, &target)))
        });
    }
    group.finish();
}

fn bench_hom_basis_embedding(c: &mut Criterion) {
    use x2v_hom::vectors::HomBasis;
    let mut rng = StdRng::seed_from_u64(6);
    let graphs: Vec<_> = (0..10).map(|_| gnp(20, 0.25, &mut rng)).collect();
    let basis = HomBasis::trees_and_cycles(20);
    c.bench_function("hom_basis20_embed_10x20nodes", |b| {
        b.iter(|| {
            for g in &graphs {
                black_box(basis.embed_log(g));
            }
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_tree_dp_vs_brute, bench_by_treewidth, bench_hom_basis_embedding
}
criterion_main!(benches);
