//! Golden validation of the Chrome Trace Event exporter: the emitted
//! document is valid Trace Event Format JSON — balanced `B`/`E` pairs per
//! tid, monotonically non-decreasing `ts` per thread, stable key order —
//! and events from worker threads land with distinct `tid`s.

use x2v_prof::json::JsonValue;

/// Walks `traceEvents`, returning per-tid event lists (metadata excluded).
fn events_by_tid(doc: &JsonValue) -> Vec<(i64, Vec<JsonValue>)> {
    let mut by_tid: Vec<(i64, Vec<JsonValue>)> = Vec::new();
    for e in doc.get("traceEvents").unwrap().as_arr().unwrap() {
        let ph = e.get("ph").unwrap().as_str().unwrap();
        if ph == "M" {
            continue;
        }
        let tid = e.get("tid").unwrap().as_f64().unwrap() as i64;
        match by_tid.iter_mut().find(|(t, _)| *t == tid) {
            Some((_, evs)) => evs.push(e.clone()),
            None => by_tid.push((tid, vec![e.clone()])),
        }
    }
    by_tid
}

// One #[test]: tracing state is process-global, so scenarios must not
// interleave.
#[test]
fn exporter_emits_valid_balanced_trace() {
    x2v_prof::enable();
    x2v_prof::set_alloc_counting(true);
    x2v_prof::reset();

    // Nested spans on the main thread, with a deliberate allocation inside
    // the inner span and an instant event between them.
    {
        let _outer = x2v_obs::span("trace/outer");
        x2v_obs::mark("trace/marker");
        {
            let _inner = x2v_obs::span("trace/alloc_heavy");
            let sink: Vec<u8> = Vec::with_capacity(1 << 20);
            std::hint::black_box(&sink);
        }
    }

    // Worker threads: each must land on its own tid.
    let handles: Vec<_> = (0..2)
        .map(|i| {
            std::thread::spawn(move || {
                for _ in 0..3 {
                    let _s = x2v_obs::span(if i == 0 {
                        "trace/worker_a"
                    } else {
                        "trace/worker_b"
                    });
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }

    // A span whose guard never drops: the exporter must close it
    // synthetically to keep the document balanced.
    std::mem::forget(x2v_obs::span("trace/left_open"));

    let (json, stats) = x2v_prof::trace_json_with_stats("golden");
    x2v_prof::disable();
    x2v_prof::set_alloc_counting(false);

    let doc = JsonValue::parse(&json).expect("exporter must emit valid JSON");

    // Stable top-level key order.
    let top_keys: Vec<&str> = doc
        .as_obj()
        .unwrap()
        .iter()
        .map(|(k, _)| k.as_str())
        .collect();
    assert_eq!(top_keys, ["displayTimeUnit", "otherData", "traceEvents"]);
    assert_eq!(
        doc.get("otherData")
            .unwrap()
            .get("schema")
            .unwrap()
            .as_str(),
        Some("x2v-trace/v1")
    );

    // Stable per-event key order: fixed prefix, then "s" (instants) or
    // "args" (ends), nothing else.
    for e in doc.get("traceEvents").unwrap().as_arr().unwrap() {
        let keys: Vec<&str> = e
            .as_obj()
            .unwrap()
            .iter()
            .map(|(k, _)| k.as_str())
            .collect();
        if e.get("ph").unwrap().as_str() == Some("M") {
            continue;
        }
        assert_eq!(&keys[..6], ["name", "cat", "ph", "ts", "pid", "tid"]);
        match e.get("ph").unwrap().as_str().unwrap() {
            "B" => assert_eq!(keys.len(), 6),
            "E" => assert_eq!(&keys[6..], ["args"]),
            "i" => assert_eq!(&keys[6..], ["s"]),
            other => panic!("unexpected phase {other}"),
        }
    }

    let by_tid = events_by_tid(&doc);

    // Balanced B/E per tid: depth never negative, zero at the end.
    for (tid, evs) in &by_tid {
        let mut depth = 0i64;
        let mut last_ts = f64::NEG_INFINITY;
        for e in evs {
            let ts = e.get("ts").unwrap().as_f64().unwrap();
            assert!(
                ts >= last_ts,
                "ts must be non-decreasing within tid {tid}: {ts} < {last_ts}"
            );
            last_ts = ts;
            match e.get("ph").unwrap().as_str().unwrap() {
                "B" => depth += 1,
                "E" => {
                    depth -= 1;
                    assert!(depth >= 0, "E without open B on tid {tid}");
                }
                _ => {}
            }
        }
        assert_eq!(depth, 0, "unbalanced B/E on tid {tid}");
    }

    // The forgotten span was closed synthetically.
    assert!(stats.synthetic_closes >= 1);
    assert!(json.contains("\"truncated\": true"));

    // Nesting: outer B precedes inner B, inner E precedes outer E on the
    // main thread's stream.
    let main_events = by_tid
        .iter()
        .map(|(_, evs)| evs)
        .find(|evs| {
            evs.iter()
                .any(|e| e.get("name").unwrap().as_str() == Some("trace/outer"))
        })
        .expect("main-thread events present");
    let pos = |name: &str, ph: &str| {
        main_events
            .iter()
            .position(|e| {
                e.get("name").unwrap().as_str() == Some(name)
                    && e.get("ph").unwrap().as_str() == Some(ph)
            })
            .unwrap_or_else(|| panic!("missing {ph} event for {name}"))
    };
    assert!(pos("trace/outer", "B") < pos("trace/alloc_heavy", "B"));
    assert!(pos("trace/alloc_heavy", "E") < pos("trace/outer", "E"));
    // The instant marker sits inside the outer span.
    let marker = pos("trace/marker", "i");
    assert!(pos("trace/outer", "B") < marker && marker < pos("trace/outer", "E"));

    // Allocation attribution: the inner span's E event carries >= 1 MiB.
    let inner_end = &main_events[pos("trace/alloc_heavy", "E")];
    let bytes = inner_end
        .get("args")
        .unwrap()
        .get("alloc_bytes")
        .unwrap()
        .as_f64()
        .unwrap();
    assert!(bytes >= (1 << 20) as f64, "alloc_bytes = {bytes}");

    // Cross-thread: the two workers recorded under two tids, both distinct
    // from the main thread's.
    let tid_of = |name: &str| {
        by_tid
            .iter()
            .find(|(_, evs)| {
                evs.iter()
                    .any(|e| e.get("name").unwrap().as_str() == Some(name))
            })
            .map(|(tid, _)| *tid)
            .unwrap_or_else(|| panic!("no events named {name}"))
    };
    let (ta, tb, tmain) = (
        tid_of("trace/worker_a"),
        tid_of("trace/worker_b"),
        tid_of("trace/outer"),
    );
    assert_ne!(ta, tb, "worker threads must have distinct tids");
    assert_ne!(ta, tmain);
    assert_ne!(tb, tmain);

    // Each worker recorded 3 B + 3 E = 6 events.
    let worker_a_events = &by_tid.iter().find(|(t, _)| *t == ta).unwrap().1;
    assert_eq!(worker_a_events.len(), 6);

    assert_eq!(stats.dropped, 0);
    x2v_prof::reset();
}

#[test]
fn write_trace_lands_in_target_dir() {
    // Runs in the same process; only touches the file-writing path (any
    // concurrently recorded events are irrelevant to the assertion).
    let dir = std::env::temp_dir().join("x2v_prof_trace_test");
    std::env::set_var("X2V_TRACE_DIR", &dir);
    let path = x2v_prof::write_trace("unit run/with weird name").unwrap();
    std::env::remove_var("X2V_TRACE_DIR");
    assert!(path.ends_with("unit_run_with_weird_name.trace.json"));
    let content = std::fs::read_to_string(&path).unwrap();
    assert!(JsonValue::parse(&content).is_ok());
    let _ = std::fs::remove_dir_all(&dir);
}
