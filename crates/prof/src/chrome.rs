//! Chrome Trace Event Format export.
//!
//! Emits the JSON Object Format (`{"traceEvents": [...]}`) understood by
//! `chrome://tracing` and [Perfetto](https://ui.perfetto.dev): duration
//! events as `ph: "B"`/`"E"` pairs per thread (the viewers derive nesting
//! from per-thread B/E ordering), point events as `ph: "i"` with thread
//! scope, and `M` metadata records naming the process and threads.
//! Timestamps are microseconds with nanosecond precision kept in the
//! fractional part, relative to the first event of the process.
//!
//! The exporter *sanitises* each thread's stream so the output is always
//! well-formed even if the bounded ring dropped events: `E` events with no
//! open `B` are skipped, and `B` events still open at snapshot time are
//! closed with a synthetic `E` carrying `"truncated": true`.

use crate::ring::{self, Event, Phase};
use std::fmt::Write as _;
use std::path::PathBuf;

/// Identifies the trace layout; recorded under `otherData.schema`.
pub const TRACE_SCHEMA: &str = "x2v-trace/v1";

/// Summary of one export.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TraceStats {
    /// Events written (excluding metadata records).
    pub events: usize,
    /// Events dropped at record time because a thread buffer was full.
    pub dropped: u64,
    /// Threads that recorded at least one event.
    pub threads: usize,
    /// Synthetic `E` events appended to close still-open spans.
    pub synthetic_closes: usize,
    /// Orphan `E` events skipped (begin lost to the bounded buffer).
    pub orphan_ends: usize,
}

/// Formats nanoseconds as Chrome-trace microseconds (`123.456`), keeping
/// full nanosecond precision with integer arithmetic only.
fn fmt_ts_us(ns: u64) -> String {
    format!("{}.{:03}", ns / 1000, ns % 1000)
}

fn push_event(out: &mut String, e: &Event, tid: u32) {
    let _ = write!(
        out,
        "    {{\"name\": \"{}\", \"cat\": \"x2v\", \"ph\": \"{}\", \"ts\": {}, \"pid\": 1, \"tid\": {}",
        x2v_obs::json_escape(e.name),
        match e.phase {
            Phase::Begin => "B",
            Phase::End => "E",
            Phase::Instant => "i",
        },
        fmt_ts_us(e.ts_ns),
        tid,
    );
    match e.phase {
        Phase::Instant => out.push_str(", \"s\": \"t\"}"),
        Phase::End => {
            let _ = write!(
                out,
                ", \"args\": {{\"alloc_bytes\": {}, \"allocs\": {}}}}}",
                e.alloc_bytes, e.allocs
            );
        }
        Phase::Begin => out.push('}'),
    }
}

/// Renders everything recorded so far as a Chrome Trace Event Format JSON
/// document, returning the document and its export stats.
pub fn trace_json_with_stats(run: &str) -> (String, TraceStats) {
    let (threads, dropped) = ring::snapshot();
    let mut stats = TraceStats {
        dropped,
        ..TraceStats::default()
    };
    let mut out = String::new();
    out.push_str("{\n  \"displayTimeUnit\": \"ms\",\n");
    let _ = writeln!(
        out,
        "  \"otherData\": {{\"schema\": \"{}\", \"run\": \"{}\", \"dropped_events\": {}}},",
        TRACE_SCHEMA,
        x2v_obs::json_escape(run),
        dropped
    );
    out.push_str("  \"traceEvents\": [\n");
    out.push_str(
        "    {\"name\": \"process_name\", \"ph\": \"M\", \"pid\": 1, \"tid\": 0, \"args\": {\"name\": \"x2vec\"}}",
    );
    for (tid, events) in &threads {
        if events.is_empty() {
            continue;
        }
        stats.threads += 1;
        out.push_str(",\n");
        let _ = write!(
            out,
            "    {{\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 1, \"tid\": {tid}, \"args\": {{\"name\": \"thread-{tid}\"}}}}",
        );
        // Per-thread sanitisation: viewers match B/E by order within a
        // thread, so track the open-span stack while emitting.
        let mut open: Vec<&'static str> = Vec::new();
        let mut last_ts = 0u64;
        for e in events {
            last_ts = last_ts.max(e.ts_ns);
            match e.phase {
                Phase::Begin => open.push(e.name),
                Phase::End => {
                    if open.pop().is_none() {
                        stats.orphan_ends += 1;
                        continue;
                    }
                }
                Phase::Instant => {}
            }
            out.push_str(",\n");
            push_event(&mut out, e, *tid);
            stats.events += 1;
        }
        while let Some(name) = open.pop() {
            out.push_str(",\n");
            let _ = write!(
                out,
                "    {{\"name\": \"{}\", \"cat\": \"x2v\", \"ph\": \"E\", \"ts\": {}, \"pid\": 1, \"tid\": {}, \"args\": {{\"truncated\": true}}}}",
                x2v_obs::json_escape(name),
                fmt_ts_us(last_ts),
                tid,
            );
            stats.events += 1;
            stats.synthetic_closes += 1;
        }
    }
    out.push_str("\n  ]\n}\n");
    (out, stats)
}

/// Renders the current trace as Chrome Trace Event Format JSON.
pub fn trace_json(run: &str) -> String {
    trace_json_with_stats(run).0
}

/// Writes the trace to `<dir>/<run>.trace.json` where `<dir>` is
/// `$X2V_TRACE_DIR` or `target/trace`, and returns the path. The write is
/// atomic (`x2v_obs::fsio::atomic_write`): a crash mid-export can never
/// leave a torn trace behind.
pub fn write_trace(run: &str) -> std::io::Result<PathBuf> {
    let dir = std::env::var("X2V_TRACE_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|_| PathBuf::from("target").join("trace"));
    std::fs::create_dir_all(&dir)?;
    let safe: String = run
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '-' || c == '_' || c == '.' {
                c
            } else {
                '_'
            }
        })
        .collect();
    let path = dir.join(format!("{safe}.trace.json"));
    x2v_obs::fsio::atomic_write(&path, trace_json(run).as_bytes())?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ts_formatting_is_integer_exact() {
        assert_eq!(fmt_ts_us(0), "0.000");
        assert_eq!(fmt_ts_us(999), "0.999");
        assert_eq!(fmt_ts_us(1000), "1.000");
        assert_eq!(fmt_ts_us(1_234_567), "1234.567");
    }

    #[test]
    fn empty_trace_is_well_formed() {
        let (json, stats) = trace_json_with_stats("empty");
        assert!(json.contains("\"traceEvents\": ["));
        assert!(json.contains(TRACE_SCHEMA));
        assert_eq!(stats.synthetic_closes, 0);
    }
}
