//! Per-thread event buffers.
//!
//! Each tracing thread owns one bounded buffer behind its own mutex, so
//! the record path never contends with other threads — the only other
//! party that ever takes a thread's lock is the exporter at snapshot time
//! ("lock-light": an uncontended lock/unlock pair per event, plus one
//! global registry lock on a thread's *first* event only). Buffers are
//! bounded (`X2V_TRACE_CAP` events per thread, default 65 536); once full,
//! further events are counted as dropped rather than reallocating without
//! bound inside an instrumented hot path.

use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, LazyLock, Mutex, OnceLock};
use std::time::Instant;

/// Default per-thread event capacity.
const DEFAULT_CAP: usize = 65_536;

/// Event phase, mirroring the Chrome Trace Event `ph` values we emit.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum Phase {
    /// Span opened (`"B"`).
    Begin,
    /// Span closed (`"E"`).
    End,
    /// Point event (`"i"`).
    Instant,
}

/// One recorded event. `alloc_bytes`/`allocs` carry the allocation delta
/// attributed to the span (End events only; zero elsewhere or when
/// allocation counting is off).
#[derive(Clone, Copy, Debug)]
pub(crate) struct Event {
    pub ts_ns: u64,
    pub name: &'static str,
    pub phase: Phase,
    pub alloc_bytes: u64,
    pub allocs: u64,
}

pub(crate) struct ThreadBuf {
    pub tid: u32,
    pub events: Mutex<Vec<Event>>,
    pub dropped: AtomicU64,
}

static REGISTRY: Mutex<Vec<Arc<ThreadBuf>>> = Mutex::new(Vec::new());
static NEXT_TID: AtomicU32 = AtomicU32::new(1);
static EPOCH: OnceLock<Instant> = OnceLock::new();
static CAP: LazyLock<usize> = LazyLock::new(|| {
    std::env::var("X2V_TRACE_CAP")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&c: &usize| c > 0)
        .unwrap_or(DEFAULT_CAP)
});

fn lock_registry() -> std::sync::MutexGuard<'static, Vec<Arc<ThreadBuf>>> {
    REGISTRY.lock().unwrap_or_else(|p| p.into_inner())
}

/// Nanoseconds since the trace epoch (the first event of the process).
pub(crate) fn now_ns() -> u64 {
    let epoch = EPOCH.get_or_init(Instant::now);
    u64::try_from(epoch.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

thread_local! {
    static LOCAL: Arc<ThreadBuf> = {
        let buf = Arc::new(ThreadBuf {
            tid: NEXT_TID.fetch_add(1, Ordering::Relaxed),
            events: Mutex::new(Vec::new()),
            dropped: AtomicU64::new(0),
        });
        lock_registry().push(Arc::clone(&buf));
        buf
    };
}

/// Records one event on the calling thread's buffer.
pub(crate) fn record(event: Event) {
    // try_with: a thread mid-teardown silently drops its events instead of
    // panicking inside a Drop impl.
    let _ = LOCAL.try_with(|buf| {
        let mut events = buf.events.lock().unwrap_or_else(|p| p.into_inner());
        if events.len() < *CAP {
            if events.is_empty() && events.capacity() == 0 {
                // First event: one amortised reservation instead of
                // repeated doubling while tracing a hot path.
                events.reserve(1024.min(*CAP));
            }
            events.push(event);
        } else {
            drop(events);
            buf.dropped.fetch_add(1, Ordering::Relaxed);
        }
    });
}

/// Snapshots every thread buffer: `(tid, events)` pairs sorted by tid,
/// plus the total number of dropped events.
pub(crate) fn snapshot() -> (Vec<(u32, Vec<Event>)>, u64) {
    let registry = lock_registry();
    let mut out = Vec::with_capacity(registry.len());
    let mut dropped = 0;
    for buf in registry.iter() {
        let events = buf.events.lock().unwrap_or_else(|p| p.into_inner());
        out.push((buf.tid, events.clone()));
        dropped += buf.dropped.load(Ordering::Relaxed);
    }
    out.sort_by_key(|(tid, _)| *tid);
    (out, dropped)
}

/// Clears all recorded events and drop counts (for tests).
pub(crate) fn reset() {
    let registry = lock_registry();
    for buf in registry.iter() {
        buf.events.lock().unwrap_or_else(|p| p.into_inner()).clear();
        buf.dropped.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(name: &'static str, phase: Phase) -> Event {
        Event {
            ts_ns: now_ns(),
            name,
            phase,
            alloc_bytes: 0,
            allocs: 0,
        }
    }

    #[test]
    fn events_record_in_order_with_monotone_ts() {
        reset();
        record(ev("a", Phase::Begin));
        record(ev("a", Phase::End));
        let (threads, dropped) = snapshot();
        assert_eq!(dropped, 0);
        let mine: Vec<_> = threads
            .iter()
            .flat_map(|(_, evs)| evs.iter())
            .filter(|e| e.name == "a")
            .collect();
        assert_eq!(mine.len(), 2);
        assert!(mine[0].ts_ns <= mine[1].ts_ns);
        reset();
    }

    #[test]
    fn distinct_threads_get_distinct_tids() {
        reset();
        let handles: Vec<_> = (0..3)
            .map(|_| {
                std::thread::spawn(|| {
                    record(ev("t", Phase::Instant));
                    LOCAL.with(|b| b.tid)
                })
            })
            .collect();
        let mut tids: Vec<u32> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        tids.sort_unstable();
        tids.dedup();
        assert_eq!(tids.len(), 3, "each thread must own a unique tid");
        reset();
    }
}
