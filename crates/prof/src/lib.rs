//! # x2v-prof — event tracing and allocation profiling
//!
//! Where `x2v-obs` answers *"how much time did each operation take in
//! aggregate?"*, this crate answers *"what happened, when, on which
//! thread, and what did it allocate?"*. It provides, with no dependencies
//! beyond `std` and `x2v-obs`:
//!
//! * An **event-tracing backend**: a lock-light per-thread ring buffer of
//!   span begin/end and instant events. It installs itself as the
//!   [`x2v_obs::SpanSink`], so every existing `x2v_obs::span` call site in
//!   the workspace — WL refinement, hom counting, Gram builds, SVM folds,
//!   training epochs — becomes a trace event with correct parent/child
//!   nesting and thread attribution, with no new instrumentation.
//! * A **Chrome Trace Event exporter** ([`write_trace`]): the recorded
//!   timeline lands in `target/trace/<run>.trace.json`, loadable in
//!   Perfetto (`ui.perfetto.dev`) or `chrome://tracing`.
//! * An **allocation profiler** ([`CountingAlloc`], installed as the
//!   process `#[global_allocator]`): allocs/frees/bytes/peak counters,
//!   plus per-span inclusive allocation deltas attached to trace `E`
//!   events (`args.alloc_bytes`, `args.allocs`).
//! * A tiny **JSON reader** ([`json::JsonValue`]) for the documents the
//!   workspace writes (obs reports, traces, `BENCH_*.json`), used by the
//!   golden tests and `bench_diff`.
//!
//! ## Cost model
//!
//! Tracing is gated on the `X2V_TRACE` environment variable (read once by
//! [`init_from_env`], which the `exp_*` harness calls). While disabled,
//! an instrumented call costs the same single relaxed atomic load as
//! disabled obs collection — the sink is simply never installed, or
//! installed but off (one extra relaxed load). Allocation counting is off
//! unless enabled and costs one relaxed load per allocation when off.
//!
//! ## Environment
//!
//! * `X2V_TRACE` — `1`/`on` enables tracing (`0`/`off`/unset disables);
//! * `X2V_TRACE_DIR` — trace output directory (default `target/trace`);
//! * `X2V_TRACE_CAP` — per-thread event capacity (default 65 536; when
//!   full, further events are dropped and counted, never unbounded).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod alloc;
mod chrome;
pub mod json;
mod ring;

pub use alloc::{
    alloc_counting_enabled, alloc_snapshot, set_alloc_counting, thread_alloc_totals, AllocSnapshot,
    CountingAlloc,
};
pub use chrome::{trace_json, trace_json_with_stats, write_trace, TraceStats, TRACE_SCHEMA};

use ring::{Event, Phase};
use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, Ordering};

static TRACING: AtomicBool = AtomicBool::new(false);

thread_local! {
    /// Per-thread open-span stack: thread-local `(bytes, allocs)` totals
    /// sampled at span begin, popped at end to attribute the delta.
    static FRAMES: RefCell<Vec<(u64, u64)>> = const { RefCell::new(Vec::new()) };
}

/// The [`x2v_obs::SpanSink`] implementation feeding the ring buffers.
struct ProfSink;

impl x2v_obs::SpanSink for ProfSink {
    fn begin(&self, name: &'static str) {
        if !tracing_enabled() {
            return;
        }
        ring::record(Event {
            ts_ns: ring::now_ns(),
            name,
            phase: Phase::Begin,
            alloc_bytes: 0,
            allocs: 0,
        });
        let totals = alloc::thread_alloc_totals();
        let _ = FRAMES.try_with(|f| f.borrow_mut().push(totals));
    }

    fn end(&self, name: &'static str) {
        if !tracing_enabled() {
            return;
        }
        let (bytes0, allocs0) = FRAMES
            .try_with(|f| f.borrow_mut().pop())
            .ok()
            .flatten()
            .unwrap_or_else(alloc::thread_alloc_totals);
        let (bytes1, allocs1) = alloc::thread_alloc_totals();
        ring::record(Event {
            ts_ns: ring::now_ns(),
            name,
            phase: Phase::End,
            alloc_bytes: bytes1.wrapping_sub(bytes0),
            allocs: allocs1.wrapping_sub(allocs0),
        });
    }

    fn instant(&self, name: &'static str) {
        if !tracing_enabled() {
            return;
        }
        ring::record(Event {
            ts_ns: ring::now_ns(),
            name,
            phase: Phase::Instant,
            alloc_bytes: 0,
            allocs: 0,
        });
    }
}

static SINK: ProfSink = ProfSink;

/// Whether event tracing is currently on.
#[inline]
pub fn tracing_enabled() -> bool {
    TRACING.load(Ordering::Relaxed)
}

/// Enables tracing: installs this crate as the process span sink (first
/// installation wins; idempotent for this crate) and turns recording on.
pub fn enable() {
    x2v_obs::install_span_sink(&SINK);
    TRACING.store(true, Ordering::Relaxed);
}

/// Turns recording off (the sink stays installed; per-call cost returns
/// to one relaxed atomic load). Recorded events are kept until [`reset`].
pub fn disable() {
    TRACING.store(false, Ordering::Relaxed);
}

/// Discards all recorded events (for tests).
pub fn reset() {
    ring::reset();
}

/// Reads `X2V_TRACE` and enables tracing when truthy. Returns whether
/// tracing is on. Call once at process start (the `exp_*` harness does).
pub fn init_from_env() -> bool {
    let on = matches!(
        std::env::var("X2V_TRACE").as_deref(),
        Ok(v) if !matches!(v.trim(), "" | "0" | "off" | "false")
    );
    if on {
        enable();
    }
    on
}

/// Records a point event directly (equivalent to [`x2v_obs::mark`] when
/// this crate's sink is installed).
pub fn instant(name: &'static str) {
    if tracing_enabled() {
        ring::record(Event {
            ts_ns: ring::now_ns(),
            name,
            phase: Phase::Instant,
            alloc_bytes: 0,
            allocs: 0,
        });
    }
}
