//! Counting global allocator.
//!
//! [`CountingAlloc`] wraps the system allocator and, when counting is
//! switched on, maintains process-wide allocation statistics
//! (allocations, frees, bytes allocated, live bytes, peak live bytes)
//! plus per-thread running totals that the tracer samples at span
//! begin/end to attribute allocation to the innermost active span
//! (inclusive of children). When counting is off — the default — every
//! hook is a single relaxed atomic load on top of the system allocator.
//!
//! This crate installs the wrapper as the process `#[global_allocator]`,
//! so any binary that links `x2v-prof` (the `exp_*` harness, `bench_suite`)
//! can profile allocation without per-binary setup.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};

/// The process-wide counting allocator (wraps [`System`]).
pub struct CountingAlloc;

#[global_allocator]
static GLOBAL_ALLOC: CountingAlloc = CountingAlloc;

static COUNTING: AtomicBool = AtomicBool::new(false);
static ALLOCS: AtomicU64 = AtomicU64::new(0);
static FREES: AtomicU64 = AtomicU64::new(0);
static BYTES: AtomicU64 = AtomicU64::new(0);
/// Live bytes; signed because blocks allocated before counting was enabled
/// may be freed after, driving the running balance below zero.
static LIVE: AtomicI64 = AtomicI64::new(0);
static PEAK: AtomicI64 = AtomicI64::new(0);

thread_local! {
    static T_BYTES: Cell<u64> = const { Cell::new(0) };
    static T_ALLOCS: Cell<u64> = const { Cell::new(0) };
}

/// Switches allocation counting on or off (process-wide). Counts
/// accumulate across on-periods; see [`alloc_snapshot`].
pub fn set_alloc_counting(on: bool) {
    COUNTING.store(on, Ordering::Relaxed);
}

/// Whether allocation counting is currently on.
pub fn alloc_counting_enabled() -> bool {
    COUNTING.load(Ordering::Relaxed)
}

/// A point-in-time view of the allocation counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AllocSnapshot {
    /// Allocations observed (incl. the alloc half of each realloc).
    pub allocs: u64,
    /// Frees observed (incl. the free half of each realloc).
    pub frees: u64,
    /// Total bytes handed out.
    pub bytes: u64,
    /// Peak of the live-byte balance since counting began.
    pub peak_bytes: u64,
}

/// Snapshots the process-wide allocation counters.
pub fn alloc_snapshot() -> AllocSnapshot {
    AllocSnapshot {
        allocs: ALLOCS.load(Ordering::Relaxed),
        frees: FREES.load(Ordering::Relaxed),
        bytes: BYTES.load(Ordering::Relaxed),
        peak_bytes: PEAK.load(Ordering::Relaxed).max(0) as u64,
    }
}

/// Running totals for the calling thread: `(bytes, allocs)`. Sampled by
/// the tracer at span boundaries; deltas between two samples are the
/// allocations the thread performed in between.
pub fn thread_alloc_totals() -> (u64, u64) {
    (
        T_BYTES.try_with(Cell::get).unwrap_or(0),
        T_ALLOCS.try_with(Cell::get).unwrap_or(0),
    )
}

#[inline]
fn count_alloc(size: usize) {
    let size = size as u64;
    ALLOCS.fetch_add(1, Ordering::Relaxed);
    BYTES.fetch_add(size, Ordering::Relaxed);
    let live = LIVE.fetch_add(size as i64, Ordering::Relaxed) + size as i64;
    let mut peak = PEAK.load(Ordering::Relaxed);
    while live > peak {
        match PEAK.compare_exchange_weak(peak, live, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => break,
            Err(p) => peak = p,
        }
    }
    // try_with: never panic inside the allocator during TLS teardown.
    let _ = T_BYTES.try_with(|c| c.set(c.get().wrapping_add(size)));
    let _ = T_ALLOCS.try_with(|c| c.set(c.get().wrapping_add(1)));
}

#[inline]
fn count_free(size: usize) {
    FREES.fetch_add(1, Ordering::Relaxed);
    LIVE.fetch_sub(size as i64, Ordering::Relaxed);
}

// SAFETY: delegates every allocation verbatim to `System`; the counting
// side-channel touches only atomics and `const`-initialised thread-locals
// (no allocation, no re-entry).
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let p = unsafe { System.alloc(layout) };
        if !p.is_null() && COUNTING.load(Ordering::Relaxed) {
            count_alloc(layout.size());
        }
        p
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        let p = unsafe { System.alloc_zeroed(layout) };
        if !p.is_null() && COUNTING.load(Ordering::Relaxed) {
            count_alloc(layout.size());
        }
        p
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) };
        if COUNTING.load(Ordering::Relaxed) {
            count_free(layout.size());
        }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let p = unsafe { System.realloc(ptr, layout, new_size) };
        if !p.is_null() && COUNTING.load(Ordering::Relaxed) {
            count_free(layout.size());
            count_alloc(new_size);
        }
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counting_observes_a_vec_allocation() {
        set_alloc_counting(true);
        let before = alloc_snapshot();
        let (t_bytes0, t_allocs0) = thread_alloc_totals();
        let v: Vec<u8> = Vec::with_capacity(4096);
        let after = alloc_snapshot();
        let (t_bytes1, t_allocs1) = thread_alloc_totals();
        drop(v);
        let freed = alloc_snapshot();
        set_alloc_counting(false);

        assert!(after.allocs > before.allocs);
        assert!(after.bytes >= before.bytes + 4096);
        // Peak is a process-global high-water mark; with parallel test
        // threads all that is guaranteed is monotonicity.
        assert!(after.peak_bytes >= before.peak_bytes);
        // Thread-local deltas are race-free: exactly our Vec (plus any
        // incidental allocation this thread performed in between).
        assert!(t_bytes1 - t_bytes0 >= 4096);
        assert!(t_allocs1 > t_allocs0);
        assert!(freed.frees > after.frees, "the drop must be counted");
    }

    #[test]
    fn disabled_counting_is_inert() {
        set_alloc_counting(false);
        let before = alloc_snapshot();
        let _v: Vec<u64> = vec![0; 512];
        // Other tests may race counting on; only assert when it stayed off.
        if !alloc_counting_enabled() {
            let after = alloc_snapshot();
            assert_eq!(before.allocs, after.allocs);
        }
    }
}
