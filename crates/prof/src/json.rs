//! A minimal JSON reader (no serde in this workspace).
//!
//! Parses the documents this workspace *writes* — obs run reports, Chrome
//! traces, `BENCH_*.json` — back into a tree for tests and `bench_diff`.
//! Objects preserve key order (a `Vec` of pairs), which the golden tests
//! rely on to assert stable serialisation. Full JSON is accepted; the only
//! deliberate limit is recursion depth (128) to bound adversarial inputs.

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object, in source key order.
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Parses a complete JSON document (rejects trailing garbage).
    pub fn parse(s: &str) -> Result<JsonValue, String> {
        let mut p = Parser {
            bytes: s.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value(0)?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing bytes at offset {}", p.pos));
        }
        Ok(v)
    }

    /// Member lookup on objects (first match), `None` elsewhere.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The members in source order, if this is an object.
    pub fn as_obj(&self) -> Option<&[(String, JsonValue)]> {
        match self {
            JsonValue::Obj(members) => Some(members),
            _ => None,
        }
    }
}

const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at offset {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, word: &str, value: JsonValue) -> Result<JsonValue, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at offset {}", self.pos))
        }
    }

    fn value(&mut self, depth: usize) -> Result<JsonValue, String> {
        if depth > MAX_DEPTH {
            return Err("nesting too deep".to_string());
        }
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(format!("unexpected input at offset {}", self.pos)),
        }
    }

    fn object(&mut self, depth: usize) -> Result<JsonValue, String> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.value(depth + 1)?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Obj(members));
                }
                _ => return Err(format!("expected ',' or '}}' at offset {}", self.pos)),
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<JsonValue, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Arr(items));
        }
        loop {
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at offset {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err("unterminated string".to_string());
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err("unterminated escape".to_string());
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                                16,
                            )
                            .map_err(|e| e.to_string())?;
                            self.pos += 4;
                            // Surrogate pairs are not reassembled (the
                            // workspace never emits them); lone surrogates
                            // map to the replacement character.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(format!("bad escape at offset {}", self.pos)),
                    }
                }
                _ => {
                    // Collect the full UTF-8 sequence starting here.
                    let start = self.pos - 1;
                    let width = utf8_width(b);
                    self.pos = start + width;
                    let chunk = self
                        .bytes
                        .get(start..self.pos)
                        .ok_or("truncated UTF-8 sequence")?;
                    out.push_str(std::str::from_utf8(chunk).map_err(|e| e.to_string())?);
                }
            }
        }
    }

    fn number(&mut self) -> Result<JsonValue, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|e| e.to_string())?;
        text.parse::<f64>()
            .map(JsonValue::Num)
            .map_err(|_| format!("bad number '{text}' at offset {start}"))
    }
}

fn utf8_width(first: u8) -> usize {
    match first {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::JsonValue;

    #[test]
    fn parses_scalars_and_containers() {
        let v = JsonValue::parse(r#"{"a": [1, 2.5, -3e2], "b": "x\ny", "c": null, "d": true}"#)
            .unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(
            v.get("a").unwrap().as_arr().unwrap()[2].as_f64(),
            Some(-300.0)
        );
        assert_eq!(v.get("b").unwrap().as_str(), Some("x\ny"));
        assert_eq!(v.get("c"), Some(&JsonValue::Null));
        assert_eq!(v.get("d"), Some(&JsonValue::Bool(true)));
    }

    #[test]
    fn preserves_key_order() {
        let v = JsonValue::parse(r#"{"z": 1, "a": 2, "m": 3}"#).unwrap();
        let keys: Vec<&str> = v
            .as_obj()
            .unwrap()
            .iter()
            .map(|(k, _)| k.as_str())
            .collect();
        assert_eq!(keys, ["z", "a", "m"]);
    }

    #[test]
    fn rejects_garbage() {
        assert!(JsonValue::parse("{").is_err());
        assert!(JsonValue::parse("[1,]").is_err());
        assert!(JsonValue::parse("{} x").is_err());
        assert!(JsonValue::parse("tru").is_err());
        assert!(JsonValue::parse("\"\\q\"").is_err());
    }

    #[test]
    fn unicode_roundtrips() {
        let v = JsonValue::parse("\"caf\u{e9} \\u00e9\"").unwrap();
        assert_eq!(v.as_str(), Some("café é"));
    }

    #[test]
    fn parses_own_obs_report() {
        let reg = x2v_obs::Registry::new();
        reg.record_span("k", std::time::Duration::from_micros(5));
        reg.observe("h", 2.0);
        reg.counter_add("c", 3);
        let json = x2v_obs::Report::from_registry(&reg, "roundtrip").to_json();
        let v = JsonValue::parse(&json).unwrap();
        assert_eq!(v.get("schema").unwrap().as_str(), Some("x2v-obs/v2"));
        assert_eq!(
            v.get("counters").unwrap().get("c").unwrap().as_f64(),
            Some(3.0)
        );
        assert!(v
            .get("spans")
            .unwrap()
            .get("k")
            .unwrap()
            .get("self_ns")
            .is_some());
    }
}
