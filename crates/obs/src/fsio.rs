//! The workspace's rename-into-place atomic file writer.
//!
//! Every artifact the workspace persists (obs run reports, Chrome traces,
//! `BENCH_<n>.json`, checkpoints) goes through [`atomic_write`]: the bytes
//! are written to a uniquely-named temporary file *in the destination
//! directory*, flushed with `fsync`, and then renamed over the final path.
//! POSIX rename is atomic within a filesystem, so a reader — or a process
//! that crashes and restarts — observes either the complete old content or
//! the complete new content, never a torn prefix.
//!
//! This primitive lives in `x2v-obs` (the bottom of the crate stack) so the
//! report and trace writers can use it; `x2v-ckpt` layers checksummed
//! framing, generation management and fault injection on top.

use std::fs::{self, File, OpenOptions};
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// Monotonic per-process suffix so concurrent writers (threads or tests)
/// never collide on a temp name.
static TMP_SEQ: AtomicU64 = AtomicU64::new(0);

/// The temporary path `atomic_write` stages `path`'s new content at:
/// `.<file>.tmp-<pid>-<seq>` in the same directory (same filesystem, so the
/// final rename cannot degrade to a copy).
fn temp_path_for(path: &Path) -> PathBuf {
    let seq = TMP_SEQ.fetch_add(1, Ordering::Relaxed);
    let file = path
        .file_name()
        .map(|f| f.to_string_lossy().into_owned())
        .unwrap_or_else(|| "artifact".to_string());
    let tmp = format!(".{file}.tmp-{}-{seq}", std::process::id());
    path.with_file_name(tmp)
}

/// Stages `bytes` for `path` without committing: writes and fsyncs the
/// temporary file and returns its path, leaving any existing `path`
/// untouched. This is the state a crash between write and rename leaves
/// behind — exposed so torn-write regression tests can simulate that
/// crash window deterministically. Production code calls [`atomic_write`].
pub fn atomic_stage(path: &Path, bytes: &[u8]) -> std::io::Result<PathBuf> {
    let tmp = temp_path_for(path);
    let mut f = OpenOptions::new()
        .write(true)
        .create(true)
        .truncate(true)
        .open(&tmp)?;
    f.write_all(bytes)?;
    f.sync_all()?;
    Ok(tmp)
}

/// Commits a staged temporary file over `path` (atomic rename, then a
/// best-effort fsync of the containing directory so the rename itself is
/// durable).
pub fn atomic_commit(tmp: &Path, path: &Path) -> std::io::Result<()> {
    fs::rename(tmp, path)?;
    if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
        // Directory fsync is advisory: some filesystems reject opening a
        // directory for sync; the rename already happened atomically.
        if let Ok(d) = File::open(dir) {
            let _ = d.sync_all();
        }
    }
    Ok(())
}

/// Writes `bytes` to `path` atomically: temp file in the same directory,
/// `fsync`, rename into place. On error the destination is untouched and
/// the temp file is removed (best-effort).
pub fn atomic_write(path: &Path, bytes: &[u8]) -> std::io::Result<()> {
    let tmp = atomic_stage(path, bytes)?;
    atomic_commit(&tmp, path).inspect_err(|_| {
        let _ = fs::remove_file(&tmp);
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("x2v-obs-fsio-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&d);
        fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn write_then_overwrite() {
        let d = tmpdir("rw");
        let p = d.join("a.json");
        atomic_write(&p, b"first").unwrap();
        assert_eq!(fs::read(&p).unwrap(), b"first");
        atomic_write(&p, b"second, longer content").unwrap();
        assert_eq!(fs::read(&p).unwrap(), b"second, longer content");
        // No temp debris after successful commits.
        assert_eq!(fs::read_dir(&d).unwrap().count(), 1);
        let _ = fs::remove_dir_all(&d);
    }

    #[test]
    fn crash_window_leaves_old_content_intact() {
        let d = tmpdir("crash");
        let p = d.join("report.json");
        atomic_write(&p, b"{\"gen\": 1}").unwrap();
        // Simulate a crash after staging but before the rename: the
        // destination must still read back the complete old content.
        let tmp = atomic_stage(&p, b"{\"gen\": 2, \"torn\": maybe").unwrap();
        assert_eq!(fs::read(&p).unwrap(), b"{\"gen\": 1}");
        // Recovery (a later successful write) supersedes the stale temp.
        atomic_commit(&tmp, &p).unwrap();
        assert_eq!(fs::read(&p).unwrap(), b"{\"gen\": 2, \"torn\": maybe");
        let _ = fs::remove_dir_all(&d);
    }
}
