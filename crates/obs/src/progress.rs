//! Progress heartbeats for long-running loops (training epochs, walk
//! generation, solver sweeps). Events go to a pluggable handler; the
//! default prints to stderr when `X2V_OBS` contains `progress`.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::RwLock;

/// One heartbeat from a long-running loop.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ProgressEvent<'a> {
    /// Loop identity, e.g. `embed/word2vec_epoch`.
    pub name: &'a str,
    /// Completed units (1-based when reporting finished epochs).
    pub current: u64,
    /// Total units, or 0 when unknown.
    pub total: u64,
}

type Handler = Box<dyn Fn(&ProgressEvent<'_>) + Send + Sync>;

static HANDLER: RwLock<Option<Handler>> = RwLock::new(None);
static HANDLER_SET: AtomicBool = AtomicBool::new(false);

/// Installs a custom progress handler (replacing any previous one); pass
/// `None` to restore the default stderr heartbeat.
pub fn set_progress_handler(handler: Option<Handler>) {
    HANDLER_SET.store(handler.is_some(), Ordering::Release);
    *HANDLER.write().unwrap_or_else(|p| p.into_inner()) = handler;
}

/// Emits a heartbeat. Near-zero cost unless a handler is installed or
/// `X2V_OBS` contains `progress`.
#[inline]
pub fn progress(name: &str, current: u64, total: u64) {
    if HANDLER_SET.load(Ordering::Acquire) {
        let event = ProgressEvent {
            name,
            current,
            total,
        };
        if let Some(h) = HANDLER.read().unwrap_or_else(|p| p.into_inner()).as_ref() {
            h(&event);
        }
    } else if crate::progress_enabled() {
        if total > 0 {
            eprintln!("[x2v-obs] {name} {current}/{total}");
        } else {
            eprintln!("[x2v-obs] {name} {current}");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;
    use std::sync::Arc;

    #[test]
    fn custom_handler_receives_events() {
        let seen = Arc::new(AtomicU64::new(0));
        let seen2 = Arc::clone(&seen);
        set_progress_handler(Some(Box::new(move |e| {
            seen2.fetch_add(e.current, Ordering::SeqCst);
        })));
        progress("test/loop", 2, 10);
        progress("test/loop", 3, 10);
        set_progress_handler(None);
        progress("test/loop", 100, 100); // default handler; not counted
        assert_eq!(seen.load(Ordering::SeqCst), 5);
    }
}
