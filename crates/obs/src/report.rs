//! Run reports: a sorted snapshot of the registry, a hand-rolled JSON
//! serialiser (no serde — stable key order, deterministic output), and a
//! human-readable table renderer.

use crate::registry::{HistSnapshot, Registry, SpanSnapshot};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::path::PathBuf;

/// Identifies the report layout; bump when keys change meaning.
/// v2: spans gained `self_ns` (exclusive time), histograms gained
/// `p50`/`p90`/`p99` log2-bucket percentile estimates.
pub const SCHEMA: &str = "x2v-obs/v2";

/// An immutable snapshot of all metrics, keyed in sorted order.
#[derive(Clone, Debug)]
pub struct Report {
    /// The run name (used for the report filename).
    pub run: String,
    /// Span statistics by name.
    pub spans: BTreeMap<String, SpanSnapshot>,
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Histogram statistics by name.
    pub histograms: BTreeMap<String, HistSnapshot>,
}

/// Escapes `s` for inclusion in a JSON string literal.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Formats a float as a JSON number (`null` for non-finite values, which
/// JSON cannot represent).
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        // Rust's shortest-roundtrip Display is valid JSON for finite floats.
        let s = format!("{v}");
        if s.contains(['.', 'e', 'E']) {
            s
        } else {
            format!("{s}.0")
        }
    } else {
        "null".to_string()
    }
}

fn fmt_duration_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.0}ns")
    } else if ns < 1e6 {
        format!("{:.2}µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2}ms", ns / 1e6)
    } else {
        format!("{:.3}s", ns / 1e9)
    }
}

impl Report {
    /// Snapshots `registry` into a report named `run`.
    pub fn from_registry(registry: &Registry, run: &str) -> Self {
        let (spans, counters, hists) = registry.snapshot();
        Report {
            run: run.to_string(),
            spans: spans.into_iter().collect(),
            counters: counters.into_iter().collect(),
            histograms: hists.into_iter().collect(),
        }
    }

    /// Total number of distinct span/counter/histogram keys.
    pub fn num_keys(&self) -> usize {
        self.spans.len() + self.counters.len() + self.histograms.len()
    }

    /// Serialises the report as pretty-printed JSON with stable key order.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        let _ = writeln!(out, "  \"schema\": \"{}\",", json_escape(SCHEMA));
        let _ = writeln!(out, "  \"run\": \"{}\",", json_escape(&self.run));

        out.push_str("  \"spans\": {");
        let mut first = true;
        for (name, s) in &self.spans {
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(
                out,
                "\n    \"{}\": {{\"calls\": {}, \"total_ns\": {}, \"self_ns\": {}, \"min_ns\": {}, \"max_ns\": {}, \"mean_ns\": {}}}",
                json_escape(name),
                s.calls,
                s.total_ns,
                s.self_ns,
                s.min_ns,
                s.max_ns,
                json_f64(s.mean_ns()),
            );
        }
        out.push_str(if first { "},\n" } else { "\n  },\n" });

        out.push_str("  \"counters\": {");
        let mut first = true;
        for (name, v) in &self.counters {
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(out, "\n    \"{}\": {}", json_escape(name), v);
        }
        out.push_str(if first { "},\n" } else { "\n  },\n" });

        out.push_str("  \"histograms\": {");
        let mut first = true;
        for (name, h) in &self.histograms {
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(
                out,
                "\n    \"{}\": {{\"count\": {}, \"sum\": {}, \"min\": {}, \"max\": {}, \"mean\": {}, \"p50\": {}, \"p90\": {}, \"p99\": {}}}",
                json_escape(name),
                h.count,
                json_f64(h.sum),
                json_f64(h.min),
                json_f64(h.max),
                json_f64(h.mean()),
                json_f64(h.p50),
                json_f64(h.p90),
                json_f64(h.p99),
            );
        }
        out.push_str(if first { "}\n" } else { "\n  }\n" });
        out.push_str("}\n");
        out
    }

    /// Renders the human-readable table: spans sorted by total time
    /// descending, then counters and histograms alphabetically.
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "== x2v-obs run report: {} ==", self.run);
        if !self.spans.is_empty() {
            let _ = writeln!(
                out,
                "{:<36} {:>9} {:>11} {:>11} {:>11} {:>11} {:>11}",
                "span", "calls", "total", "self", "mean", "min", "max"
            );
            let mut spans: Vec<_> = self.spans.iter().collect();
            spans.sort_by(|a, b| b.1.total_ns.cmp(&a.1.total_ns).then(a.0.cmp(b.0)));
            for (name, s) in spans {
                let _ = writeln!(
                    out,
                    "{:<36} {:>9} {:>11} {:>11} {:>11} {:>11} {:>11}",
                    name,
                    s.calls,
                    fmt_duration_ns(s.total_ns as f64),
                    fmt_duration_ns(s.self_ns as f64),
                    fmt_duration_ns(s.mean_ns()),
                    fmt_duration_ns(s.min_ns as f64),
                    fmt_duration_ns(s.max_ns as f64),
                );
            }
        }
        if !self.counters.is_empty() {
            let _ = writeln!(out, "{:<36} {:>9}", "counter", "value");
            for (name, v) in &self.counters {
                let _ = writeln!(out, "{name:<36} {v:>9}");
            }
        }
        if !self.histograms.is_empty() {
            let _ = writeln!(
                out,
                "{:<36} {:>9} {:>11} {:>11} {:>11} {:>11} {:>11} {:>11}",
                "histogram", "count", "mean", "p50", "p90", "p99", "min", "max"
            );
            for (name, h) in &self.histograms {
                let _ = writeln!(
                    out,
                    "{:<36} {:>9} {:>11.3} {:>11.3} {:>11.3} {:>11.3} {:>11.3} {:>11.3}",
                    name,
                    h.count,
                    h.mean(),
                    h.p50,
                    h.p90,
                    h.p99,
                    h.min,
                    h.max,
                );
            }
        }
        out
    }

    /// The canonical on-disk location for this report:
    /// `<$X2V_OBS_DIR | target/obs>/<sanitised run>.json`. Exposed so
    /// periodic flushers (x2v-serve's snapshot thread) can write the same
    /// path through their own (fault-injectable) atomic writer.
    pub fn default_path(&self) -> PathBuf {
        let dir = std::env::var("X2V_OBS_DIR")
            .map(PathBuf::from)
            .unwrap_or_else(|_| PathBuf::from("target").join("obs"));
        let safe: String = self
            .run
            .chars()
            .map(|c| {
                if c.is_ascii_alphanumeric() || c == '-' || c == '_' || c == '.' {
                    c
                } else {
                    '_'
                }
            })
            .collect();
        dir.join(format!("{safe}.json"))
    }

    /// Writes the JSON report to [`Report::default_path`]. Creates the
    /// directory. The write is atomic ([`crate::fsio::atomic_write`]): a
    /// crash mid-write can never leave a torn report behind. Returns the
    /// path written.
    pub fn write_json_file(&self) -> std::io::Result<PathBuf> {
        let path = self.default_path();
        if let Some(dir) = path.parent() {
            std::fs::create_dir_all(dir)?;
        }
        crate::fsio::atomic_write(&path, self.to_json().as_bytes())?;
        Ok(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn escaping() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn floats_are_valid_json() {
        assert_eq!(json_f64(1.5), "1.5");
        assert_eq!(json_f64(2.0), "2.0");
        assert_eq!(json_f64(f64::NAN), "null");
        assert_eq!(json_f64(f64::INFINITY), "null");
    }

    #[test]
    fn empty_report_shape() {
        let reg = Registry::new();
        let json = Report::from_registry(&reg, "empty").to_json();
        assert!(json.contains("\"spans\": {}"));
        assert!(json.contains("\"counters\": {}"));
        assert!(json.contains("\"histograms\": {}"));
    }

    #[test]
    fn table_lists_all_sections() {
        let reg = Registry::new();
        reg.record_span("s", Duration::from_micros(3));
        reg.counter_add("c", 7);
        reg.observe("h", 2.0);
        let table = Report::from_registry(&reg, "t").render_table();
        assert!(table.contains("s"), "{table}");
        assert!(table.contains('7'), "{table}");
        assert!(table.contains("2.000"), "{table}");
    }
}
