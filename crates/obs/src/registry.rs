//! The thread-safe metric store.
//!
//! One mutex guards three maps (spans, counters, histograms). Contention is
//! acceptable because instrumented code records at *operation* granularity
//! — a refinement run, a Gram build, a training epoch — not per node or per
//! sample; hot loops accumulate locally and flush once.

use std::collections::HashMap;
use std::sync::Mutex;
use std::time::Duration;

/// Number of log2 buckets retained per histogram (covers `2^-32 .. 2^32`).
const BUCKETS: usize = 64;
/// Bucket `i` covers `[2^(i-OFFSET), 2^(i-OFFSET+1))`.
const OFFSET: i32 = 32;

#[derive(Clone, Debug, Default)]
struct SpanStat {
    calls: u64,
    total_ns: u64,
    self_ns: u64,
    min_ns: u64,
    max_ns: u64,
}

/// A fixed-memory log2-bucket histogram: the aggregation primitive behind
/// [`Registry::observe`] and the windowed ring in [`crate::window`].
///
/// Memory is constant (64 inline buckets plus four scalars), so a
/// histogram can be [`reset`](Histogram::reset) and reused forever without
/// a single allocation — the property the window ring's bucket rotation
/// relies on. Percentiles are estimated at snapshot time from the buckets
/// (see [`HistSnapshot`]).
#[derive(Clone, Debug)]
pub struct Histogram {
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
    /// Fixed log2 buckets for percentile estimation — no raw-sample
    /// retention, so memory per histogram is constant.
    buckets: [u64; BUCKETS],
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub const fn new() -> Self {
        Histogram {
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            buckets: [0; BUCKETS],
        }
    }

    /// Records one observation.
    pub fn record(&mut self, value: f64) {
        self.count += 1;
        self.sum += value;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
        self.buckets[bucket_index(value)] += 1;
    }

    /// Number of recorded observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Zeroes the histogram in place. No allocation is touched — the
    /// bucket array is inline — so resetting is a bounded, alloc-free
    /// operation suitable for window-bucket rotation on a hot path.
    pub fn reset(&mut self) {
        self.count = 0;
        self.sum = 0.0;
        self.min = f64::INFINITY;
        self.max = f64::NEG_INFINITY;
        self.buckets = [0; BUCKETS];
    }

    /// Accumulates `other` into `self` (bucket-wise sum, envelope union) —
    /// the merge step that turns per-second window buckets into a
    /// "last N seconds" aggregate.
    pub fn merge(&mut self, other: &Histogram) {
        if other.count == 0 {
            return;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
    }

    /// The percentile-bearing summary of the current contents.
    pub fn snapshot(&self) -> HistSnapshot {
        let (min, max) = if self.count == 0 {
            (0.0, 0.0)
        } else {
            (self.min, self.max)
        };
        HistSnapshot {
            count: self.count,
            sum: self.sum,
            min,
            max,
            p50: percentile_from_buckets(&self.buckets, self.count, min, max, 50.0),
            p90: percentile_from_buckets(&self.buckets, self.count, min, max, 90.0),
            p99: percentile_from_buckets(&self.buckets, self.count, min, max, 99.0),
        }
    }
}

/// Maps a value to its log2 bucket. Non-finite and non-positive values land
/// in the lowest bucket (percentiles are designed for counts, sizes and
/// durations, which are positive).
fn bucket_index(v: f64) -> usize {
    if !v.is_finite() || v <= 0.0 {
        return 0;
    }
    let e = v.log2().floor() as i32;
    (e + OFFSET).clamp(0, BUCKETS as i32 - 1) as usize
}

fn bucket_lo(i: usize) -> f64 {
    if i == 0 {
        0.0
    } else {
        2f64.powi(i as i32 - OFFSET)
    }
}

fn bucket_hi(i: usize) -> f64 {
    2f64.powi(i as i32 - OFFSET + 1)
}

/// Estimates the `p`-th percentile (`p` in `[0, 100]`) from log2 buckets,
/// linearly interpolating inside the bucket that crosses the target rank
/// and clamping to the exact observed `[min, max]`.
fn percentile_from_buckets(
    buckets: &[u64; BUCKETS],
    count: u64,
    min: f64,
    max: f64,
    p: f64,
) -> f64 {
    if count == 0 {
        return 0.0;
    }
    let target = ((p / 100.0) * count as f64).max(1.0);
    let mut cum = 0u64;
    for (i, &c) in buckets.iter().enumerate() {
        if c == 0 {
            continue;
        }
        let next = cum + c;
        if next as f64 >= target {
            let lo = bucket_lo(i);
            let hi = bucket_hi(i);
            let frac = (target - cum as f64) / c as f64;
            return (lo + frac * (hi - lo)).clamp(min, max);
        }
        cum = next;
    }
    max
}

#[derive(Default)]
struct Inner {
    spans: HashMap<String, SpanStat>,
    counters: HashMap<String, u64>,
    histograms: HashMap<String, Histogram>,
}

/// Aggregated span statistics, as exposed in snapshots and reports.
///
/// `total_ns` sums the *wall* time of every completed span under this name,
/// so a span nested (transitively) inside another span of the same name
/// contributes to `total_ns` twice. `self_ns` excludes time spent inside
/// child spans of *any* name: summing `self_ns` over all span names yields
/// flame-graph-style exclusive attribution that adds up to real wall time
/// even under re-entrant nesting.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SpanSnapshot {
    /// Number of completed spans.
    pub calls: u64,
    /// Summed wall time in nanoseconds (inclusive of child spans).
    pub total_ns: u64,
    /// Summed exclusive time in nanoseconds (child-span time removed).
    pub self_ns: u64,
    /// Fastest single span in nanoseconds.
    pub min_ns: u64,
    /// Slowest single span in nanoseconds.
    pub max_ns: u64,
}

impl SpanSnapshot {
    /// Mean nanoseconds per call.
    pub fn mean_ns(&self) -> f64 {
        if self.calls == 0 {
            0.0
        } else {
            self.total_ns as f64 / self.calls as f64
        }
    }
}

/// Aggregated histogram statistics, as exposed in snapshots and reports.
///
/// Percentiles are estimated from a fixed 64-bucket log2 histogram
/// (relative error bounded by the bucket width, exact at the recorded
/// `min`/`max` envelope) — no raw samples are retained.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct HistSnapshot {
    /// Number of observations.
    pub count: u64,
    /// Sum of observed values.
    pub sum: f64,
    /// Smallest observation.
    pub min: f64,
    /// Largest observation.
    pub max: f64,
    /// Estimated median.
    pub p50: f64,
    /// Estimated 90th percentile.
    pub p90: f64,
    /// Estimated 99th percentile.
    pub p99: f64,
}

impl HistSnapshot {
    /// Mean observed value.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }
}

/// A standalone metric registry.
///
/// The crate maintains one process-global instance behind the free
/// functions in the crate root; tests and embedded uses can create their
/// own isolated registries.
#[derive(Default)]
pub struct Registry {
    inner: Mutex<Inner>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        // Metric state stays consistent even if a panicking thread held the
        // lock mid-update (all updates are single-field writes).
        self.inner.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Records one completed span of `elapsed` under `name`, with
    /// `self == total` (no child-time subtraction). Use
    /// [`Registry::record_span_parts`] when exclusive time is known.
    pub fn record_span(&self, name: &str, elapsed: Duration) {
        let ns = u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX);
        self.record_span_parts(name, ns, ns);
    }

    /// Records one completed span with explicit inclusive (`total_ns`) and
    /// exclusive (`self_ns`) wall time.
    pub fn record_span_parts(&self, name: &str, total_ns: u64, self_ns: u64) {
        let mut inner = self.lock();
        match inner.spans.get_mut(name) {
            Some(s) => {
                s.calls += 1;
                s.total_ns = s.total_ns.saturating_add(total_ns);
                s.self_ns = s.self_ns.saturating_add(self_ns);
                s.min_ns = s.min_ns.min(total_ns);
                s.max_ns = s.max_ns.max(total_ns);
            }
            None => {
                inner.spans.insert(
                    name.to_string(),
                    SpanStat {
                        calls: 1,
                        total_ns,
                        self_ns,
                        min_ns: total_ns,
                        max_ns: total_ns,
                    },
                );
            }
        }
    }

    /// Adds `delta` to counter `name`.
    pub fn counter_add(&self, name: &str, delta: u64) {
        let mut inner = self.lock();
        match inner.counters.get_mut(name) {
            Some(c) => *c = c.saturating_add(delta),
            None => {
                inner.counters.insert(name.to_string(), delta);
            }
        }
    }

    /// Raises counter `name` to `value` if it is currently lower — the
    /// high-water-mark update (peak RSS, peak queue depth). Unlike
    /// [`Registry::counter_add`] this is idempotent, so a periodic sampler
    /// can call it every tick without inflating the value.
    pub fn counter_max(&self, name: &str, value: u64) {
        let mut inner = self.lock();
        match inner.counters.get_mut(name) {
            Some(c) => *c = (*c).max(value),
            None => {
                inner.counters.insert(name.to_string(), value);
            }
        }
    }

    /// Records one observation of `value` into histogram `name`.
    pub fn observe(&self, name: &str, value: f64) {
        let mut inner = self.lock();
        match inner.histograms.get_mut(name) {
            Some(h) => h.record(value),
            None => {
                let mut h = Histogram::new();
                h.record(value);
                inner.histograms.insert(name.to_string(), h);
            }
        }
    }

    /// Clears everything.
    pub fn reset(&self) {
        let mut inner = self.lock();
        inner.spans.clear();
        inner.counters.clear();
        inner.histograms.clear();
    }

    /// Snapshots all three maps at once.
    #[allow(clippy::type_complexity)]
    pub fn snapshot(
        &self,
    ) -> (
        Vec<(String, SpanSnapshot)>,
        Vec<(String, u64)>,
        Vec<(String, HistSnapshot)>,
    ) {
        let inner = self.lock();
        let spans = inner
            .spans
            .iter()
            .map(|(k, s)| {
                (
                    k.clone(),
                    SpanSnapshot {
                        calls: s.calls,
                        total_ns: s.total_ns,
                        self_ns: s.self_ns,
                        min_ns: s.min_ns,
                        max_ns: s.max_ns,
                    },
                )
            })
            .collect();
        let counters = inner
            .counters
            .iter()
            .map(|(k, &v)| (k.clone(), v))
            .collect();
        let hists = inner
            .histograms
            .iter()
            .map(|(k, h)| (k.clone(), h.snapshot()))
            .collect();
        (spans, counters, hists)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_aggregation() {
        let r = Registry::new();
        r.record_span("a", Duration::from_nanos(100));
        r.record_span("a", Duration::from_nanos(300));
        r.record_span("b", Duration::from_nanos(50));
        let (spans, _, _) = r.snapshot();
        let a = &spans.iter().find(|(k, _)| k == "a").unwrap().1;
        assert_eq!(a.calls, 2);
        assert_eq!(a.total_ns, 400);
        assert_eq!(a.self_ns, 400);
        assert_eq!(a.min_ns, 100);
        assert_eq!(a.max_ns, 300);
        assert!((a.mean_ns() - 200.0).abs() < 1e-9);
    }

    #[test]
    fn span_self_time_parts() {
        let r = Registry::new();
        r.record_span_parts("outer", 1000, 400);
        r.record_span_parts("outer", 500, 500);
        let (spans, _, _) = r.snapshot();
        let s = &spans.iter().find(|(k, _)| k == "outer").unwrap().1;
        assert_eq!(s.total_ns, 1500);
        assert_eq!(s.self_ns, 900);
    }

    #[test]
    fn counters_saturate() {
        let r = Registry::new();
        r.counter_add("c", u64::MAX - 1);
        r.counter_add("c", 5);
        let (_, counters, _) = r.snapshot();
        assert_eq!(counters[0].1, u64::MAX);
    }

    #[test]
    fn histogram_tracks_extrema() {
        let r = Registry::new();
        for v in [4.0, -1.0, 2.5] {
            r.observe("h", v);
        }
        let (_, _, hists) = r.snapshot();
        let h = &hists[0].1;
        assert_eq!(h.count, 3);
        assert_eq!(h.min, -1.0);
        assert_eq!(h.max, 4.0);
        assert!((h.mean() - 5.5 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn bucket_index_edges() {
        assert_eq!(bucket_index(f64::NAN), 0);
        assert_eq!(bucket_index(-3.0), 0);
        assert_eq!(bucket_index(0.0), 0);
        assert_eq!(bucket_index(1.0), 32);
        assert_eq!(bucket_index(1.5), 32);
        assert_eq!(bucket_index(2.0), 33);
        assert_eq!(bucket_index(0.5), 31);
        assert_eq!(bucket_index(f64::MAX), 63);
        assert_eq!(bucket_index(1e-300), 0);
    }

    #[test]
    fn single_value_percentiles_are_exact() {
        let r = Registry::new();
        r.observe("h", 12.5);
        let (_, _, hists) = r.snapshot();
        let h = &hists[0].1;
        assert_eq!(h.p50, 12.5);
        assert_eq!(h.p90, 12.5);
        assert_eq!(h.p99, 12.5);
    }

    #[test]
    fn uniform_percentiles_are_close() {
        let r = Registry::new();
        for v in 1..=1000 {
            r.observe("u", v as f64);
        }
        let (_, _, hists) = r.snapshot();
        let h = &hists[0].1;
        // Log2 buckets guarantee a within-factor-2 estimate; linear
        // interpolation inside the bucket does far better on uniform data.
        assert!((h.p50 - 500.0).abs() < 60.0, "p50 = {}", h.p50);
        assert!((h.p90 - 900.0).abs() < 120.0, "p90 = {}", h.p90);
        assert!((h.p99 - 990.0).abs() < 120.0, "p99 = {}", h.p99);
        assert!(h.p50 <= h.p90 && h.p90 <= h.p99);
        assert!(h.p99 <= h.max);
    }

    #[test]
    fn counter_max_is_a_high_water_mark() {
        let r = Registry::new();
        r.counter_max("hwm", 10);
        r.counter_max("hwm", 7);
        r.counter_max("hwm", 12);
        r.counter_max("hwm", 12);
        let (_, counters, _) = r.snapshot();
        assert_eq!(counters[0].1, 12);
    }

    #[test]
    fn histogram_reset_and_merge() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        for v in [1.0, 2.0, 4.0] {
            a.record(v);
        }
        for v in [8.0, 16.0] {
            b.record(v);
        }
        a.merge(&b);
        let s = a.snapshot();
        assert_eq!(s.count, 5);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 16.0);
        assert!((s.sum - 31.0).abs() < 1e-12);
        assert!(s.p50 <= s.p90 && s.p90 <= s.p99 && s.p99 <= s.max);

        a.reset();
        let s = a.snapshot();
        assert_eq!(s.count, 0);
        assert_eq!(s.min, 0.0);
        assert_eq!(s.max, 0.0);
        assert_eq!(s.p99, 0.0);
        // Merging an empty histogram is a no-op on the envelope.
        let mut c = Histogram::new();
        c.record(3.0);
        c.merge(&a);
        assert_eq!(c.snapshot().min, 3.0);
        assert_eq!(c.snapshot().count, 1);
    }

    #[test]
    fn percentiles_clamp_to_observed_range() {
        let r = Registry::new();
        for _ in 0..100 {
            r.observe("c", 3.0);
        }
        let (_, _, hists) = r.snapshot();
        let h = &hists[0].1;
        // All mass in one bucket [2, 4): interpolation stays inside and the
        // clamp pins estimates to the exact constant.
        assert_eq!(h.p50, 3.0);
        assert_eq!(h.p99, 3.0);
    }
}
