//! The thread-safe metric store.
//!
//! One mutex guards three maps (spans, counters, histograms). Contention is
//! acceptable because instrumented code records at *operation* granularity
//! — a refinement run, a Gram build, a training epoch — not per node or per
//! sample; hot loops accumulate locally and flush once.

use std::collections::HashMap;
use std::sync::Mutex;
use std::time::Duration;

#[derive(Clone, Debug, Default)]
struct SpanStat {
    calls: u64,
    total_ns: u64,
    min_ns: u64,
    max_ns: u64,
}

#[derive(Clone, Debug, Default)]
struct HistStat {
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

#[derive(Default)]
struct Inner {
    spans: HashMap<String, SpanStat>,
    counters: HashMap<String, u64>,
    histograms: HashMap<String, HistStat>,
}

/// Aggregated span statistics, as exposed in snapshots and reports.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SpanSnapshot {
    /// Number of completed spans.
    pub calls: u64,
    /// Summed wall time in nanoseconds.
    pub total_ns: u64,
    /// Fastest single span in nanoseconds.
    pub min_ns: u64,
    /// Slowest single span in nanoseconds.
    pub max_ns: u64,
}

impl SpanSnapshot {
    /// Mean nanoseconds per call.
    pub fn mean_ns(&self) -> f64 {
        if self.calls == 0 {
            0.0
        } else {
            self.total_ns as f64 / self.calls as f64
        }
    }
}

/// Aggregated histogram statistics, as exposed in snapshots and reports.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct HistSnapshot {
    /// Number of observations.
    pub count: u64,
    /// Sum of observed values.
    pub sum: f64,
    /// Smallest observation.
    pub min: f64,
    /// Largest observation.
    pub max: f64,
}

impl HistSnapshot {
    /// Mean observed value.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }
}

/// A standalone metric registry.
///
/// The crate maintains one process-global instance behind the free
/// functions in the crate root; tests and embedded uses can create their
/// own isolated registries.
#[derive(Default)]
pub struct Registry {
    inner: Mutex<Inner>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        // Metric state stays consistent even if a panicking thread held the
        // lock mid-update (all updates are single-field writes).
        self.inner.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Records one completed span of `elapsed` under `name`.
    pub fn record_span(&self, name: &str, elapsed: Duration) {
        let ns = u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX);
        let mut inner = self.lock();
        match inner.spans.get_mut(name) {
            Some(s) => {
                s.calls += 1;
                s.total_ns = s.total_ns.saturating_add(ns);
                s.min_ns = s.min_ns.min(ns);
                s.max_ns = s.max_ns.max(ns);
            }
            None => {
                inner.spans.insert(
                    name.to_string(),
                    SpanStat {
                        calls: 1,
                        total_ns: ns,
                        min_ns: ns,
                        max_ns: ns,
                    },
                );
            }
        }
    }

    /// Adds `delta` to counter `name`.
    pub fn counter_add(&self, name: &str, delta: u64) {
        let mut inner = self.lock();
        match inner.counters.get_mut(name) {
            Some(c) => *c = c.saturating_add(delta),
            None => {
                inner.counters.insert(name.to_string(), delta);
            }
        }
    }

    /// Records one observation of `value` into histogram `name`.
    pub fn observe(&self, name: &str, value: f64) {
        let mut inner = self.lock();
        match inner.histograms.get_mut(name) {
            Some(h) => {
                h.count += 1;
                h.sum += value;
                h.min = h.min.min(value);
                h.max = h.max.max(value);
            }
            None => {
                inner.histograms.insert(
                    name.to_string(),
                    HistStat {
                        count: 1,
                        sum: value,
                        min: value,
                        max: value,
                    },
                );
            }
        }
    }

    /// Clears everything.
    pub fn reset(&self) {
        let mut inner = self.lock();
        inner.spans.clear();
        inner.counters.clear();
        inner.histograms.clear();
    }

    /// Snapshots all three maps at once.
    #[allow(clippy::type_complexity)]
    pub fn snapshot(
        &self,
    ) -> (
        Vec<(String, SpanSnapshot)>,
        Vec<(String, u64)>,
        Vec<(String, HistSnapshot)>,
    ) {
        let inner = self.lock();
        let spans = inner
            .spans
            .iter()
            .map(|(k, s)| {
                (
                    k.clone(),
                    SpanSnapshot {
                        calls: s.calls,
                        total_ns: s.total_ns,
                        min_ns: s.min_ns,
                        max_ns: s.max_ns,
                    },
                )
            })
            .collect();
        let counters = inner
            .counters
            .iter()
            .map(|(k, &v)| (k.clone(), v))
            .collect();
        let hists = inner
            .histograms
            .iter()
            .map(|(k, h)| {
                (
                    k.clone(),
                    HistSnapshot {
                        count: h.count,
                        sum: h.sum,
                        min: h.min,
                        max: h.max,
                    },
                )
            })
            .collect();
        (spans, counters, hists)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_aggregation() {
        let r = Registry::new();
        r.record_span("a", Duration::from_nanos(100));
        r.record_span("a", Duration::from_nanos(300));
        r.record_span("b", Duration::from_nanos(50));
        let (spans, _, _) = r.snapshot();
        let a = &spans.iter().find(|(k, _)| k == "a").unwrap().1;
        assert_eq!(a.calls, 2);
        assert_eq!(a.total_ns, 400);
        assert_eq!(a.min_ns, 100);
        assert_eq!(a.max_ns, 300);
        assert!((a.mean_ns() - 200.0).abs() < 1e-9);
    }

    #[test]
    fn counters_saturate() {
        let r = Registry::new();
        r.counter_add("c", u64::MAX - 1);
        r.counter_add("c", 5);
        let (_, counters, _) = r.snapshot();
        assert_eq!(counters[0].1, u64::MAX);
    }

    #[test]
    fn histogram_tracks_extrema() {
        let r = Registry::new();
        for v in [4.0, -1.0, 2.5] {
            r.observe("h", v);
        }
        let (_, _, hists) = r.snapshot();
        let h = &hists[0].1;
        assert_eq!(h.count, 3);
        assert_eq!(h.min, -1.0);
        assert_eq!(h.max, 4.0);
        assert!((h.mean() - 5.5 / 3.0).abs() < 1e-12);
    }
}
