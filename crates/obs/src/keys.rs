//! Canonical metric-key constants for cross-crate request metrics.
//!
//! Most obs keys are private to one call site and are written as string
//! literals there. The request-serving metrics are different: they are
//! *contracts* — emitted by `x2v-serve`, asserted on by fault-drill tests,
//! scraped out of JSON run reports by the CI `serve-smoke` job, and
//! documented in `docs/serving.md`. Centralising them here keeps the
//! emitter, the assertions and the docs pointing at one name.

/// Requests fully parsed and routed (every response sent except sheds).
pub const SERVE_REQUESTS: &str = "serve/requests";
/// Connections rejected by the bounded accept queue with a retryable
/// 429-style response — the load-shedding counter.
pub const SERVE_SHED: &str = "serve/shed";
/// Requests answered from a *stale* snapshot because the newest checkpoint
/// generation on disk failed validation (graceful degradation).
pub const SERVE_STALE: &str = "serve/stale_serves";
/// Successful artifact (re)loads, including the initial one.
pub const SERVE_RELOADS: &str = "serve/reloads";
/// Artifact reload attempts that failed validation and left the previous
/// snapshot serving.
pub const SERVE_RELOAD_REJECTED: &str = "serve/reload_rejected";
/// Requests that ended in a typed error response (4xx/5xx), including
/// deadline trips.
pub const SERVE_ERRORS: &str = "serve/errors";
/// Requests whose per-request deadline expired mid-handling (a subset of
/// [`SERVE_ERRORS`]).
pub const SERVE_DEADLINE_TRIPS: &str = "serve/deadline_trips";
/// Connections dropped before a response could be written (vanished peer,
/// injected `conndrop`).
pub const SERVE_CONN_DROPPED: &str = "serve/conn_dropped";
/// Histogram: wall milliseconds per request, observed server-side from
/// accept to response flush (p50/p90/p99 land in the run report).
pub const SERVE_LATENCY_MS: &str = "serve/latency_ms";
/// Histogram: wall milliseconds per request observed *client-side* by the
/// load generator, across retries.
pub const SERVE_CLIENT_LATENCY_MS: &str = "serve_load/latency_ms";
/// Histogram: accept-queue depth sampled at each accept (windowed, so
/// `/stats` can show "queue depth over the last 10 s").
pub const SERVE_QUEUE_DEPTH: &str = "serve/queue_depth";
/// Requests slower than the configured slow-request threshold; each also
/// emits a `serve/slow_request` instant to the trace ring.
pub const SERVE_SLOW: &str = "serve/slow_requests";
/// Periodic obs snapshots written successfully by the serve flusher.
pub const SERVE_SNAPSHOTS: &str = "serve/snapshots_written";
/// Periodic obs snapshot writes that failed (counted, never fatal).
pub const SERVE_SNAPSHOT_FAILED: &str = "serve/snapshot_write_failed";
/// High-water-mark counter: peak resident set size in bytes, sampled at
/// exit by `ObsRun` and live by the serve flusher (`counter_max`).
pub const RUN_PEAK_RSS: &str = "run/peak_rss_bytes";

/// Fleet (multi-process supervisor/worker) counters: emitted by
/// `x2v-fleet`, asserted on by the chaos-drill tests and the CI
/// `fleet-chaos` job, documented in `docs/fleet.md`.
pub mod fleet {
    /// Tasks whose result shard was collected and validated by the
    /// supervisor (equals the manifest task count on a complete run).
    pub const TASKS_DONE: &str = "fleet/tasks_done";
    /// Result shards published by workers (may exceed [`TASKS_DONE`] when
    /// stragglers or retries duplicate work).
    pub const SHARDS_PUBLISHED: &str = "fleet/shards_published";
    /// Worker subprocesses observed dead (crash, SIGKILL, OOM-kill).
    pub const WORKER_DEATHS: &str = "fleet/worker_deaths";
    /// Worker subprocesses respawned after a death or stall kill.
    pub const RESPAWNS: &str = "fleet/respawns";
    /// Heartbeat timeouts: workers detected wedged and killed.
    pub const STALLS: &str = "fleet/stalls_detected";
    /// Task leases revoked (dead/stalled owner or corrupt shard) and made
    /// claimable again — the per-task retry counter.
    pub const RETRIES: &str = "fleet/lease_revoked";
    /// Result shards that failed frame validation and were quarantined.
    pub const SHARD_CORRUPT: &str = "fleet/shard_corrupt";
    /// Speculative straggler re-executions of already-claimed tasks.
    pub const STEALS: &str = "fleet/steals";
    /// Heartbeat frames published by workers.
    pub const HEARTBEATS: &str = "fleet/heartbeats";
    /// Runs that degraded to a declared-partial merged result after the
    /// retry budget was exhausted.
    pub const PARTIAL: &str = "fleet/partial";
}

/// Per-endpoint request/error counters (windowed): one pair per routable
/// endpoint class, so `/stats` can report per-endpoint rates. The `other`
/// class covers unknown paths.
pub mod endpoint {
    /// Requests routed to `/similar`.
    pub const REQ_SIMILAR: &str = "serve/req/similar";
    /// Errors from `/similar`.
    pub const ERR_SIMILAR: &str = "serve/err/similar";
    /// Requests routed to `/embed/<id>`.
    pub const REQ_EMBED: &str = "serve/req/embed";
    /// Errors from `/embed/<id>`.
    pub const ERR_EMBED: &str = "serve/err/embed";
    /// Requests routed to `/health`.
    pub const REQ_HEALTH: &str = "serve/req/health";
    /// Errors from `/health`.
    pub const ERR_HEALTH: &str = "serve/err/health";
    /// Requests routed to `/ready`.
    pub const REQ_READY: &str = "serve/req/ready";
    /// Errors from `/ready`.
    pub const ERR_READY: &str = "serve/err/ready";
    /// Requests routed to `/metrics`.
    pub const REQ_METRICS: &str = "serve/req/metrics";
    /// Errors from `/metrics`.
    pub const ERR_METRICS: &str = "serve/err/metrics";
    /// Requests routed to `/stats`.
    pub const REQ_STATS: &str = "serve/req/stats";
    /// Errors from `/stats`.
    pub const ERR_STATS: &str = "serve/err/stats";
    /// Requests to unknown paths (and unparseable requests).
    pub const REQ_OTHER: &str = "serve/req/other";
    /// Errors from unknown paths (and parse rejects).
    pub const ERR_OTHER: &str = "serve/err/other";
}
