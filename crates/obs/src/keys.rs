//! Canonical metric-key constants for cross-crate request metrics.
//!
//! Most obs keys are private to one call site and are written as string
//! literals there. The request-serving metrics are different: they are
//! *contracts* — emitted by `x2v-serve`, asserted on by fault-drill tests,
//! scraped out of JSON run reports by the CI `serve-smoke` job, and
//! documented in `docs/serving.md`. Centralising them here keeps the
//! emitter, the assertions and the docs pointing at one name.

/// Requests fully parsed and routed (every response sent except sheds).
pub const SERVE_REQUESTS: &str = "serve/requests";
/// Connections rejected by the bounded accept queue with a retryable
/// 429-style response — the load-shedding counter.
pub const SERVE_SHED: &str = "serve/shed";
/// Requests answered from a *stale* snapshot because the newest checkpoint
/// generation on disk failed validation (graceful degradation).
pub const SERVE_STALE: &str = "serve/stale_serves";
/// Successful artifact (re)loads, including the initial one.
pub const SERVE_RELOADS: &str = "serve/reloads";
/// Artifact reload attempts that failed validation and left the previous
/// snapshot serving.
pub const SERVE_RELOAD_REJECTED: &str = "serve/reload_rejected";
/// Requests that ended in a typed error response (4xx/5xx), including
/// deadline trips.
pub const SERVE_ERRORS: &str = "serve/errors";
/// Requests whose per-request deadline expired mid-handling (a subset of
/// [`SERVE_ERRORS`]).
pub const SERVE_DEADLINE_TRIPS: &str = "serve/deadline_trips";
/// Connections dropped before a response could be written (vanished peer,
/// injected `conndrop`).
pub const SERVE_CONN_DROPPED: &str = "serve/conn_dropped";
/// Histogram: wall milliseconds per request, observed server-side from
/// accept to response flush (p50/p90/p99 land in the run report).
pub const SERVE_LATENCY_MS: &str = "serve/latency_ms";
/// Histogram: wall milliseconds per request observed *client-side* by the
/// load generator, across retries.
pub const SERVE_CLIENT_LATENCY_MS: &str = "serve_load/latency_ms";
