//! Windowed metric aggregation: the *live* half of the observability
//! layer.
//!
//! The base [`Registry`](crate::Registry) is cumulative-since-start, which
//! is the right shape for batch experiments but useless for a daemon: a
//! lifetime p99 cannot show a regression that started five minutes ago.
//! This module layers a **ring of time-bucketed sub-registries** over the
//! same counter/histogram primitives, so any metric recorded through
//! [`crate::windowed_counter_add`] / [`crate::windowed_observe`] can be
//! read three ways: *last 10 s*, *last 60 s* (any span up to the ring
//! length, really), and *lifetime* (the base registry, which those entry
//! points also feed).
//!
//! ## Design
//!
//! The ring holds one bucket per wall-clock second, `X2V_OBS_WINDOW_S + 1`
//! of them (the `+1` is the currently-filling partial second). Each bucket
//! is a pair of maps — counters and [`Histogram`]s — whose **allocations
//! are never freed**: rotation zeroes values in place ([`Histogram::reset`]
//! is alloc-free by construction), so after warm-up the record path and the
//! rotation path touch no allocator at all. Rotation is lazy: whoever
//! records or reads first after a second boundary advances the ring,
//! resetting at most `min(elapsed_seconds, ring_len)` buckets — the
//! bounded-rotation contract, tested in this module.
//!
//! A merged read ([`Window::merged`]) sums the newest `N` buckets into one
//! counter map and one histogram per key, then snapshots percentiles from
//! the merged log2 buckets — the same percentile math the lifetime report
//! uses, so windowed and lifetime p50/p99 are directly comparable.
//!
//! ## Cost model
//!
//! The free functions in the crate root gate on [`crate::enabled`], so the
//! disabled fast path stays one relaxed atomic load. Enabled, a windowed
//! record is two mutex-protected hash updates (lifetime + window bucket);
//! both locks are uncontended in the intended serving workload (a handful
//! of worker threads recording at request granularity).

use std::collections::HashMap;
use std::sync::{LazyLock, Mutex};
use std::time::Instant;

use crate::registry::{HistSnapshot, Histogram};

/// Environment variable setting the maximum window span in seconds
/// (default 60, clamped to `1..=600`). The ring holds `span + 1` one-second
/// buckets, so memory is proportional to this value.
pub const WINDOW_ENV: &str = "X2V_OBS_WINDOW_S";

/// Default maximum window span in seconds.
pub const DEFAULT_WINDOW_S: u64 = 60;

/// Upper clamp for [`WINDOW_ENV`] — bounds ring memory and worst-case
/// rotation work.
pub const MAX_WINDOW_S: u64 = 600;

/// One ring slot: the metrics recorded during a single wall-clock second.
/// Keys persist across resets so steady-state rotation never allocates.
#[derive(Default)]
struct Bucket {
    counters: HashMap<String, u64>,
    histograms: HashMap<String, Histogram>,
}

impl Bucket {
    /// Zeroes every value in place, keeping the maps' keys and capacity.
    fn reset(&mut self) {
        for v in self.counters.values_mut() {
            *v = 0;
        }
        for h in self.histograms.values_mut() {
            h.reset();
        }
    }
}

struct Inner {
    /// Ring of per-second buckets; `buckets[head]` is the current second.
    buckets: Vec<Bucket>,
    /// Ring position of the currently-filling bucket.
    head: usize,
    /// Seconds-since-epoch index the head bucket covers.
    head_sec: u64,
}

/// A merged view over the newest buckets of a [`Window`].
#[derive(Clone, Debug, Default)]
pub struct WindowSnapshot {
    /// The window span that was merged (possibly clamped to the ring span).
    pub seconds: u64,
    /// Summed counters over the window, sorted by key.
    pub counters: Vec<(String, u64)>,
    /// Merged histograms over the window, sorted by key, with percentiles
    /// estimated from the merged buckets.
    pub histograms: Vec<(String, HistSnapshot)>,
}

impl WindowSnapshot {
    /// The summed counter `name` over the window (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| *v)
            .unwrap_or(0)
    }

    /// The merged histogram `name` over the window, if any value was
    /// recorded in it.
    pub fn histogram(&self, name: &str) -> Option<&HistSnapshot> {
        self.histograms
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, h)| h)
    }
}

/// A ring of time-bucketed metric sub-registries. The crate maintains one
/// process-global instance behind [`crate::window`]; tests construct their
/// own with a synthetic clock via [`Window::with_span`] and the `*_at`
/// methods.
pub struct Window {
    epoch: Instant,
    span_s: u64,
    inner: Mutex<Inner>,
}

impl Window {
    /// A window covering up to `span_s` seconds (clamped to
    /// `1..=`[`MAX_WINDOW_S`]).
    pub fn with_span(span_s: u64) -> Self {
        let span_s = span_s.clamp(1, MAX_WINDOW_S);
        let len = span_s as usize + 1;
        let mut buckets = Vec::with_capacity(len);
        buckets.resize_with(len, Bucket::default);
        Window {
            epoch: Instant::now(),
            span_s,
            inner: Mutex::new(Inner {
                buckets,
                head: 0,
                head_sec: 0,
            }),
        }
    }

    /// The configured maximum window span in seconds.
    pub fn span_s(&self) -> u64 {
        self.span_s
    }

    fn now_sec(&self) -> u64 {
        self.epoch.elapsed().as_secs()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Advances the ring to `now_sec`, resetting every bucket that falls
    /// out of the window. Work is bounded by `min(elapsed, ring_len)`
    /// bucket resets regardless of how long the window sat idle.
    fn rotate_to(inner: &mut Inner, now_sec: u64) {
        let elapsed = now_sec.saturating_sub(inner.head_sec);
        if elapsed == 0 {
            return;
        }
        let len = inner.buckets.len();
        let steps = (elapsed as usize).min(len);
        for _ in 0..steps {
            inner.head = (inner.head + 1) % len;
            inner.buckets[inner.head].reset();
        }
        inner.head_sec = now_sec;
    }

    /// Adds `delta` to windowed counter `name` in the current bucket.
    pub fn counter_add(&self, name: &str, delta: u64) {
        self.counter_add_at(name, delta, self.now_sec());
    }

    /// Records one observation into windowed histogram `name`.
    pub fn observe(&self, name: &str, value: f64) {
        self.observe_at(name, value, self.now_sec());
    }

    /// [`Window::counter_add`] with an explicit second index (tests drive
    /// the clock deterministically through this).
    pub fn counter_add_at(&self, name: &str, delta: u64, now_sec: u64) {
        let mut inner = self.lock();
        Self::rotate_to(&mut inner, now_sec);
        let head = inner.head;
        match inner.buckets[head].counters.get_mut(name) {
            Some(c) => *c = c.saturating_add(delta),
            None => {
                inner.buckets[head].counters.insert(name.to_string(), delta);
            }
        }
    }

    /// [`Window::observe`] with an explicit second index.
    pub fn observe_at(&self, name: &str, value: f64, now_sec: u64) {
        let mut inner = self.lock();
        Self::rotate_to(&mut inner, now_sec);
        let head = inner.head;
        match inner.buckets[head].histograms.get_mut(name) {
            Some(h) => h.record(value),
            None => {
                let mut h = Histogram::new();
                h.record(value);
                inner.buckets[head].histograms.insert(name.to_string(), h);
            }
        }
    }

    /// Merges the newest `window_s` buckets (clamped to the ring span,
    /// including the currently-filling partial second) into one snapshot.
    pub fn merged(&self, window_s: u64) -> WindowSnapshot {
        self.merged_at(window_s, self.now_sec())
    }

    /// [`Window::merged`] with an explicit second index.
    pub fn merged_at(&self, window_s: u64, now_sec: u64) -> WindowSnapshot {
        let window_s = window_s.clamp(1, self.span_s);
        let mut inner = self.lock();
        Self::rotate_to(&mut inner, now_sec);
        let len = inner.buckets.len();
        let mut counters: HashMap<&str, u64> = HashMap::new();
        let mut histograms: HashMap<&str, Histogram> = HashMap::new();
        // The current partial bucket plus `window_s` completed ones.
        for back in 0..=(window_s as usize) {
            let idx = (inner.head + len - back) % len;
            let bucket = &inner.buckets[idx];
            for (k, &v) in &bucket.counters {
                if v != 0 {
                    *counters.entry(k.as_str()).or_insert(0) += v;
                }
            }
            for (k, h) in &bucket.histograms {
                if h.count() != 0 {
                    histograms.entry(k.as_str()).or_default().merge(h);
                }
            }
        }
        let mut counters: Vec<(String, u64)> = counters
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect();
        counters.sort_by(|a, b| a.0.cmp(&b.0));
        let mut histograms: Vec<(String, HistSnapshot)> = histograms
            .into_iter()
            .map(|(k, h)| (k.to_string(), h.snapshot()))
            .collect();
        histograms.sort_by(|a, b| a.0.cmp(&b.0));
        WindowSnapshot {
            seconds: window_s,
            counters,
            histograms,
        }
    }

    /// Clears all buckets (primarily for tests).
    pub fn reset(&self) {
        let mut inner = self.lock();
        for b in inner.buckets.iter_mut() {
            b.reset();
        }
    }
}

fn span_from_env() -> u64 {
    std::env::var(WINDOW_ENV)
        .ok()
        .and_then(|v| v.trim().parse::<u64>().ok())
        .unwrap_or(DEFAULT_WINDOW_S)
        .clamp(1, MAX_WINDOW_S)
}

static GLOBAL_WINDOW: LazyLock<Window> = LazyLock::new(|| Window::with_span(span_from_env()));

/// The process-global window ring (span from [`WINDOW_ENV`], default 60 s).
pub fn global_window() -> &'static Window {
    &GLOBAL_WINDOW
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
    use std::sync::Arc;

    #[test]
    fn merge_respects_the_window_span() {
        let w = Window::with_span(60);
        w.counter_add_at("c", 1, 0);
        w.observe_at("h", 10.0, 0);
        w.counter_add_at("c", 2, 5);
        w.observe_at("h", 20.0, 5);
        // At t=8 a 10s window sees everything…
        let s = w.merged_at(10, 8);
        assert_eq!(s.counter("c"), 3);
        assert_eq!(s.histogram("h").unwrap().count, 2);
        // …a 3s window only the t=5 recordings…
        let s = w.merged_at(3, 8);
        assert_eq!(s.counter("c"), 2);
        assert_eq!(s.histogram("h").unwrap().count, 1);
        assert_eq!(s.histogram("h").unwrap().min, 20.0);
        // …and at t=90 every bucket has rotated out.
        let s = w.merged_at(60, 90);
        assert_eq!(s.counter("c"), 0);
        assert!(s.histogram("h").is_none());
    }

    #[test]
    fn windowed_percentiles_move_when_the_data_moves() {
        // "Slow period then fast period": lifetime percentiles would blur
        // them; the short window must see only the recent regime.
        let w = Window::with_span(60);
        for i in 0..100 {
            w.observe_at("lat", 1.0, 0);
            let _ = i;
        }
        for _ in 0..100 {
            w.observe_at("lat", 100.0, 30);
        }
        let recent = w.merged_at(5, 32);
        let all = w.merged_at(60, 32);
        assert!(recent.histogram("lat").unwrap().p50 > 50.0);
        assert_eq!(all.histogram("lat").unwrap().count, 200);
        assert!(all.histogram("lat").unwrap().p50 < recent.histogram("lat").unwrap().p50);
    }

    #[test]
    fn rotation_is_bounded_and_reuses_allocations() {
        let w = Window::with_span(10);
        for sec in 0..5 {
            w.counter_add_at("c", 1, sec);
            w.observe_at("h", sec as f64 + 1.0, sec);
        }
        // A huge idle gap must not cost more than ring-length resets, and
        // afterwards the window is empty but the maps still hold their keys
        // (reuse — asserted indirectly: recording again works and merge
        // sees exactly the new data).
        w.counter_add_at("c", 7, 1_000_000);
        let s = w.merged_at(10, 1_000_000);
        assert_eq!(s.counter("c"), 7);
        assert!(s.histogram("h").is_none(), "stale data must be gone");
    }

    #[test]
    fn concurrent_rotate_and_record_never_drop_a_recording() {
        // Writers hammer counter_add while a rotator advances the clock.
        // Every recorded unit must land either in a still-live bucket or a
        // rotated-out one — but the *total ever recorded* must equal the
        // sum of what merges saw plus what rotated away; with a span wider
        // than the test duration nothing rotates away, so the merged total
        // must equal the recorded total exactly (no torn read between
        // rotate and record).
        let w = Arc::new(Window::with_span(600));
        let stop = Arc::new(AtomicBool::new(false));
        let recorded = Arc::new(AtomicU64::new(0));
        let clock = Arc::new(AtomicU64::new(0));
        let rotator = {
            let w = Arc::clone(&w);
            let stop = Arc::clone(&stop);
            let clock = Arc::clone(&clock);
            std::thread::spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    let sec = clock.fetch_add(1, Ordering::Relaxed) + 1;
                    // Force the rotation from the reader side too.
                    let _ = w.merged_at(600, sec);
                    std::thread::sleep(std::time::Duration::from_micros(200));
                }
            })
        };
        let writers: Vec<_> = (0..4)
            .map(|_| {
                let w = Arc::clone(&w);
                let stop = Arc::clone(&stop);
                let recorded = Arc::clone(&recorded);
                let clock = Arc::clone(&clock);
                std::thread::spawn(move || {
                    while !stop.load(Ordering::Relaxed) {
                        let sec = clock.load(Ordering::Relaxed);
                        w.counter_add_at("units", 1, sec);
                        w.observe_at("v", 1.0, sec);
                        recorded.fetch_add(1, Ordering::Relaxed);
                    }
                })
            })
            .collect();
        std::thread::sleep(std::time::Duration::from_millis(50));
        stop.store(true, Ordering::Relaxed);
        for h in writers {
            h.join().unwrap();
        }
        rotator.join().unwrap();
        let total = recorded.load(Ordering::Relaxed);
        // The rotator advanced ~250 seconds at most — well inside the
        // 600-bucket span, so nothing may have rotated out and the merged
        // totals must conserve every recording exactly.
        let s = w.merged_at(600, clock.load(Ordering::Relaxed));
        assert_eq!(
            s.counter("units"),
            total,
            "rotation dropped or tore recordings"
        );
        assert_eq!(s.histogram("v").unwrap().count, total);
    }

    #[test]
    fn env_span_parsing_clamps() {
        assert_eq!(Window::with_span(0).span_s(), 1);
        assert_eq!(Window::with_span(10_000).span_s(), MAX_WINDOW_S);
        assert_eq!(Window::with_span(60).span_s(), 60);
    }
}
