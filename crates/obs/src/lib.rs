//! # x2v-obs — zero-dependency instrumentation for the x2vec workspace
//!
//! The paper frames every technique by its asymptotics (1-WL in
//! `O((n+m) log n)`, `hom(F,G)` in `n^{tw(F)+1}`, …); this crate turns those
//! claims into *measured* artifacts. It provides, with no dependencies
//! beyond `std`:
//!
//! * **Span timers** — [`span`] returns a drop-guard that records wall time
//!   into a process-global registry (call count, total/self/min/max/mean;
//!   `self` excludes time spent in nested child spans, so flame-style
//!   attribution sums to real wall time even under re-entrant nesting);
//! * **Counters** ([`counter_add`]) and **histograms** ([`observe`]) for
//!   domain quantities: WL rounds-to-stability, colour classes, hom-count
//!   recursion nodes, negative samples drawn, SVM sweeps, Gram entries;
//! * A hand-rolled **JSON exporter** ([`write_report`]) producing
//!   `target/obs/<run>.json` with stable key order, plus a human-readable
//!   table ([`print_table`]);
//! * **Progress heartbeats** ([`progress`]) for long-running training
//!   loops, routed to a pluggable handler.
//!
//! ## Cost model
//!
//! Everything is gated on the `X2V_OBS` environment variable (read once).
//! When disabled, every entry point reduces to one relaxed atomic load —
//! instrumented hot paths pay well under 5 ns per call. When enabled, a
//! span costs two `Instant` reads plus one mutex-protected hash update, so
//! instrumentation belongs at *operation* granularity (a refinement run, a
//! Gram build, a CV fold), never inside per-node inner loops; per-item
//! quantities are accumulated locally and flushed once per operation.
//!
//! ## `X2V_OBS` values
//!
//! Comma-separated flags: `1`/`on`/`collect` collect metrics; `report`
//! additionally writes the JSON run report at [`finish`]; `table`
//! additionally prints the table at [`finish`]; `progress` prints epoch
//! heartbeats to stderr. `report` and `table` imply collection. Unset,
//! empty, `0` or `off` disable everything.
//!
//! ```
//! x2v_obs::set_enabled(true);
//! {
//!     let _timer = x2v_obs::span("doc/example");
//!     x2v_obs::counter_add("doc/widgets", 3);
//!     x2v_obs::observe("doc/batch_size", 128.0);
//! }
//! let report = x2v_obs::report("doc");
//! assert_eq!(report.counters["doc/widgets"], 3);
//! x2v_obs::reset();
//! x2v_obs::set_enabled(false);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod fsio;
pub mod keys;
mod progress;
mod registry;
mod report;
pub mod window;

pub use fsio::atomic_write;
pub use progress::{progress, set_progress_handler, ProgressEvent};
pub use registry::{HistSnapshot, Histogram, Registry, SpanSnapshot};
pub use report::{json_escape, Report};
pub use window::{Window, WindowSnapshot, DEFAULT_WINDOW_S, WINDOW_ENV};

use std::cell::Cell;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::{LazyLock, OnceLock};
use std::time::Instant;

static GLOBAL: LazyLock<Registry> = LazyLock::new(Registry::new);

/// Bit flags packed into [`STATE`]; bit 0 marks initialisation.
const INIT: u32 = 1;
const COLLECT: u32 = 1 << 1;
const REPORT: u32 = 1 << 2;
const TABLE: u32 = 1 << 3;
const PROGRESS: u32 = 1 << 4;
/// Set when a [`SpanSink`] is installed: spans fire begin/end events even
/// if aggregate collection is off.
const HOOKED: u32 = 1 << 5;

static STATE: AtomicU32 = AtomicU32::new(0);

/// A sink receiving raw span begin/end and instant events, installed once
/// per process by a tracing backend (`x2v-prof` in this workspace). The
/// sink sees every span *event* in real time, in contrast to the
/// aggregate statistics this crate accumulates; it must be cheap and must
/// not re-enter the obs API from `begin`/`end`.
pub trait SpanSink: Sync {
    /// A span named `name` opened on the calling thread.
    fn begin(&self, name: &'static str);
    /// The innermost open span named `name` closed on the calling thread.
    fn end(&self, name: &'static str);
    /// A point event (no duration) on the calling thread.
    fn instant(&self, name: &'static str);
}

static SINK: OnceLock<&'static dyn SpanSink> = OnceLock::new();

/// Installs the process-wide span sink. Returns `false` if one was already
/// installed (the first installation wins). After installation every
/// [`span`] fires `begin`/`end` on the sink regardless of whether metric
/// collection is enabled.
pub fn install_span_sink(sink: &'static dyn SpanSink) -> bool {
    if SINK.set(sink).is_err() {
        return false;
    }
    // Force env parsing first so the fetch_or below cannot be mistaken for
    // an initialised state with an unparsed environment.
    let _ = flags();
    STATE.fetch_or(HOOKED, Ordering::Relaxed);
    true
}

thread_local! {
    /// Wall time (ns) of completed child spans at the current nesting
    /// level, used to compute exclusive (`self`) time. Guards save and
    /// restore it LIFO, which matches scope-based drop order.
    static CHILD_NS: Cell<u64> = const { Cell::new(0) };
}

fn parse_env() -> u32 {
    let mut flags = INIT;
    let Ok(value) = std::env::var("X2V_OBS") else {
        return flags;
    };
    for token in value.split(',') {
        match token.trim() {
            "" | "0" | "off" | "false" => {}
            "report" => flags |= COLLECT | REPORT,
            "table" => flags |= COLLECT | TABLE,
            "progress" => flags |= PROGRESS,
            // Any other truthy token ("1", "on", "collect", …).
            _ => flags |= COLLECT,
        }
    }
    flags
}

#[inline]
fn flags() -> u32 {
    let f = STATE.load(Ordering::Relaxed);
    if f & INIT != 0 {
        f
    } else {
        init_slow()
    }
}

#[cold]
fn init_slow() -> u32 {
    let f = parse_env();
    // Racing initialisers compute the same value; last store wins harmlessly.
    STATE.store(f, Ordering::Relaxed);
    f
}

/// Whether metric collection is on. One relaxed atomic load on the fast
/// path — safe to call in hot code.
#[inline]
pub fn enabled() -> bool {
    flags() & COLLECT != 0
}

/// Whether [`finish`] should write the JSON run report.
pub fn report_enabled() -> bool {
    flags() & REPORT != 0
}

/// Whether progress heartbeats are printed by the default handler.
pub fn progress_enabled() -> bool {
    flags() & PROGRESS != 0
}

/// Programmatically enables or disables collection, overriding `X2V_OBS`.
/// Report/table/progress flags are left as the environment set them.
pub fn set_enabled(on: bool) {
    let f = flags();
    let f = if on { f | COLLECT } else { f & !COLLECT };
    STATE.store(f | INIT, Ordering::Relaxed);
}

/// Access to the process-global registry (for advanced integrations; the
/// free functions below cover normal use).
pub fn global() -> &'static Registry {
    &GLOBAL
}

/// A drop-guard recording the wall time between construction and drop
/// under `name`. When collection is disabled and no sink is installed the
/// guard is inert.
///
/// Guards are assumed to drop in reverse creation order (the natural
/// scope-based pattern); out-of-order drops skew the self-time split but
/// never the inclusive totals.
#[must_use = "a span guard measures until it is dropped"]
pub struct SpanGuard {
    name: &'static str,
    start: Option<Instant>,
    /// Parent's accumulated child time, restored (plus our own total) on
    /// drop. Only meaningful when `start` is `Some`.
    parent_child_ns: u64,
    hooked: bool,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(start) = self.start {
            let total_ns = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
            let child_ns = CHILD_NS.get();
            let self_ns = total_ns.saturating_sub(child_ns);
            CHILD_NS.set(self.parent_child_ns.saturating_add(total_ns));
            GLOBAL.record_span_parts(self.name, total_ns, self_ns);
        }
        if self.hooked {
            if let Some(sink) = SINK.get() {
                sink.end(self.name);
            }
        }
    }
}

/// Starts a span timer. Bind it: `let _timer = x2v_obs::span("wl/refine");`.
#[inline]
pub fn span(name: &'static str) -> SpanGuard {
    let f = flags();
    if f & (COLLECT | HOOKED) == 0 {
        return SpanGuard {
            name,
            start: None,
            parent_child_ns: 0,
            hooked: false,
        };
    }
    span_slow(name, f)
}

fn span_slow(name: &'static str, f: u32) -> SpanGuard {
    let hooked = f & HOOKED != 0;
    if hooked {
        if let Some(sink) = SINK.get() {
            sink.begin(name);
        }
    }
    let (start, parent_child_ns) = if f & COLLECT != 0 {
        let parent = CHILD_NS.replace(0);
        (Some(Instant::now()), parent)
    } else {
        (None, 0)
    };
    SpanGuard {
        name,
        start,
        parent_child_ns,
        hooked,
    }
}

/// Emits a point event to the installed [`SpanSink`] (e.g. a budget trip or
/// a degradation). One relaxed atomic load when no sink is installed; does
/// not touch the aggregate registry — pair with [`counter_add`] when the
/// occurrence should also be counted.
#[inline]
pub fn mark(name: &'static str) {
    if flags() & HOOKED != 0 {
        if let Some(sink) = SINK.get() {
            sink.instant(name);
        }
    }
}

/// Starts a span timer (macro form, mirroring `obs::span!("wl/refine")`).
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::span($name)
    };
}

/// Adds `delta` to the counter `name`.
#[inline]
pub fn counter_add(name: &'static str, delta: u64) {
    if enabled() {
        GLOBAL.counter_add(name, delta);
    }
}

/// Records one observation of a domain quantity into histogram `name`.
#[inline]
pub fn observe(name: &'static str, value: f64) {
    if enabled() {
        GLOBAL.observe(name, value);
    }
}

/// Raises counter `name` to `value` if it is currently lower (high-water
/// mark; idempotent, safe to call from a periodic sampler).
#[inline]
pub fn counter_max(name: &'static str, value: u64) {
    if enabled() {
        GLOBAL.counter_max(name, value);
    }
}

/// The process-global window ring (see [`window`]). Metrics land in it via
/// [`windowed_counter_add`] / [`windowed_observe`]; readers merge it with
/// [`Window::merged`].
pub fn global_window() -> &'static Window {
    window::global_window()
}

/// Adds `delta` to counter `name` in **both** the lifetime registry and
/// the current window bucket, so the metric can be read as "last N
/// seconds" *and* "since start". One relaxed atomic load when disabled.
#[inline]
pub fn windowed_counter_add(name: &'static str, delta: u64) {
    if enabled() {
        GLOBAL.counter_add(name, delta);
        window::global_window().counter_add(name, delta);
    }
}

/// Records one observation into histogram `name` in **both** the lifetime
/// registry and the current window bucket. One relaxed atomic load when
/// disabled.
#[inline]
pub fn windowed_observe(name: &'static str, value: f64) {
    if enabled() {
        GLOBAL.observe(name, value);
        window::global_window().observe(name, value);
    }
}

/// Peak resident set size of this process in bytes, from `VmHWM` in
/// `/proc/self/status`. `None` on platforms without procfs or if the field
/// is absent. Lives here (the bottom of the crate stack) so both the
/// exit-time `ObsRun` guard and live snapshot flushers can sample it.
pub fn peak_rss_bytes() -> Option<u64> {
    #[cfg(target_os = "linux")]
    {
        let status = std::fs::read_to_string("/proc/self/status").ok()?;
        for line in status.lines() {
            if let Some(rest) = line.strip_prefix("VmHWM:") {
                let kb: u64 = rest.trim().trim_end_matches("kB").trim().parse().ok()?;
                return Some(kb * 1024);
            }
        }
        None
    }
    #[cfg(not(target_os = "linux"))]
    {
        None
    }
}

/// Snapshots the global registry into a [`Report`] named `run`.
pub fn report(run: &str) -> Report {
    Report::from_registry(&GLOBAL, run)
}

/// Clears all globally recorded metrics (primarily for tests).
pub fn reset() {
    GLOBAL.reset();
}

/// Writes the JSON run report to `target/obs/<run>.json` (directory
/// overridable via `X2V_OBS_DIR`) and returns the path.
pub fn write_report(run: &str) -> std::io::Result<std::path::PathBuf> {
    report(run).write_json_file()
}

/// Prints the human-readable metrics table to stderr.
pub fn print_table(run: &str) {
    eprint!("{}", report(run).render_table());
}

/// Finalises a run: writes the JSON report if `X2V_OBS` contains `report`,
/// prints the table if it contains `table`. Call once at the end of an
/// experiment binary; a no-op otherwise.
pub fn finish(run: &str) {
    let f = flags();
    if f & TABLE != 0 {
        print_table(run);
    }
    if f & REPORT != 0 {
        match write_report(run) {
            Ok(path) => eprintln!("[x2v-obs] wrote run report {}", path.display()),
            Err(e) => eprintln!("[x2v-obs] failed to write run report: {e}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Global-state tests share one process; keep them in a single #[test]
    // so they cannot interleave.
    #[test]
    fn global_collection_end_to_end() {
        set_enabled(true);
        reset();
        {
            let _timer = span("test/outer");
            let _inner = span("test/inner");
            counter_add("test/count", 2);
            counter_add("test/count", 3);
            observe("test/hist", 1.0);
            observe("test/hist", 3.0);
        }
        let r = report("unit");
        assert_eq!(r.run, "unit");
        assert_eq!(r.counters["test/count"], 5);
        assert_eq!(r.spans["test/outer"].calls, 1);
        assert_eq!(r.spans["test/inner"].calls, 1);
        let h = &r.histograms["test/hist"];
        assert_eq!(h.count, 2);
        assert_eq!(h.min, 1.0);
        assert_eq!(h.max, 3.0);
        assert!((h.sum - 4.0).abs() < 1e-12);

        // Disabled: nothing is recorded, guards are inert.
        set_enabled(false);
        {
            let _timer = span("test/disabled");
            counter_add("test/disabled", 1);
            observe("test/disabled", 1.0);
        }
        set_enabled(true);
        let r = report("unit");
        assert!(!r.spans.contains_key("test/disabled"));
        assert!(!r.counters.contains_key("test/disabled"));
        reset();
        let r = report("unit");
        assert!(r.spans.is_empty() && r.counters.is_empty() && r.histograms.is_empty());
        set_enabled(false);
    }
}
