//! Multi-threaded stress test: 8 threads hammering one registry must lose
//! no events and corrupt no aggregates.

use std::sync::Arc;
use std::thread;
use std::time::Duration;
use x2v_obs::Registry;

const THREADS: usize = 8;
const ITERS: u64 = 10_000;

#[test]
fn eight_threads_no_lost_updates() {
    let registry = Arc::new(Registry::new());
    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let r = Arc::clone(&registry);
            thread::spawn(move || {
                for i in 0..ITERS {
                    r.counter_add("shared", 1);
                    r.counter_add("per-thread", t as u64);
                    r.record_span("work", Duration::from_nanos(100 + i % 7));
                    r.observe("values", (i % 10) as f64);
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("worker panicked");
    }

    let (spans, counters, hists) = registry.snapshot();

    let shared = counters
        .iter()
        .find(|(k, _)| k == "shared")
        .map(|(_, v)| *v)
        .expect("shared counter present");
    assert_eq!(shared, THREADS as u64 * ITERS);

    let per_thread = counters
        .iter()
        .find(|(k, _)| k == "per-thread")
        .map(|(_, v)| *v)
        .expect("per-thread counter present");
    // Σ_t t·ITERS = ITERS · THREADS(THREADS−1)/2.
    assert_eq!(per_thread, ITERS * (THREADS * (THREADS - 1) / 2) as u64);

    let work = spans
        .iter()
        .find(|(k, _)| k == "work")
        .map(|(_, s)| *s)
        .expect("work span present");
    assert_eq!(work.calls, THREADS as u64 * ITERS);
    assert!(work.min_ns >= 100 && work.max_ns <= 106);
    assert_eq!(
        work.total_ns,
        (0..ITERS).map(|i| 100 + i % 7).sum::<u64>() * THREADS as u64
    );

    let values = hists
        .iter()
        .find(|(k, _)| k == "values")
        .map(|(_, h)| *h)
        .expect("values histogram present");
    assert_eq!(values.count, THREADS as u64 * ITERS);
    assert_eq!(values.min, 0.0);
    assert_eq!(values.max, 9.0);
    assert!((values.mean() - 4.5).abs() < 1e-9);
}

#[test]
fn concurrent_reset_does_not_poison() {
    // Interleave writers with resets; final state must still be usable.
    let registry = Arc::new(Registry::new());
    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let r = Arc::clone(&registry);
            thread::spawn(move || {
                for i in 0..1_000u64 {
                    if t == 0 && i % 100 == 0 {
                        r.reset();
                    } else {
                        r.counter_add("c", 1);
                        r.observe("h", i as f64);
                    }
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("worker panicked");
    }
    registry.counter_add("after", 7);
    let (_, counters, _) = registry.snapshot();
    let after = counters.iter().find(|(k, _)| k == "after").map(|(_, v)| *v);
    assert_eq!(after, Some(7));
}
