//! Golden test pinning the JSON report format: stable key order, schema
//! tag, and the exact number formatting rules of the hand-rolled encoder.

use std::time::Duration;
use x2v_obs::{Registry, Report};

#[test]
fn report_json_matches_golden() {
    let registry = Registry::new();
    // Spans are recorded from explicit durations, so the report is fully
    // deterministic.
    registry.record_span("wl/refine", Duration::from_nanos(1500));
    registry.record_span("wl/refine", Duration::from_nanos(500));
    registry.record_span("kernel/gram", Duration::from_nanos(3000));
    registry.counter_add("hom/recursion_nodes", 42);
    registry.counter_add("embed/negative_samples", 9001);
    registry.observe("wl/rounds_to_stability", 3.0);
    registry.observe("wl/rounds_to_stability", 5.0);
    registry.observe("svm/support_vectors", 12.5);

    let report = Report::from_registry(&registry, "golden");
    // Percentiles are log2-bucket estimates clamped to [min, max]:
    // {3, 5} → p50 interpolates to the top of bucket [2, 4) = 4.0; p90/p99
    // interpolate inside bucket [4, 8) and clamp to the observed max 5.0.
    let golden = r#"{
  "schema": "x2v-obs/v2",
  "run": "golden",
  "spans": {
    "kernel/gram": {"calls": 1, "total_ns": 3000, "self_ns": 3000, "min_ns": 3000, "max_ns": 3000, "mean_ns": 3000.0},
    "wl/refine": {"calls": 2, "total_ns": 2000, "self_ns": 2000, "min_ns": 500, "max_ns": 1500, "mean_ns": 1000.0}
  },
  "counters": {
    "embed/negative_samples": 9001,
    "hom/recursion_nodes": 42
  },
  "histograms": {
    "svm/support_vectors": {"count": 1, "sum": 12.5, "min": 12.5, "max": 12.5, "mean": 12.5, "p50": 12.5, "p90": 12.5, "p99": 12.5},
    "wl/rounds_to_stability": {"count": 2, "sum": 8.0, "min": 3.0, "max": 5.0, "mean": 4.0, "p50": 4.0, "p90": 5.0, "p99": 5.0}
  }
}
"#;
    assert_eq!(report.to_json(), golden);
}

#[test]
fn spans_with_explicit_self_time_serialise() {
    let registry = Registry::new();
    registry.record_span_parts("outer", 1000, 250);
    let report = Report::from_registry(&registry, "selftime");
    assert!(report
        .to_json()
        .contains(r#""outer": {"calls": 1, "total_ns": 1000, "self_ns": 250"#));
}

#[test]
fn empty_report_is_valid_and_stable() {
    let registry = Registry::new();
    let report = Report::from_registry(&registry, "empty");
    let golden = "{\n  \"schema\": \"x2v-obs/v2\",\n  \"run\": \"empty\",\n  \"spans\": {},\n  \"counters\": {},\n  \"histograms\": {}\n}\n";
    assert_eq!(report.to_json(), golden);
    assert_eq!(report.num_keys(), 0);
}

#[test]
fn json_escaping_in_run_names() {
    let registry = Registry::new();
    let report = Report::from_registry(&registry, "quote\"back\\slash\nnewline");
    let json = report.to_json();
    assert!(json.contains(r#""run": "quote\"back\\slash\nnewline""#));
}
