//! Span nesting semantics (the re-entrancy fix): `total_ns` is inclusive
//! wall time per completed span — nested spans under the *same* name still
//! sum both levels there, by documented design — while `self_ns` excludes
//! child-span time of any name, so exclusive attribution never
//! double-counts and sums to real wall time.

use std::thread;
use std::time::Duration;

// Global-registry tests share one process; a single #[test] keeps the
// scenarios from interleaving.
#[test]
fn self_time_excludes_children() {
    x2v_obs::set_enabled(true);
    x2v_obs::reset();

    // Distinct names: outer wraps inner, so outer self = outer total −
    // inner total, exactly (both sides come from the same measurements).
    {
        let _outer = x2v_obs::span("nest/outer");
        thread::sleep(Duration::from_millis(4));
        {
            let _inner = x2v_obs::span("nest/inner");
            thread::sleep(Duration::from_millis(8));
        }
    }
    let r = x2v_obs::report("nesting");
    let outer = r.spans["nest/outer"];
    let inner = r.spans["nest/inner"];
    assert_eq!(inner.total_ns, inner.self_ns, "leaf span: self == total");
    assert_eq!(
        outer.self_ns,
        outer.total_ns - inner.total_ns,
        "outer self time is total minus the measured child time"
    );
    assert!(outer.total_ns > inner.total_ns);

    // Same-name re-entrancy: total_ns double-counts the inner level (2
    // completions, inclusive each), but self_ns equals the outermost
    // span's wall time — flame-style attribution stays truthful.
    x2v_obs::reset();
    {
        let _a = x2v_obs::span("nest/same");
        thread::sleep(Duration::from_millis(2));
        {
            let _b = x2v_obs::span("nest/same");
            thread::sleep(Duration::from_millis(6));
        }
    }
    let r = x2v_obs::report("nesting");
    let same = r.spans["nest/same"];
    assert_eq!(same.calls, 2);
    // total = outer + inner > outer = self: strictly larger because the
    // inner span slept.
    assert!(
        same.total_ns > same.self_ns,
        "re-entrant total must double-count while self must not: total={} self={}",
        same.total_ns,
        same.self_ns
    );
    // self == outer wall time == max_ns (the slower of the two spans).
    assert_eq!(same.self_ns, same.max_ns);
    // And total is exactly outer + inner = max + min.
    assert_eq!(same.total_ns, same.max_ns + same.min_ns);

    // Siblings both subtract from the parent; grandchildren subtract from
    // their parent only (not from the grandparent twice).
    x2v_obs::reset();
    {
        let _g = x2v_obs::span("nest/grand");
        {
            let _p = x2v_obs::span("nest/parent");
            {
                let _c1 = x2v_obs::span("nest/child");
                thread::sleep(Duration::from_millis(3));
            }
            {
                let _c2 = x2v_obs::span("nest/child");
                thread::sleep(Duration::from_millis(3));
            }
        }
    }
    let r = x2v_obs::report("nesting");
    let grand = r.spans["nest/grand"];
    let parent = r.spans["nest/parent"];
    let child = r.spans["nest/child"];
    assert_eq!(child.calls, 2);
    assert_eq!(parent.self_ns, parent.total_ns - child.total_ns);
    assert_eq!(grand.self_ns, grand.total_ns - parent.total_ns);
    // Exclusive times tile the grandparent's wall clock exactly.
    assert_eq!(
        grand.self_ns + parent.self_ns + child.self_ns,
        grand.total_ns
    );

    x2v_obs::reset();
    x2v_obs::set_enabled(false);
}
