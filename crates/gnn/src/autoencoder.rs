//! Graph autoencoders (Section 2.5, Kipf–Welling [59]): unsupervised
//! training of graph/node embeddings by reconstructing the adjacency
//! structure.
//!
//! Encoder: one propagation layer `Z = Â X W` with the symmetrically
//! normalised adjacency `Â = D^{−1/2}(A + I)D^{−1/2}` and one-hot inputs.
//! Decoder: `σ(z_u · z_v)`. Loss: balanced cross-entropy over all pairs.
//! Gradients are exact and hand-derived (no autograd).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use x2v_graph::Graph;
use x2v_linalg::vector::sigmoid;
use x2v_linalg::Matrix;

/// Hyperparameters of the graph autoencoder.
#[derive(Clone, Debug)]
pub struct GaeConfig {
    /// Latent dimension.
    pub dim: usize,
    /// Learning rate.
    pub learning_rate: f64,
    /// Training epochs.
    pub epochs: usize,
    /// RNG seed for initialisation.
    pub seed: u64,
}

impl Default for GaeConfig {
    fn default() -> Self {
        GaeConfig {
            dim: 16,
            learning_rate: 0.1,
            epochs: 200,
            seed: 0x6ae,
        }
    }
}

/// A trained graph autoencoder on one graph (transductive).
pub struct GraphAutoencoder {
    /// Node embeddings `Z` (n × dim).
    pub z: Matrix,
    /// Loss trajectory (one entry per epoch).
    pub losses: Vec<f64>,
}

/// Symmetrically normalised adjacency with self-loops.
fn normalised_adjacency(g: &Graph) -> Matrix {
    let n = g.order();
    let mut a = Matrix::from_flat(n, n, g.adjacency_flat());
    for v in 0..n {
        a[(v, v)] = 1.0;
    }
    let deg: Vec<f64> = (0..n)
        .map(|v| (0..n).map(|w| a[(v, w)]).sum::<f64>().sqrt())
        .collect();
    for v in 0..n {
        for w in 0..n {
            a[(v, w)] /= deg[v] * deg[w];
        }
    }
    a
}

impl GraphAutoencoder {
    /// Trains on `g`; with one-hot inputs the encoder is `Z = Â W` for a
    /// learnable `W ∈ ℝ^{n×d}`.
    pub fn train(g: &Graph, config: &GaeConfig) -> Self {
        let n = g.order();
        let d = config.dim;
        let a_hat = normalised_adjacency(g);
        let mut rng = StdRng::seed_from_u64(config.seed);
        let mut w = Matrix::zeros(n, d);
        let scale = (1.0 / d as f64).sqrt();
        for i in 0..n {
            for j in 0..d {
                w[(i, j)] = (rng.random::<f64>() * 2.0 - 1.0) * scale;
            }
        }
        // Class balance: weight positive pairs by #neg / #pos.
        let m = g.size() as f64;
        let pairs = (n * (n - 1) / 2) as f64;
        let pos_weight = ((pairs - m) / m.max(1.0)).max(1.0);
        let mut losses = Vec::with_capacity(config.epochs);
        for _ in 0..config.epochs {
            let z = a_hat.matmul(&w);
            // Loss and dL/dZ over unordered pairs.
            let mut d_z = Matrix::zeros(n, d);
            let mut loss = 0.0;
            for u in 0..n {
                for v in (u + 1)..n {
                    let dot: f64 = z.row(u).iter().zip(z.row(v)).map(|(a, b)| a * b).sum();
                    let p = sigmoid(dot);
                    let (target, weight) = if g.has_edge(u, v) {
                        (1.0, pos_weight)
                    } else {
                        (0.0, 1.0)
                    };
                    loss -= weight
                        * (target * p.max(1e-12).ln() + (1.0 - target) * (1.0 - p).max(1e-12).ln());
                    let gcoef = weight * (p - target);
                    for k in 0..d {
                        d_z[(u, k)] += gcoef * z[(v, k)];
                        d_z[(v, k)] += gcoef * z[(u, k)];
                    }
                }
            }
            losses.push(loss / pairs);
            // dL/dW = Âᵀ dZ (Â symmetric).
            let d_w = a_hat.matmul(&d_z);
            for (wi, gi) in w.as_mut_slice().iter_mut().zip(d_w.as_slice()) {
                *wi -= config.learning_rate * gi / pairs;
            }
        }
        let z = a_hat.matmul(&w);
        GraphAutoencoder { z, losses }
    }

    /// Reconstruction score of a pair (`σ(z_u · z_v)` — probability of an
    /// edge under the decoder).
    pub fn edge_score(&self, u: usize, v: usize) -> f64 {
        let dot: f64 = self
            .z
            .row(u)
            .iter()
            .zip(self.z.row(v))
            .map(|(a, b)| a * b)
            .sum();
        sigmoid(dot)
    }

    /// AUC of edge reconstruction: the probability that a random true edge
    /// scores above a random non-edge (exact, all pairs).
    pub fn reconstruction_auc(&self, g: &Graph) -> f64 {
        let n = g.order();
        let mut pos = Vec::new();
        let mut neg = Vec::new();
        for u in 0..n {
            for v in (u + 1)..n {
                let s = self.edge_score(u, v);
                if g.has_edge(u, v) {
                    pos.push(s);
                } else {
                    neg.push(s);
                }
            }
        }
        if pos.is_empty() || neg.is_empty() {
            return 0.5;
        }
        let mut wins = 0.0;
        for &p in &pos {
            for &q in &neg {
                if p > q {
                    wins += 1.0;
                } else if p == q {
                    wins += 0.5;
                }
            }
        }
        wins / (pos.len() * neg.len()) as f64
    }

    /// The learned node embeddings as row vectors.
    pub fn embeddings(&self) -> Vec<Vec<f64>> {
        (0..self.z.rows()).map(|v| self.z.row(v).to_vec()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use x2v_graph::generators::{cycle, sbm};

    #[test]
    fn loss_decreases_and_auc_beats_chance() {
        let mut rng = StdRng::seed_from_u64(3);
        let g = sbm(&[8, 8], 0.7, 0.08, &mut rng);
        let gae = GraphAutoencoder::train(&g, &GaeConfig::default());
        assert!(
            gae.losses.last().unwrap() < &gae.losses[0],
            "loss must drop"
        );
        let auc = gae.reconstruction_auc(&g);
        assert!(auc > 0.8, "reconstruction AUC {auc}");
    }

    #[test]
    fn communities_cluster_in_latent_space() {
        let mut rng = StdRng::seed_from_u64(4);
        let g = sbm(&[8, 8], 0.8, 0.05, &mut rng);
        let gae = GraphAutoencoder::train(&g, &GaeConfig::default());
        let z = gae.embeddings();
        let cos = x2v_linalg::vector::cosine;
        let mut intra = (0.0, 0);
        let mut inter = (0.0, 0);
        for a in 0..16 {
            for b in (a + 1)..16 {
                let s = cos(&z[a], &z[b]);
                if (a < 8) == (b < 8) {
                    intra = (intra.0 + s, intra.1 + 1);
                } else {
                    inter = (inter.0 + s, inter.1 + 1);
                }
            }
        }
        assert!(
            intra.0 / intra.1 as f64 > inter.0 / inter.1 as f64,
            "intra-community similarity must dominate"
        );
    }

    #[test]
    fn normalised_adjacency_rows_bounded() {
        let a = normalised_adjacency(&cycle(5));
        // Symmetric, entries in [0, 1].
        for i in 0..5 {
            for j in 0..5 {
                assert!((a[(i, j)] - a[(j, i)]).abs() < 1e-12);
                assert!(a[(i, j)] >= 0.0 && a[(i, j)] <= 1.0);
            }
        }
    }

    #[test]
    fn deterministic() {
        let g = cycle(6);
        let cfg = GaeConfig {
            epochs: 20,
            ..Default::default()
        };
        let a = GraphAutoencoder::train(&g, &cfg);
        let b = GraphAutoencoder::train(&g, &cfg);
        assert!(a.z.approx_eq(&b.z, 0.0));
    }
}
