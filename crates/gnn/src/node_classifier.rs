//! Semi-supervised node classification with a GNN (the Kipf–Welling GCN
//! use-case the paper's Section 2.2 references): train on a few labelled
//! nodes, predict the rest, gradients flowing through the message passing.

use crate::layer::LayerGrads;
use crate::model::{GnnModel, TrainConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use x2v_graph::Graph;
use x2v_linalg::vector::softmax;
use x2v_linalg::Matrix;

/// A GNN with a per-node linear softmax head.
pub struct GnnNodeClassifier {
    /// The message-passing backbone.
    pub model: GnnModel,
    /// Head weights (`classes × hidden`).
    pub w_out: Matrix,
    /// Head bias.
    pub b_out: Vec<f64>,
}

impl GnnNodeClassifier {
    /// Fresh classifier with `classes` output classes.
    pub fn new(model: GnnModel, classes: usize, seed: u64) -> Self {
        let hidden = model
            .layers
            .last()
            .map_or(model.in_dim, crate::layer::GnnLayer::out_dim);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut w_out = Matrix::zeros(classes, hidden);
        let scale = (1.0 / hidden as f64).sqrt();
        for i in 0..classes {
            for j in 0..hidden {
                w_out[(i, j)] = (rng.random::<f64>() * 2.0 - 1.0) * scale;
            }
        }
        GnnNodeClassifier {
            model,
            w_out,
            b_out: vec![0.0; classes],
        }
    }

    /// Class probabilities per node (`n × classes`).
    pub fn predict_proba(&self, g: &Graph) -> Vec<Vec<f64>> {
        let h = self.model.node_embeddings(g);
        (0..g.order())
            .map(|v| {
                let logits: Vec<f64> = (0..self.w_out.rows())
                    .map(|c| {
                        self.b_out[c]
                            + self
                                .w_out
                                .row(c)
                                .iter()
                                .zip(h.row(v))
                                .map(|(w, x)| w * x)
                                .sum::<f64>()
                    })
                    .collect();
                softmax(&logits)
            })
            .collect()
    }

    /// Predicted class per node.
    pub fn predict(&self, g: &Graph) -> Vec<usize> {
        self.predict_proba(g)
            .iter()
            .map(|p| x2v_linalg::vector::argmax(p).expect("at least one class"))
            .collect()
    }

    /// Semi-supervised training: cross-entropy on the `labelled` subset of
    /// nodes only; the rest participate through message passing. Returns
    /// the per-epoch loss trajectory.
    pub fn train(
        &mut self,
        g: &Graph,
        labelled: &[(usize, usize)],
        config: &TrainConfig,
    ) -> Vec<f64> {
        assert!(!labelled.is_empty(), "need at least one labelled node");
        let n = g.order();
        let adj = Matrix::from_flat(n, n, g.adjacency_flat());
        let classes = self.w_out.rows();
        let hidden = self.w_out.cols();
        let mut losses = Vec::with_capacity(config.epochs);
        for _ in 0..config.epochs {
            let x0 = self.model.initial_features(g);
            // Forward with caches.
            let mut h = x0;
            let mut caches = Vec::with_capacity(self.model.layers.len());
            for layer in &self.model.layers {
                let (out, cache) = layer.forward(&adj, &h);
                caches.push(cache);
                h = out;
            }
            // Head + loss on labelled nodes; gradient per node row.
            let mut d_h = Matrix::zeros(n, hidden);
            let mut loss = 0.0;
            for &(v, label) in labelled {
                let logits: Vec<f64> = (0..classes)
                    .map(|c| {
                        self.b_out[c]
                            + self
                                .w_out
                                .row(c)
                                .iter()
                                .zip(h.row(v))
                                .map(|(w, x)| w * x)
                                .sum::<f64>()
                    })
                    .collect();
                let probs = softmax(&logits);
                loss -= probs[label].max(1e-12).ln();
                for c in 0..classes {
                    let d = probs[c] - f64::from(c == label);
                    self.b_out[c] -= config.learning_rate * d;
                    for j in 0..hidden {
                        d_h[(v, j)] += d * self.w_out[(c, j)];
                        self.w_out[(c, j)] -= config.learning_rate * d * h[(v, j)];
                    }
                }
            }
            losses.push(loss / labelled.len() as f64);
            // Backprop through the stack.
            let mut grads: Vec<LayerGrads> = Vec::with_capacity(self.model.layers.len());
            let mut d_cur = d_h;
            for (layer, cache) in self.model.layers.iter().zip(&caches).rev() {
                let (d_in, grad) = layer.backward(&adj, cache, &d_cur);
                grads.push(grad);
                d_cur = d_in;
            }
            grads.reverse();
            for (layer, mut grad) in self.model.layers.iter_mut().zip(grads) {
                clip(&mut grad.w_agg, config.clip);
                clip(&mut grad.w_up, config.clip);
                layer.apply_grads(&grad, config.learning_rate);
            }
        }
        losses
    }
}

fn clip(m: &mut Matrix, threshold: f64) {
    for x in m.as_mut_slice() {
        *x = x.clamp(-threshold, threshold);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::Activation;
    use crate::model::InitialFeatures;
    use x2v_graph::generators::karate_club;

    #[test]
    fn karate_club_from_two_seeds() {
        // The classic semi-supervised demo: label only the instructor (0)
        // and the administrator (33); predict everyone's faction.
        let g = karate_club();
        let model = GnnModel::new(
            4,
            8,
            2,
            Activation::Tanh,
            InitialFeatures::Random { seed: 0 },
            6,
        );
        let mut clf = GnnNodeClassifier::new(model, 2, 0);
        let labelled = [(0usize, 0usize), (33usize, 1usize)];
        let losses = clf.train(
            &g,
            &labelled,
            &TrainConfig {
                epochs: 300,
                learning_rate: 0.02,
                clip: 5.0,
            },
        );
        assert!(losses.last().unwrap() < &losses[0]);
        let preds = clf.predict(&g);
        let correct = (0..34).filter(|&v| preds[v] == g.label(v) as usize).count();
        assert!(
            correct >= 28,
            "karate semi-supervised accuracy {correct}/34"
        );
    }

    #[test]
    fn probabilities_are_distributions() {
        let g = x2v_graph::generators::cycle(6);
        let model = GnnModel::new(1, 4, 1, Activation::Tanh, InitialFeatures::Constant, 1);
        let clf = GnnNodeClassifier::new(model, 3, 2);
        for p in clf.predict_proba(&g) {
            assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
            assert!(p.iter().all(|&x| x >= 0.0));
        }
    }
}
