//! Higher-dimensional GNNs (Section 3.6, after Morris et al. [78]): the
//! "fully invariant way to increase the expressiveness of GNNs" — message
//! passing on *pairs* of vertices instead of vertices.
//!
//! A 2-GNN keeps a state per ordered pair `(u, v) ∈ V²`, initialised from
//! the pair's atomic type (equal / adjacent / non-adjacent), and updates by
//! aggregating over the exchange neighbourhoods `{(w, v)}` and `{(u, w)}`.
//! Crucially the aggregation includes a *joint* term
//! `Σ_w s(w,v) ⊙ s(u,w)` — summing the two slots separately would be the
//! oblivious variant, which collapses to 1-WL power; the multiplicative
//! pairing is what mirrors folklore 2-WL's joint colour pairs. With constant-per-type inputs it
//! is bounded by 2-WL exactly as 1-dimensional GNNs are bounded by 1-WL,
//! and it therefore separates pairs (C6 vs 2×C3) that no 1-dimensional
//! invariant GNN can.
//!
//! Forward-only (random or fixed weights): the expressiveness statements
//! the paper makes are about the function class, not about training.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use x2v_graph::Graph;
use x2v_linalg::Matrix;

/// A 2-dimensional GNN with `layers` rounds of pair message passing.
pub struct HigherOrderGnn {
    /// Per-layer weights applied to the first-slot aggregate (`d × d`).
    w_first: Vec<Matrix>,
    /// Per-layer weights applied to the second-slot aggregate (`d × d`).
    w_second: Vec<Matrix>,
    /// Per-layer weights applied to the pair's own state (`d × d`).
    w_self: Vec<Matrix>,
    /// Per-layer weights applied to the joint (elementwise-product)
    /// aggregate (`d × d`).
    w_joint: Vec<Matrix>,
    dim: usize,
}

impl HigherOrderGnn {
    /// Random model with `layers` layers and width `dim`.
    pub fn new(dim: usize, layers: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut init = || {
            let mut m = Matrix::zeros(dim, dim);
            let scale = (1.0 / dim as f64).sqrt();
            for i in 0..dim {
                for j in 0..dim {
                    m[(i, j)] = (rng.random::<f64>() * 2.0 - 1.0) * scale;
                }
            }
            m
        };
        HigherOrderGnn {
            w_first: (0..layers).map(|_| init()).collect(),
            w_second: (0..layers).map(|_| init()).collect(),
            w_self: (0..layers).map(|_| init()).collect(),
            w_joint: (0..layers).map(|_| init()).collect(),
            dim,
        }
    }

    /// Atomic-type initial state of a pair: a fixed vector per type
    /// (equal / edge / non-edge), broadcast into the model width.
    fn initial(&self, g: &Graph) -> Vec<Vec<f64>> {
        let n = g.order();
        let mut states = vec![vec![0.0; self.dim]; n * n];
        for u in 0..n {
            for v in 0..n {
                let s = &mut states[u * n + v];
                let atom = if u == v {
                    0
                } else if g.has_edge(u, v) {
                    1
                } else {
                    2
                };
                // Distinct constant patterns per atomic type.
                for (k, x) in s.iter_mut().enumerate() {
                    *x = match atom {
                        0 => 1.0,
                        1 => {
                            if k % 2 == 0 {
                                1.0
                            } else {
                                -1.0
                            }
                        }
                        _ => 0.25,
                    };
                }
            }
        }
        states
    }

    /// Runs the pair message passing and returns the sum-readout graph
    /// embedding (invariant by construction).
    pub fn graph_embedding(&self, g: &Graph) -> Vec<f64> {
        let n = g.order();
        let mut states = self.initial(g);
        let mut agg_first = vec![0.0f64; self.dim];
        let mut agg_second = vec![0.0f64; self.dim];
        let mut agg_joint = vec![0.0f64; self.dim];
        for layer in 0..self.w_first.len() {
            let mut next = vec![vec![0.0; self.dim]; n * n];
            for u in 0..n {
                for v in 0..n {
                    agg_first.iter_mut().for_each(|x| *x = 0.0);
                    agg_second.iter_mut().for_each(|x| *x = 0.0);
                    agg_joint.iter_mut().for_each(|x| *x = 0.0);
                    for w in 0..n {
                        let fst = &states[w * n + v];
                        let snd = &states[u * n + w];
                        for k in 0..self.dim {
                            agg_first[k] += fst[k];
                            agg_second[k] += snd[k];
                            agg_joint[k] += fst[k] * snd[k];
                        }
                    }
                    let own = &states[u * n + v];
                    let out = &mut next[u * n + v];
                    for i in 0..self.dim {
                        let mut acc = 0.0;
                        for k in 0..self.dim {
                            acc += self.w_self[layer][(i, k)] * own[k]
                                + self.w_first[layer][(i, k)] * agg_first[k]
                                + self.w_second[layer][(i, k)] * agg_second[k]
                                + self.w_joint[layer][(i, k)] * agg_joint[k];
                        }
                        out[i] = acc.tanh();
                    }
                }
            }
            states = next;
        }
        let mut readout = vec![0.0; self.dim];
        for s in &states {
            for (r, &x) in readout.iter_mut().zip(s) {
                *r += x;
            }
        }
        readout
    }

    /// Whether this model separates two graphs by more than `tol`.
    pub fn separates(&self, g: &Graph, h: &Graph, tol: f64) -> bool {
        x2v_linalg::vector::euclidean(&self.graph_embedding(g), &self.graph_embedding(h)) > tol
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use x2v_graph::generators::cycle;
    use x2v_graph::ops::{disjoint_union, permute};

    #[test]
    fn invariant_under_isomorphism() {
        let model = HigherOrderGnn::new(6, 2, 1);
        let g = cycle(6);
        let h = permute(&g, &[3, 5, 1, 0, 4, 2]);
        let eg = model.graph_embedding(&g);
        let eh = model.graph_embedding(&h);
        for (a, b) in eg.iter().zip(&eh) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn separates_the_1wl_blind_pair() {
        // C6 vs 2×C3: invisible to every invariant 1-dimensional GNN
        // (Section 3.6), separated by 2-dimensional models.
        let c6 = cycle(6);
        let tt = disjoint_union(&cycle(3), &cycle(3));
        let separated = (0..5)
            .filter(|&seed| HigherOrderGnn::new(6, 2, seed).separates(&c6, &tt, 1e-6))
            .count();
        assert!(
            separated >= 4,
            "2-GNNs should separate the pair ({separated}/5)"
        );
    }

    #[test]
    fn does_not_separate_identical_graphs() {
        let g = cycle(5);
        let model = HigherOrderGnn::new(4, 2, 9);
        assert!(!model.separates(&g, &g, 1e-9));
    }
}
