//! Stacked GNN models, readouts, heads, and SGD training loops.

use crate::layer::{Activation, GnnLayer, LayerCache, LayerGrads};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use x2v_graph::Graph;
use x2v_linalg::vector::softmax;
use x2v_linalg::Matrix;

/// How the initial node states `x_v^{(0)}` are chosen (Section 2.2 / 3.6).
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum InitialFeatures {
    /// The all-ones vector for every node — the isomorphism-invariant
    /// choice bounded by 1-WL.
    Constant,
    /// One-hot node labels (invariant; uses labels as initial colours).
    LabelOneHot,
    /// Random vectors per node — breaks the WL ceiling at the price of
    /// per-run invariance (Section 3.6).
    Random {
        /// Seed for the per-node random features.
        seed: u64,
    },
}

/// A stack of GNN layers with a configurable input featuriser.
pub struct GnnModel {
    /// The message-passing layers.
    pub layers: Vec<GnnLayer>,
    /// Input featurisation.
    pub init: InitialFeatures,
    /// Input feature dimension.
    pub in_dim: usize,
}

impl GnnModel {
    /// A model with `depth` layers of uniform width.
    pub fn new(
        in_dim: usize,
        hidden: usize,
        depth: usize,
        activation: Activation,
        init: InitialFeatures,
        seed: u64,
    ) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut layers = Vec::with_capacity(depth);
        let mut d = in_dim;
        for _ in 0..depth {
            layers.push(GnnLayer::random(d, hidden, hidden, activation, &mut rng));
            d = hidden;
        }
        GnnModel {
            layers,
            init,
            in_dim,
        }
    }

    /// Builds the initial feature matrix for a graph.
    pub fn initial_features(&self, g: &Graph) -> Matrix {
        let n = g.order();
        match self.init {
            InitialFeatures::Constant => Matrix::filled(n, self.in_dim, 1.0),
            InitialFeatures::LabelOneHot => {
                let mut m = Matrix::zeros(n, self.in_dim);
                for v in 0..n {
                    let l = (g.label(v) as usize).min(self.in_dim - 1);
                    m[(v, l)] = 1.0;
                }
                m
            }
            InitialFeatures::Random { seed } => {
                let mut rng = StdRng::seed_from_u64(seed);
                let mut m = Matrix::zeros(n, self.in_dim);
                for v in 0..n {
                    for j in 0..self.in_dim {
                        m[(v, j)] = rng.random::<f64>() * 2.0 - 1.0;
                    }
                }
                m
            }
        }
    }

    /// Forward pass: final node embeddings (n × hidden).
    pub fn node_embeddings(&self, g: &Graph) -> Matrix {
        let adj = Matrix::from_flat(g.order(), g.order(), g.adjacency_flat());
        let mut h = self.initial_features(g);
        for layer in &self.layers {
            let (out, _) = layer.forward(&adj, &h);
            h = out;
        }
        h
    }

    /// Forward pass with caches (for training).
    fn forward_cached(&self, adj: &Matrix, x0: Matrix) -> (Matrix, Vec<LayerCache>) {
        let mut h = x0;
        let mut caches = Vec::with_capacity(self.layers.len());
        for layer in &self.layers {
            let (out, cache) = layer.forward(adj, &h);
            caches.push(cache);
            h = out;
        }
        (h, caches)
    }

    /// Sum readout: the graph embedding `Σ_v x_v` (Section 2.5's simplest
    /// aggregation of GNN node embeddings into a graph embedding).
    pub fn graph_embedding(&self, g: &Graph) -> Vec<f64> {
        let h = self.node_embeddings(g);
        sum_rows(&h)
    }
}

fn sum_rows(m: &Matrix) -> Vec<f64> {
    let mut out = vec![0.0; m.cols()];
    for i in 0..m.rows() {
        for (o, &x) in out.iter_mut().zip(m.row(i)) {
            *o += x;
        }
    }
    out
}

/// A GNN graph classifier: GNN → sum readout → linear softmax head.
pub struct GnnClassifier {
    /// The message-passing backbone.
    pub model: GnnModel,
    /// Head weights (`classes × hidden`).
    pub w_out: Matrix,
    /// Head bias.
    pub b_out: Vec<f64>,
}

/// Training hyperparameters.
#[derive(Clone, Copy, Debug)]
pub struct TrainConfig {
    /// Learning rate.
    pub learning_rate: f64,
    /// Epochs.
    pub epochs: usize,
    /// Gradient clipping threshold (∞-norm per matrix).
    pub clip: f64,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            learning_rate: 0.01,
            epochs: 60,
            clip: 5.0,
        }
    }
}

impl GnnClassifier {
    /// Fresh classifier.
    pub fn new(model: GnnModel, classes: usize, seed: u64) -> Self {
        let hidden = model.layers.last().map_or(model.in_dim, GnnLayer::out_dim);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut w_out = Matrix::zeros(classes, hidden);
        let scale = (1.0 / hidden as f64).sqrt();
        for i in 0..classes {
            for j in 0..hidden {
                w_out[(i, j)] = (rng.random::<f64>() * 2.0 - 1.0) * scale;
            }
        }
        GnnClassifier {
            model,
            w_out,
            b_out: vec![0.0; classes],
        }
    }

    /// Class probabilities for one graph.
    pub fn predict_proba(&self, g: &Graph) -> Vec<f64> {
        let r = self.model.graph_embedding(g);
        let logits: Vec<f64> = (0..self.w_out.rows())
            .map(|c| {
                self.b_out[c]
                    + self
                        .w_out
                        .row(c)
                        .iter()
                        .zip(&r)
                        .map(|(w, x)| w * x)
                        .sum::<f64>()
            })
            .collect();
        softmax(&logits)
    }

    /// Predicted class.
    pub fn predict(&self, g: &Graph) -> usize {
        x2v_linalg::vector::argmax(&self.predict_proba(g)).expect("at least one class")
    }

    /// Trains with full-batch-per-graph SGD on cross-entropy; returns the
    /// loss trajectory (one value per epoch).
    pub fn train(&mut self, graphs: &[Graph], labels: &[usize], config: &TrainConfig) -> Vec<f64> {
        let _timer = x2v_obs::span("gnn/train");
        assert_eq!(graphs.len(), labels.len(), "label length mismatch");
        let adjs: Vec<Matrix> = graphs
            .iter()
            .map(|g| Matrix::from_flat(g.order(), g.order(), g.adjacency_flat()))
            .collect();
        let mut losses = Vec::with_capacity(config.epochs);
        for epoch in 0..config.epochs {
            x2v_obs::progress("gnn/epochs", (epoch + 1) as u64, config.epochs as u64);
            let mut epoch_loss = 0.0;
            for (i, g) in graphs.iter().enumerate() {
                epoch_loss += self.sgd_step(g, &adjs[i], labels[i], config);
            }
            losses.push(epoch_loss / graphs.len() as f64);
        }
        if let Some(last) = losses.last() {
            x2v_obs::observe("gnn/final_loss", *last);
        }
        losses
    }

    fn sgd_step(&mut self, g: &Graph, adj: &Matrix, label: usize, config: &TrainConfig) -> f64 {
        let x0 = self.model.initial_features(g);
        let (h, caches) = self.model.forward_cached(adj, x0);
        let r = sum_rows(&h);
        let logits: Vec<f64> = (0..self.w_out.rows())
            .map(|c| {
                self.b_out[c]
                    + self
                        .w_out
                        .row(c)
                        .iter()
                        .zip(&r)
                        .map(|(w, x)| w * x)
                        .sum::<f64>()
            })
            .collect();
        let probs = softmax(&logits);
        let loss = -(probs[label].max(1e-12)).ln();
        // Head gradients: dlogit_c = p_c − [c = label].
        let classes = probs.len();
        let hidden = r.len();
        let mut d_r = vec![0.0; hidden];
        for c in 0..classes {
            let d = probs[c] - f64::from(c == label);
            self.b_out[c] -= config.learning_rate * d;
            for j in 0..hidden {
                d_r[j] += d * self.w_out[(c, j)];
                self.w_out[(c, j)] -= config.learning_rate * d * r[j];
            }
        }
        // Sum readout broadcasts the gradient to every node.
        let n = h.rows();
        let mut d_h = Matrix::zeros(n, hidden);
        for v in 0..n {
            d_h.row_mut(v).copy_from_slice(&d_r);
        }
        // Backprop through the layers.
        let mut grads: Vec<LayerGrads> = Vec::with_capacity(self.model.layers.len());
        let mut d_cur = d_h;
        for (layer, cache) in self.model.layers.iter().zip(&caches).rev() {
            let (d_in, g) = layer.backward(adj, cache, &d_cur);
            grads.push(g);
            d_cur = d_in;
        }
        grads.reverse();
        for (layer, mut grad) in self.model.layers.iter_mut().zip(grads) {
            clip(&mut grad.w_agg, config.clip);
            clip(&mut grad.w_up, config.clip);
            layer.apply_grads(&grad, config.learning_rate);
        }
        loss
    }
}

fn clip(m: &mut Matrix, threshold: f64) {
    for x in m.as_mut_slice() {
        *x = x.clamp(-threshold, threshold);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use x2v_graph::generators::{cycle, random_tree, star};

    #[test]
    fn forward_shapes_and_invariance() {
        let model = GnnModel::new(1, 8, 2, Activation::Tanh, InitialFeatures::Constant, 5);
        let g = cycle(6);
        let h = model.node_embeddings(&g);
        assert_eq!((h.rows(), h.cols()), (6, 8));
        // Constant input on a vertex-transitive graph: all rows equal.
        for v in 1..6 {
            for j in 0..8 {
                assert!((h[(0, j)] - h[(v, j)]).abs() < 1e-9);
            }
        }
        // Graph embedding is permutation invariant.
        let p = x2v_graph::ops::permute(&g, &[3, 1, 5, 0, 4, 2]);
        let eg = model.graph_embedding(&g);
        let ep = model.graph_embedding(&p);
        for (a, b) in eg.iter().zip(&ep) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn classifier_learns_cycles_vs_trees() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut graphs = Vec::new();
        let mut labels = Vec::new();
        for n in 5..11 {
            graphs.push(cycle(n));
            labels.push(0);
            graphs.push(random_tree(n, &mut rng));
            labels.push(1);
        }
        let model = GnnModel::new(1, 8, 2, Activation::Tanh, InitialFeatures::Constant, 3);
        let mut clf = GnnClassifier::new(model, 2, 4);
        let losses = clf.train(
            &graphs,
            &labels,
            &TrainConfig {
                epochs: 120,
                learning_rate: 0.02,
                clip: 5.0,
            },
        );
        assert!(
            losses.last().unwrap() < &losses[0],
            "loss should decrease: {:?} -> {:?}",
            losses[0],
            losses.last().unwrap()
        );
        let correct = graphs
            .iter()
            .zip(&labels)
            .filter(|(g, &l)| clf.predict(g) == l)
            .count();
        assert!(
            correct as f64 / graphs.len() as f64 >= 0.8,
            "train accuracy {correct}/{}",
            graphs.len()
        );
    }

    #[test]
    fn label_one_hot_features() {
        let model = GnnModel::new(3, 4, 1, Activation::Relu, InitialFeatures::LabelOneHot, 1);
        let g = star(2).with_labels(vec![2, 0, 1]).unwrap();
        let x0 = model.initial_features(&g);
        assert_eq!(x0[(0, 2)], 1.0);
        assert_eq!(x0[(1, 0)], 1.0);
        assert_eq!(x0[(2, 1)], 1.0);
    }

    #[test]
    fn random_features_are_seeded() {
        let model = GnnModel::new(
            4,
            4,
            1,
            Activation::Relu,
            InitialFeatures::Random { seed: 8 },
            1,
        );
        let g = cycle(4);
        let a = model.initial_features(&g);
        let b = model.initial_features(&g);
        assert!(a.approx_eq(&b, 0.0));
    }
}
