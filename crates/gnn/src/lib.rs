//! # x2v-gnn — message-passing graph neural networks (Sections 2.2, 3.6)
//!
//! The GNN model of the paper's equations (2.1)–(2.2): per layer,
//!
//! ```text
//! a_v   = Σ_{w ∈ N(v)} W_AGG · x_w          (aggregate)
//! x_v'  = σ( W_UP · [x_v ; a_v] )           (update)
//! ```
//!
//! with parameters shared across nodes (what makes the model inductive and
//! size-agnostic). Implemented with explicit matrices and *manual*
//! backpropagation — no autograd dependency:
//!
//! * [`layer`] — one aggregate/update layer, forward and backward;
//! * [`model`] — stacked layers, sum readout, classification heads, SGD
//!   training for graph- and node-level tasks;
//! * [`autoencoder`] — graph autoencoders (Section 2.5): unsupervised
//!   embedding training by adjacency reconstruction;
//! * [`node_classifier`] — semi-supervised node classification (label a
//!   handful of nodes, predict the rest through message passing);
//! * [`higher`] — 2-dimensional GNNs on vertex pairs ([78]), the fully
//!   invariant route past the 1-WL ceiling;
//! * [`express`] — the Section 3.6 expressiveness results as executable
//!   checks: constant-input GNNs cannot separate what 1-WL cannot; random
//!   initial features break that ceiling at the price of losing
//!   per-run isomorphism invariance.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
#![allow(clippy::needless_range_loop)]

pub mod autoencoder;
pub mod express;
pub mod higher;
pub mod layer;
pub mod model;
pub mod node_classifier;
