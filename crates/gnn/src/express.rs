//! Executable versions of the Section 3.6 expressiveness results:
//! GNNs with WL-invariant inputs are bounded by 1-WL; random initial
//! features break the ceiling.

use crate::model::GnnModel;
use x2v_graph::Graph;
use x2v_linalg::vector::euclidean;
use x2v_wl::Refiner;

/// Checks the invariance direction of the GNN ≤ 1-WL bound on a single
/// graph: nodes with the same stable WL colour receive (numerically)
/// identical embeddings. Returns the maximum deviation observed over
/// same-colour node pairs.
pub fn max_same_colour_deviation(model: &GnnModel, g: &Graph) -> f64 {
    let h = model.node_embeddings(g);
    let mut refiner = Refiner::new();
    let colours = refiner.refine_to_stable(g);
    let stable = colours.stable();
    let mut worst = 0.0f64;
    for v in 0..g.order() {
        for w in (v + 1)..g.order() {
            if stable[v] == stable[w] {
                let d = euclidean(h.row(v), h.row(w));
                worst = worst.max(d);
            }
        }
    }
    worst
}

/// Whether the model's sum-readout graph embeddings separate `g` and `h`
/// by more than `tol`.
pub fn separates(model: &GnnModel, g: &Graph, h: &Graph, tol: f64) -> bool {
    euclidean(&model.graph_embedding(g), &model.graph_embedding(h)) > tol
}

/// Empirical expressiveness report over a pair: fraction of `trials`
/// random-weight models that separate the graphs.
pub fn separation_rate(
    g: &Graph,
    h: &Graph,
    make_model: impl Fn(u64) -> GnnModel,
    trials: usize,
    tol: f64,
) -> f64 {
    let separated = (0..trials)
        .filter(|&t| separates(&make_model(t as u64), g, h, tol))
        .count();
    separated as f64 / trials as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::Activation;
    use crate::model::InitialFeatures;
    use x2v_graph::generators::cycle;
    use x2v_graph::ops::disjoint_union;

    fn constant_model(seed: u64) -> GnnModel {
        GnnModel::new(1, 8, 3, Activation::Tanh, InitialFeatures::Constant, seed)
    }

    fn random_model(seed: u64) -> GnnModel {
        GnnModel::new(
            4,
            8,
            3,
            Activation::Tanh,
            InitialFeatures::Random { seed: 1000 + seed },
            seed,
        )
    }

    #[test]
    fn constant_init_respects_wl_classes() {
        // Upper bound (Section 3.6): same WL colour ⇒ same embedding.
        for seed in 0..5 {
            let model = constant_model(seed);
            for g in [
                cycle(6),
                x2v_graph::generators::path(6),
                x2v_graph::generators::star(5),
            ] {
                let dev = max_same_colour_deviation(&model, &g);
                assert!(dev < 1e-9, "seed {seed}: deviation {dev}");
            }
        }
    }

    #[test]
    fn constant_init_cannot_separate_wl_equivalent_graphs() {
        let c6 = cycle(6);
        let tt = disjoint_union(&cycle(3), &cycle(3));
        let rate = separation_rate(&c6, &tt, constant_model, 10, 1e-9);
        assert_eq!(
            rate, 0.0,
            "no invariant GNN may separate a 1-WL-equivalent pair"
        );
    }

    #[test]
    fn random_features_break_the_ceiling() {
        let c6 = cycle(6);
        let tt = disjoint_union(&cycle(3), &cycle(3));
        let rate = separation_rate(&c6, &tt, random_model, 10, 1e-6);
        assert!(
            rate > 0.8,
            "random features should separate the pair almost always (rate {rate})"
        );
    }

    #[test]
    fn constant_init_separates_wl_distinct_graphs_generically() {
        let c6 = cycle(6);
        let p6 = x2v_graph::generators::path(6);
        let rate = separation_rate(&c6, &p6, constant_model, 10, 1e-9);
        assert!(rate > 0.8, "rate {rate}");
    }
}
