//! One GNN layer: aggregate (eq. 2.1) + update (eq. 2.2), with manual
//! forward/backward passes.

use rand::rngs::StdRng;
use rand::Rng;
use x2v_linalg::Matrix;

/// Pointwise nonlinearity of the update step.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Activation {
    /// `max(0, x)` — the paper's example σ.
    Relu,
    /// Identity (linear layer).
    Identity,
    /// Hyperbolic tangent.
    Tanh,
}

impl Activation {
    fn apply(&self, x: f64) -> f64 {
        match self {
            Activation::Relu => x.max(0.0),
            Activation::Identity => x,
            Activation::Tanh => x.tanh(),
        }
    }

    fn derivative(&self, pre: f64) -> f64 {
        match self {
            Activation::Relu => {
                if pre > 0.0 {
                    1.0
                } else {
                    0.0
                }
            }
            Activation::Identity => 1.0,
            Activation::Tanh => 1.0 - pre.tanh() * pre.tanh(),
        }
    }
}

/// One aggregate/update layer with learnable `W_AGG ∈ ℝ^{c×d}` and
/// `W_UP ∈ ℝ^{d'×(d+c)}`. Parameters are shared across all nodes.
pub struct GnnLayer {
    /// Aggregation weights (`agg_dim × in_dim`).
    pub w_agg: Matrix,
    /// Update weights (`out_dim × (in_dim + agg_dim)`).
    pub w_up: Matrix,
    /// Nonlinearity.
    pub activation: Activation,
}

/// Cached forward state needed by the backward pass.
pub struct LayerCache {
    /// Layer input `H` (n × in_dim).
    pub input: Matrix,
    /// `A · H` (n × in_dim).
    pub ah: Matrix,
    /// Concatenated `[H | (A·H)·W_AGGᵀ]` (n × (in_dim + agg_dim)).
    pub concat: Matrix,
    /// Pre-activation `concat · W_UPᵀ` (n × out_dim).
    pub pre: Matrix,
}

/// Gradients of a layer's parameters.
pub struct LayerGrads {
    /// d loss / d `W_AGG`.
    pub w_agg: Matrix,
    /// d loss / d `W_UP`.
    pub w_up: Matrix,
}

impl GnnLayer {
    /// Xavier-style random initialisation.
    pub fn random(
        in_dim: usize,
        agg_dim: usize,
        out_dim: usize,
        activation: Activation,
        rng: &mut StdRng,
    ) -> Self {
        let mut init = |rows: usize, cols: usize| {
            let scale = (6.0 / (rows + cols) as f64).sqrt();
            let mut m = Matrix::zeros(rows, cols);
            for i in 0..rows {
                for j in 0..cols {
                    m[(i, j)] = (rng.random::<f64>() * 2.0 - 1.0) * scale;
                }
            }
            m
        };
        GnnLayer {
            w_agg: init(agg_dim, in_dim),
            w_up: init(out_dim, in_dim + agg_dim),
            activation,
        }
    }

    /// Input dimension.
    pub fn in_dim(&self) -> usize {
        self.w_agg.cols()
    }

    /// Output dimension.
    pub fn out_dim(&self) -> usize {
        self.w_up.rows()
    }

    /// Forward pass: `H' = σ([H | A·H·W_AGGᵀ] · W_UPᵀ)`.
    /// `adj` is the n×n adjacency matrix.
    pub fn forward(&self, adj: &Matrix, h: &Matrix) -> (Matrix, LayerCache) {
        let ah = adj.matmul(h);
        let agg = ah.matmul(&self.w_agg.transpose());
        let n = h.rows();
        let (d, c) = (h.cols(), agg.cols());
        let mut concat = Matrix::zeros(n, d + c);
        for v in 0..n {
            concat.row_mut(v)[..d].copy_from_slice(h.row(v));
            concat.row_mut(v)[d..].copy_from_slice(agg.row(v));
        }
        let pre = concat.matmul(&self.w_up.transpose());
        let mut out = pre.clone();
        for x in out.as_mut_slice() {
            *x = self.activation.apply(*x);
        }
        (
            out,
            LayerCache {
                input: h.clone(),
                ah,
                concat,
                pre,
            },
        )
    }

    /// Backward pass: given `d_out = ∂L/∂H'`, returns `∂L/∂H` and the
    /// parameter gradients.
    pub fn backward(
        &self,
        adj: &Matrix,
        cache: &LayerCache,
        d_out: &Matrix,
    ) -> (Matrix, LayerGrads) {
        let n = d_out.rows();
        let d = cache.input.cols();
        // Through the activation.
        let mut d_pre = d_out.clone();
        for (g, &p) in d_pre.as_mut_slice().iter_mut().zip(cache.pre.as_slice()) {
            *g *= self.activation.derivative(p);
        }
        // W_UP gradient and concat gradient.
        let d_wup = d_pre.transpose().matmul(&cache.concat);
        let d_concat = d_pre.matmul(&self.w_up);
        // Split.
        let c = self.w_agg.rows();
        let mut d_h = Matrix::zeros(n, d);
        let mut d_agg = Matrix::zeros(n, c);
        for v in 0..n {
            d_h.row_mut(v).copy_from_slice(&d_concat.row(v)[..d]);
            d_agg.row_mut(v).copy_from_slice(&d_concat.row(v)[d..]);
        }
        // Agg = (A·H) · W_AGGᵀ ⇒ dW_AGG = d_Aggᵀ · (A·H), and the input
        // receives Aᵀ · d_Agg · W_AGG (A symmetric here, but keep Aᵀ).
        let d_wagg = d_agg.transpose().matmul(&cache.ah);
        let via_agg = adj.transpose().matmul(&d_agg).matmul(&self.w_agg);
        let d_input = &d_h + &via_agg;
        (
            d_input,
            LayerGrads {
                w_agg: d_wagg,
                w_up: d_wup,
            },
        )
    }

    /// SGD parameter update.
    pub fn apply_grads(&mut self, grads: &LayerGrads, lr: f64) {
        let upd = |w: &mut Matrix, g: &Matrix| {
            for (wi, gi) in w.as_mut_slice().iter_mut().zip(g.as_slice()) {
                *wi -= lr * gi;
            }
        };
        upd(&mut self.w_agg, &grads.w_agg);
        upd(&mut self.w_up, &grads.w_up);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn finite_difference_check(activation: Activation) {
        // Numerically verify ∂L/∂W for L = ½‖H'‖² on a tiny graph.
        let mut rng = StdRng::seed_from_u64(1);
        let mut layer = GnnLayer::random(2, 2, 2, activation, &mut rng);
        let adj = Matrix::from_rows(&[&[0.0, 1.0, 0.0], &[1.0, 0.0, 1.0], &[0.0, 1.0, 0.0]]);
        let h = Matrix::from_rows(&[&[0.3, -0.2], &[0.5, 0.1], &[-0.4, 0.7]]);
        let loss = |layer: &GnnLayer| -> f64 {
            let (out, _) = layer.forward(&adj, &h);
            0.5 * out.as_slice().iter().map(|x| x * x).sum::<f64>()
        };
        let (out, cache) = layer.forward(&adj, &h);
        let (_, grads) = layer.backward(&adj, &cache, &out);
        let eps = 1e-6;
        // Check a few entries of each parameter matrix.
        for (r, c) in [(0, 0), (1, 1), (0, 1)] {
            let orig = layer.w_agg[(r, c)];
            layer.w_agg[(r, c)] = orig + eps;
            let up = loss(&layer);
            layer.w_agg[(r, c)] = orig - eps;
            let down = loss(&layer);
            layer.w_agg[(r, c)] = orig;
            let numeric = (up - down) / (2.0 * eps);
            assert!(
                (numeric - grads.w_agg[(r, c)]).abs() < 1e-5,
                "w_agg[{r},{c}]: numeric {numeric} vs analytic {}",
                grads.w_agg[(r, c)]
            );
        }
        for (r, c) in [(0, 0), (1, 2), (1, 3)] {
            let orig = layer.w_up[(r, c)];
            layer.w_up[(r, c)] = orig + eps;
            let up = loss(&layer);
            layer.w_up[(r, c)] = orig - eps;
            let down = loss(&layer);
            layer.w_up[(r, c)] = orig;
            let numeric = (up - down) / (2.0 * eps);
            assert!(
                (numeric - grads.w_up[(r, c)]).abs() < 1e-5,
                "w_up[{r},{c}]: numeric {numeric} vs analytic {}",
                grads.w_up[(r, c)]
            );
        }
    }

    #[test]
    fn gradients_match_finite_differences_identity() {
        finite_difference_check(Activation::Identity);
    }

    #[test]
    fn gradients_match_finite_differences_tanh() {
        finite_difference_check(Activation::Tanh);
    }

    #[test]
    fn input_gradient_matches_finite_differences() {
        let mut rng = StdRng::seed_from_u64(2);
        let layer = GnnLayer::random(2, 2, 2, Activation::Tanh, &mut rng);
        let adj = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]);
        let mut h = Matrix::from_rows(&[&[0.2, -0.1], &[0.4, 0.3]]);
        let loss = |h: &Matrix| {
            let (out, _) = layer.forward(&adj, h);
            0.5 * out.as_slice().iter().map(|x| x * x).sum::<f64>()
        };
        let (out, cache) = layer.forward(&adj, &h);
        let (d_in, _) = layer.backward(&adj, &cache, &out);
        let eps = 1e-6;
        for (r, c) in [(0, 0), (0, 1), (1, 0), (1, 1)] {
            let orig = h[(r, c)];
            h[(r, c)] = orig + eps;
            let up = loss(&h);
            h[(r, c)] = orig - eps;
            let down = loss(&h);
            h[(r, c)] = orig;
            let numeric = (up - down) / (2.0 * eps);
            assert!(
                (numeric - d_in[(r, c)]).abs() < 1e-5,
                "h[{r},{c}]: numeric {numeric} vs analytic {}",
                d_in[(r, c)]
            );
        }
    }

    #[test]
    fn forward_shapes() {
        let mut rng = StdRng::seed_from_u64(3);
        let layer = GnnLayer::random(3, 4, 5, Activation::Relu, &mut rng);
        assert_eq!(layer.in_dim(), 3);
        assert_eq!(layer.out_dim(), 5);
        let adj = Matrix::zeros(6, 6);
        let h = Matrix::zeros(6, 3);
        let (out, _) = layer.forward(&adj, &h);
        assert_eq!((out.rows(), out.cols()), (6, 5));
    }
}
