//! Matrix-factorisation node embeddings (Section 2.1) — the three panels of
//! the paper's Figure 2, plus Laplacian eigenmaps and classical MDS.
//!
//! The similarity-matrix framework: choose `S ∈ ℝ^{V×V}`, then find `X`
//! minimising `‖XXᵀ − S‖_F` — solved by the truncated eigen/SVD
//! factorisation of `S`.

use x2v_core::NodeEmbedding;
use x2v_graph::dist::{all_pairs_distances, INF};
use x2v_graph::Graph;
use x2v_linalg::eigen::sym_eigen;
use x2v_linalg::svd::truncated_factor;
use x2v_linalg::Matrix;

/// First-order proximity: `S` = adjacency matrix, factored by truncated SVD
/// (Figure 2a).
pub struct AdjacencySvd {
    /// Embedding dimension.
    pub dim: usize,
}

impl NodeEmbedding for AdjacencySvd {
    fn embed_nodes(&self, g: &Graph) -> Vec<Vec<f64>> {
        let a = Matrix::from_flat(g.order(), g.order(), g.adjacency_flat());
        matrix_rows(&truncated_factor(&a, self.dim))
    }

    fn dimension(&self) -> usize {
        self.dim
    }
}

/// Exponential-distance similarity `S_vw = exp(−c · dist(v, w))`, factored
/// by truncated SVD (Figure 2b; the paper's example uses `c = 2`).
pub struct ExpDistanceSvd {
    /// Embedding dimension.
    pub dim: usize,
    /// Decay rate `c > 0`.
    pub c: f64,
}

impl ExpDistanceSvd {
    /// The similarity matrix `exp(−c·dist)` (unreachable pairs get 0).
    pub fn similarity_matrix(&self, g: &Graph) -> Matrix {
        let n = g.order();
        let d = all_pairs_distances(g);
        let mut s = Matrix::zeros(n, n);
        for v in 0..n {
            for w in 0..n {
                let dist = d[v * n + w];
                s[(v, w)] = if dist == INF {
                    0.0
                } else {
                    (-self.c * dist as f64).exp()
                };
            }
        }
        s
    }
}

impl NodeEmbedding for ExpDistanceSvd {
    fn embed_nodes(&self, g: &Graph) -> Vec<Vec<f64>> {
        matrix_rows(&truncated_factor(&self.similarity_matrix(g), self.dim))
    }

    fn dimension(&self) -> usize {
        self.dim
    }
}

/// Laplacian eigenmaps (Belkin–Niyogi [11]): the eigenvectors of the
/// unnormalised Laplacian `L = D − A` for the smallest non-zero
/// eigenvalues.
pub struct LaplacianEigenmap {
    /// Embedding dimension.
    pub dim: usize,
}

impl NodeEmbedding for LaplacianEigenmap {
    fn embed_nodes(&self, g: &Graph) -> Vec<Vec<f64>> {
        let n = g.order();
        let mut l = Matrix::zeros(n, n);
        for v in 0..n {
            l[(v, v)] = g.degree(v) as f64;
        }
        for (u, v) in g.edges() {
            l[(u, v)] = -1.0;
            l[(v, u)] = -1.0;
        }
        let e = sym_eigen(&l);
        // Eigenvalues are sorted descending; take the `dim` smallest
        // *non-trivial* ones (skip the ≈0 constant eigenvector(s)).
        let mut cols: Vec<usize> = (0..n).rev().filter(|&j| e.values[j] > 1e-9).collect();
        cols.truncate(self.dim);
        let mut out = vec![vec![0.0; cols.len()]; n];
        for (k, &j) in cols.iter().enumerate() {
            for (v, row) in out.iter_mut().enumerate() {
                row[k] = e.vectors[(v, j)];
            }
        }
        out
    }

    fn dimension(&self) -> usize {
        self.dim
    }
}

/// Classical multidimensional scaling (Kruskal [63], Isomap-style when
/// applied to shortest-path distances): double-centre the squared distance
/// matrix and factor.
pub struct ClassicalMds {
    /// Embedding dimension.
    pub dim: usize,
}

impl NodeEmbedding for ClassicalMds {
    fn embed_nodes(&self, g: &Graph) -> Vec<Vec<f64>> {
        let n = g.order();
        let d = all_pairs_distances(g);
        // Replace INF with (diameter + 1) so disconnected graphs still embed.
        let finite_max = d.iter().filter(|&&x| x != INF).max().copied().unwrap_or(0);
        let sq = |x: usize| {
            let x = if x == INF { finite_max + 1 } else { x };
            (x * x) as f64
        };
        // B = −1/2 J D² J with J = I − 11ᵀ/n.
        let mut d2 = Matrix::zeros(n, n);
        for v in 0..n {
            for w in 0..n {
                d2[(v, w)] = sq(d[v * n + w]);
            }
        }
        let row_means: Vec<f64> = (0..n)
            .map(|i| d2.row(i).iter().sum::<f64>() / n as f64)
            .collect();
        let total: f64 = row_means.iter().sum::<f64>() / n as f64;
        let mut b = Matrix::zeros(n, n);
        for v in 0..n {
            for w in 0..n {
                b[(v, w)] = -0.5 * (d2[(v, w)] - row_means[v] - row_means[w] + total);
            }
        }
        let e = sym_eigen(&b);
        let mut out = vec![vec![0.0; self.dim.min(n)]; n];
        for j in 0..self.dim.min(n) {
            let lam = e.values[j].max(0.0).sqrt();
            for (v, row) in out.iter_mut().enumerate() {
                row[j] = e.vectors[(v, j)] * lam;
            }
        }
        out
    }

    fn dimension(&self) -> usize {
        self.dim
    }
}

fn matrix_rows(m: &Matrix) -> Vec<Vec<f64>> {
    (0..m.rows()).map(|i| m.row(i).to_vec()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use x2v_linalg::vector::euclidean;

    #[test]
    fn adjacency_svd_reconstructs_low_rank() {
        // Complete bipartite K(2,3): adjacency has rank 2.
        let g = x2v_graph::generators::complete_bipartite(2, 3);
        let emb = AdjacencySvd { dim: 2 }.embed_nodes(&g);
        // Same-side nodes coincide (identical rows of A).
        assert!(euclidean(&emb[0], &emb[1]) < 1e-8);
        assert!(euclidean(&emb[2], &emb[3]) < 1e-8);
        assert!(euclidean(&emb[0], &emb[2]) > 0.1);
    }

    #[test]
    fn exp_distance_similarity_values() {
        let g = x2v_graph::generators::path(3);
        let s = ExpDistanceSvd { dim: 2, c: 2.0 }.similarity_matrix(&g);
        assert!((s[(0, 0)] - 1.0).abs() < 1e-12);
        assert!((s[(0, 1)] - (-2.0f64).exp()).abs() < 1e-12);
        assert!((s[(0, 2)] - (-4.0f64).exp()).abs() < 1e-12);
    }

    #[test]
    fn mds_recovers_path_geometry() {
        // P5 embeds (classically) along a line: the first coordinate must
        // be monotone along the path.
        let g = x2v_graph::generators::path(5);
        let emb = ClassicalMds { dim: 1 }.embed_nodes(&g);
        let xs: Vec<f64> = emb.iter().map(|v| v[0]).collect();
        let increasing = xs.windows(2).all(|w| w[0] < w[1]);
        let decreasing = xs.windows(2).all(|w| w[0] > w[1]);
        assert!(increasing || decreasing, "{xs:?}");
    }

    #[test]
    fn laplacian_eigenmap_separates_two_cliques() {
        // Two cliques joined by one edge: the Fiedler vector splits them.
        let mut edges = Vec::new();
        for u in 0..4 {
            for v in (u + 1)..4 {
                edges.push((u, v));
                edges.push((u + 4, v + 4));
            }
        }
        edges.push((0, 4));
        let g = x2v_graph::Graph::from_edges_unchecked(8, &edges);
        let emb = LaplacianEigenmap { dim: 1 }.embed_nodes(&g);
        let side = |v: usize| emb[v][0].signum();
        assert_eq!(side(1), side(2));
        assert_eq!(side(5), side(6));
        assert_ne!(side(1), side(5));
    }

    #[test]
    fn embeddings_have_requested_dimension() {
        let g = x2v_graph::generators::cycle(6);
        assert_eq!(AdjacencySvd { dim: 3 }.embed_nodes(&g)[0].len(), 3);
        assert_eq!(
            ExpDistanceSvd { dim: 2, c: 2.0 }.embed_nodes(&g)[0].len(),
            2
        );
        assert_eq!(ClassicalMds { dim: 2 }.embed_nodes(&g)[0].len(), 2);
    }
}
