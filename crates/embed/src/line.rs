//! LINE (Tang et al. [97], Section 2.1): large-scale information network
//! embedding by first- and second-order proximity, trained with negative
//! sampling directly on edges (no random walks).
//!
//! First-order: maximise `σ(z_u · z_v)` on edges against sampled non-edges.
//! Second-order: each node also has a context vector; `σ(z_u · c_v)` on
//! edges — nodes sharing neighbourhoods get similar `z` even when not
//! adjacent.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use x2v_core::NodeEmbedding;
use x2v_graph::Graph;
use x2v_linalg::sampling::AliasTable;
use x2v_linalg::vector::sigmoid;

/// Which proximity order to train.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Proximity {
    /// Adjacent nodes embed closely.
    FirstOrder,
    /// Nodes with shared neighbourhoods embed closely.
    SecondOrder,
}

/// LINE hyperparameters.
#[derive(Clone, Debug)]
pub struct LineConfig {
    /// Embedding dimension.
    pub dim: usize,
    /// Proximity order.
    pub proximity: Proximity,
    /// Negative samples per edge.
    pub negative: usize,
    /// Edge samples drawn in total.
    pub samples: usize,
    /// Initial learning rate.
    pub learning_rate: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for LineConfig {
    fn default() -> Self {
        LineConfig {
            dim: 16,
            proximity: Proximity::SecondOrder,
            negative: 5,
            samples: 40_000,
            learning_rate: 0.025,
            seed: 0x11e,
        }
    }
}

/// LINE as a [`NodeEmbedding`] (transductive; trains per call).
pub struct Line {
    config: LineConfig,
}

impl Line {
    /// With explicit hyperparameters.
    pub fn new(config: LineConfig) -> Self {
        Line { config }
    }

    /// Trains and returns raw vectors.
    pub fn train(&self, g: &Graph) -> Vec<Vec<f64>> {
        let n = g.order();
        let dim = self.config.dim;
        let edges = g.edge_vec();
        assert!(!edges.is_empty(), "LINE needs at least one edge");
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        let mut z: Vec<Vec<f64>> = (0..n)
            .map(|_| {
                (0..dim)
                    .map(|_| (rng.random::<f64>() - 0.5) / dim as f64)
                    .collect()
            })
            .collect();
        // Context table (second order) or alias of z (first order).
        let mut ctx: Vec<Vec<f64>> = (0..n).map(|_| vec![0.0; dim]).collect();
        // Negative sampling ∝ degree^{3/4}.
        let weights: Vec<f64> = (0..n)
            .map(|v| (g.degree(v) as f64).powf(0.75).max(1e-9))
            .collect();
        let negatives = AliasTable::new(&weights);
        let second = self.config.proximity == Proximity::SecondOrder;
        for step in 0..self.config.samples {
            let lr = self.config.learning_rate
                * (1.0 - step as f64 / self.config.samples as f64).max(1e-3);
            let &(a, b) = &edges[rng.random_range(0..edges.len())];
            // Undirected: train both directions alternately.
            let (u, v) = if step % 2 == 0 { (a, b) } else { (b, a) };
            // Snapshot of the source vector: lets us update target rows of
            // the same table without aliasing (u ≠ v: graphs are loop-free).
            let zu: Vec<f64> = z[u].clone();
            let mut grad_u = vec![0.0; dim];
            let mut update = |target_idx: usize, positive: bool, grad_u: &mut [f64]| {
                let table = if second { &mut ctx } else { &mut z };
                let target = &mut table[target_idx];
                let dot: f64 = zu.iter().zip(target.iter()).map(|(x, y)| x * y).sum();
                let gcoef = if positive {
                    (1.0 - sigmoid(dot)) * lr
                } else {
                    -sigmoid(dot) * lr
                };
                for k in 0..dim {
                    grad_u[k] += gcoef * target[k];
                    target[k] += gcoef * zu[k];
                }
            };
            update(v, true, &mut grad_u);
            for _ in 0..self.config.negative {
                let neg = negatives.sample(&mut rng);
                if neg == v || neg == u {
                    continue;
                }
                update(neg, false, &mut grad_u);
            }
            for k in 0..dim {
                z[u][k] += grad_u[k];
            }
        }
        z
    }
}

impl NodeEmbedding for Line {
    fn embed_nodes(&self, g: &Graph) -> Vec<Vec<f64>> {
        self.train(g)
    }

    fn dimension(&self) -> usize {
        self.config.dim
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use x2v_graph::generators::sbm;
    use x2v_linalg::vector::cosine;

    fn community_contrast(g: &Graph, z: &[Vec<f64>]) -> (f64, f64) {
        let (mut intra, mut inter) = ((0.0, 0usize), (0.0, 0usize));
        for a in 0..g.order() {
            for b in (a + 1)..g.order() {
                let s = cosine(&z[a], &z[b]);
                if g.label(a) == g.label(b) {
                    intra = (intra.0 + s, intra.1 + 1);
                } else {
                    inter = (inter.0 + s, inter.1 + 1);
                }
            }
        }
        (intra.0 / intra.1 as f64, inter.0 / inter.1 as f64)
    }

    #[test]
    fn first_order_separates_communities() {
        let mut rng = StdRng::seed_from_u64(8);
        let g = sbm(&[10, 10], 0.7, 0.05, &mut rng);
        let line = Line::new(LineConfig {
            proximity: Proximity::FirstOrder,
            ..Default::default()
        });
        let z = line.embed_nodes(&g);
        let (intra, inter) = community_contrast(&g, &z);
        assert!(intra > inter + 0.1, "intra {intra:.3} vs inter {inter:.3}");
    }

    #[test]
    fn second_order_separates_communities() {
        let mut rng = StdRng::seed_from_u64(9);
        let g = sbm(&[10, 10], 0.7, 0.05, &mut rng);
        let line = Line::new(LineConfig::default());
        let z = line.embed_nodes(&g);
        let (intra, inter) = community_contrast(&g, &z);
        assert!(intra > inter, "intra {intra:.3} vs inter {inter:.3}");
    }

    #[test]
    fn deterministic_and_shaped() {
        let mut rng = StdRng::seed_from_u64(10);
        let g = sbm(&[6, 6], 0.8, 0.1, &mut rng);
        let line = Line::new(LineConfig {
            samples: 5_000,
            ..Default::default()
        });
        let a = line.embed_nodes(&g);
        let b = line.embed_nodes(&g);
        assert_eq!(a, b);
        assert_eq!(a.len(), 12);
        assert_eq!(a[0].len(), line.dimension());
    }
}
