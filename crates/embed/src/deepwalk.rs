//! DeepWalk (Perozzi et al. [87]): uniform random walks + SGNS — node2vec
//! with `p = q = 1`.

use crate::node2vec::{Node2Vec, Node2VecConfig};
use x2v_core::NodeEmbedding;
use x2v_graph::Graph;

/// DeepWalk as a [`NodeEmbedding`].
pub struct DeepWalk {
    inner: Node2Vec,
}

impl DeepWalk {
    /// With default hyperparameters (`p = q = 1`).
    pub fn new() -> Self {
        Self::with_config(Node2VecConfig::default())
    }

    /// With custom walk/SGNS settings; `p`, `q` are forced to 1.
    pub fn with_config(mut config: Node2VecConfig) -> Self {
        config.walks.p = 1.0;
        config.walks.q = 1.0;
        DeepWalk {
            inner: Node2Vec::new(config),
        }
    }
}

impl DeepWalk {
    /// Trains and returns the full model, checkpointing under the
    /// `"deepwalk"` job when an ambient [`x2v_ckpt::Store`] is installed
    /// (see [`crate::word2vec::Word2Vec::train_job`]).
    pub fn train(&self, g: &Graph) -> crate::word2vec::Word2Vec {
        self.inner.train_job(g, "deepwalk")
    }
}

impl Default for DeepWalk {
    fn default() -> Self {
        Self::new()
    }
}

impl NodeEmbedding for DeepWalk {
    fn embed_nodes(&self, g: &Graph) -> Vec<Vec<f64>> {
        self.inner.embed_nodes(g)
    }

    fn dimension(&self) -> usize {
        self.inner.dimension()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use x2v_graph::generators::karate_club;
    use x2v_linalg::vector::cosine;

    #[test]
    fn karate_factions_are_detectable() {
        // The classic sanity check: DeepWalk embeddings of the karate club
        // should place same-faction nodes closer on average.
        let g = karate_club();
        let mut cfg = Node2VecConfig::default();
        cfg.sgns.dim = 16;
        cfg.sgns.epochs = 3;
        cfg.walks.walks_per_node = 8;
        cfg.walks.walk_length = 20;
        cfg.walks.seed = 21;
        let vecs = DeepWalk::with_config(cfg).embed_nodes(&g);
        let mut intra = 0.0;
        let mut inter = 0.0;
        let (mut ni, mut nx) = (0, 0);
        for a in 0..g.order() {
            for b in (a + 1)..g.order() {
                let s = cosine(&vecs[a], &vecs[b]);
                if g.label(a) == g.label(b) {
                    intra += s;
                    ni += 1;
                } else {
                    inter += s;
                    nx += 1;
                }
            }
        }
        assert!(
            intra / ni as f64 > inter / nx as f64,
            "faction structure must show in the embedding"
        );
    }
}
