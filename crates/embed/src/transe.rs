//! TransE (Bordes et al. [18]): knowledge-graph embeddings where each
//! relation acts as a *translation* of the latent space —
//! `x_head + t_r ≈ x_tail` (the paper's Paris − France ≈ Santiago − Chile
//! example).
//!
//! Trained with the margin ranking loss
//! `Σ max(0, γ + d(h + r, t) − d(h' + r, t'))` over corrupted triples,
//! entities renormalised to the unit sphere each step.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use x2v_graph::relational::KnowledgeGraph;
use x2v_linalg::vector::normalize;

/// TransE hyperparameters.
#[derive(Clone, Debug)]
pub struct TransEConfig {
    /// Embedding dimension.
    pub dim: usize,
    /// Margin γ.
    pub margin: f64,
    /// Learning rate.
    pub learning_rate: f64,
    /// Epochs over the triple set.
    pub epochs: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for TransEConfig {
    fn default() -> Self {
        TransEConfig {
            dim: 24,
            margin: 1.0,
            learning_rate: 0.01,
            epochs: 200,
            seed: 0x7a5e,
        }
    }
}

/// A trained TransE model.
pub struct TransE {
    /// Entity vectors, `n_entities × dim`.
    pub entities: Vec<Vec<f64>>,
    /// Relation translation vectors, `n_relations × dim`.
    pub relations: Vec<Vec<f64>>,
}

impl TransE {
    /// Trains on a knowledge graph.
    pub fn train(kg: &KnowledgeGraph, config: &TransEConfig) -> Self {
        let _timer = x2v_obs::span("embed/transe_train");
        let mut rng = StdRng::seed_from_u64(config.seed);
        let dim = config.dim;
        let unit = |rng: &mut StdRng| {
            let mut v: Vec<f64> = (0..dim).map(|_| rng.random::<f64>() * 2.0 - 1.0).collect();
            normalize(&mut v);
            v
        };
        let mut entities: Vec<Vec<f64>> = (0..kg.n_entities()).map(|_| unit(&mut rng)).collect();
        let mut relations: Vec<Vec<f64>> = (0..kg.n_relations()).map(|_| unit(&mut rng)).collect();
        let triples = kg.triples().to_vec();
        assert!(
            !triples.is_empty(),
            "cannot train on an empty knowledge graph"
        );
        for epoch in 0..config.epochs {
            x2v_obs::progress(
                "embed/transe_epochs",
                (epoch + 1) as u64,
                config.epochs as u64,
            );
            for &(h, r, t) in &triples {
                // Corrupt head or tail.
                let corrupt_head = rng.random::<f64>() < 0.5;
                let (ch, ct) = loop {
                    let e = rng.random_range(0..kg.n_entities());
                    let cand = if corrupt_head { (e, t) } else { (h, e) };
                    if !kg.contains(cand.0, r, cand.1) {
                        break cand;
                    }
                };
                let pos = Self::score_vecs(&entities[h], &relations[r], &entities[t]);
                let neg = Self::score_vecs(&entities[ch], &relations[r], &entities[ct]);
                if pos + config.margin <= neg {
                    continue; // margin satisfied
                }
                // Gradient of d(h+r,t)² terms (we use squared L2 distance).
                let lr = config.learning_rate;
                for d in 0..dim {
                    let gp = 2.0 * (entities[h][d] + relations[r][d] - entities[t][d]);
                    let gn = 2.0 * (entities[ch][d] + relations[r][d] - entities[ct][d]);
                    entities[h][d] -= lr * gp;
                    entities[t][d] += lr * gp;
                    relations[r][d] -= lr * (gp - gn);
                    entities[ch][d] += lr * gn;
                    entities[ct][d] -= lr * gn;
                }
                normalize(&mut entities[h]);
                normalize(&mut entities[t]);
                normalize(&mut entities[ch]);
                normalize(&mut entities[ct]);
            }
        }
        TransE {
            entities,
            relations,
        }
    }

    fn score_vecs(h: &[f64], r: &[f64], t: &[f64]) -> f64 {
        h.iter()
            .zip(r)
            .zip(t)
            .map(|((&a, &b), &c)| {
                let d = a + b - c;
                d * d
            })
            .sum()
    }

    /// Plausibility score of a triple: squared distance `‖h + r − t‖²`
    /// (lower = more plausible).
    pub fn score(&self, h: usize, r: usize, t: usize) -> f64 {
        Self::score_vecs(&self.entities[h], &self.relations[r], &self.entities[t])
    }

    /// Rank of the true tail among all entities for query `(h, r, ?)`
    /// (1-based; *filtered* ranking would remove other true tails — this is
    /// the raw rank).
    pub fn tail_rank(&self, h: usize, r: usize, true_t: usize) -> usize {
        let true_score = self.score(h, r, true_t);
        1 + (0..self.entities.len())
            .filter(|&t| t != true_t && self.score(h, r, t) < true_score)
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A toy "countries" world: capital_of(c_i) = n_i, located_in pairs.
    fn toy_world() -> KnowledgeGraph {
        // Entities 0..6 = capitals, 6..12 = countries.
        let mut triples = Vec::new();
        for i in 0..6 {
            triples.push((i, 0, 6 + i)); // capital_of
        }
        // relation 1: neighbour_of between consecutive countries.
        for i in 0..5 {
            triples.push((6 + i, 1, 7 + i));
            triples.push((7 + i, 1, 6 + i));
        }
        KnowledgeGraph::new(12, 2, &triples).unwrap()
    }

    #[test]
    fn true_triples_outrank_corrupted() {
        let kg = toy_world();
        let model = TransE::train(&kg, &TransEConfig::default());
        // Mean rank of true tails should beat the random baseline (6.0).
        let ranks: Vec<usize> = (0..6).map(|i| model.tail_rank(i, 0, 6 + i)).collect();
        let mean: f64 = ranks.iter().map(|&r| r as f64).sum::<f64>() / 6.0;
        assert!(mean < 3.5, "mean rank {mean} (ranks {ranks:?})");
    }

    #[test]
    fn translation_geometry_emerges() {
        // The capital_of offsets x_capital + r − x_country should be small
        // compared to random entity differences.
        let kg = toy_world();
        let model = TransE::train(&kg, &TransEConfig::default());
        let mean_true: f64 = (0..6).map(|i| model.score(i, 0, 6 + i)).sum::<f64>() / 6.0;
        let mean_wrong: f64 = (0..6)
            .map(|i| model.score(i, 0, 6 + ((i + 3) % 6)))
            .sum::<f64>()
            / 6.0;
        assert!(
            mean_true < mean_wrong,
            "true-offset norm {mean_true} vs wrong {mean_wrong}"
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let kg = toy_world();
        let cfg = TransEConfig {
            epochs: 20,
            ..Default::default()
        };
        let a = TransE::train(&kg, &cfg);
        let b = TransE::train(&kg, &cfg);
        assert_eq!(a.entities[0], b.entities[0]);
    }
}
