//! node2vec (Grover–Leskovec [48]): biased random walks + SGNS.

use crate::walks::{generate_walks, WalkConfig};
use crate::word2vec::{SgnsConfig, Word2Vec};
use x2v_core::NodeEmbedding;
use x2v_graph::Graph;

/// node2vec hyperparameters.
#[derive(Clone, Debug, Default)]
pub struct Node2VecConfig {
    /// Walk generation.
    pub walks: WalkConfig,
    /// SGNS training.
    pub sgns: SgnsConfig,
}

/// node2vec as a [`NodeEmbedding`]: transductive — each call trains on the
/// given graph's own walk corpus (the paper's taxonomy for shallow,
/// lookup-table embeddings).
pub struct Node2Vec {
    config: Node2VecConfig,
}

impl Node2Vec {
    /// With explicit hyperparameters.
    pub fn new(config: Node2VecConfig) -> Self {
        Node2Vec { config }
    }

    /// With the return/in-out biases set and defaults elsewhere.
    pub fn with_bias(p: f64, q: f64) -> Self {
        let mut config = Node2VecConfig::default();
        config.walks.p = p;
        config.walks.q = q;
        Node2Vec { config }
    }

    /// Trains and returns the full model (for access beyond the trait).
    pub fn train(&self, g: &Graph) -> Word2Vec {
        self.train_job(g, "node2vec")
    }

    /// [`train`](Self::train) under an explicit checkpoint job name: the
    /// underlying SGNS epochs checkpoint into the ambient
    /// [`x2v_ckpt::Store`] (when installed) and resume from it, see
    /// [`Word2Vec::train_job`]. Walk generation is deterministic and cheap
    /// relative to training, so it is simply re-run on resume.
    pub fn train_job(&self, g: &Graph, job: &str) -> Word2Vec {
        let corpus = generate_walks(g, &self.config.walks);
        Word2Vec::train_job(&corpus, g.order().max(1), &self.config.sgns, job)
    }
}

impl NodeEmbedding for Node2Vec {
    fn embed_nodes(&self, g: &Graph) -> Vec<Vec<f64>> {
        self.train(g).vectors()
    }

    fn dimension(&self) -> usize {
        self.config.sgns.dim
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use x2v_graph::generators::sbm;
    use x2v_linalg::vector::cosine;

    #[test]
    fn communities_embed_closer_than_across() {
        let mut rng = StdRng::seed_from_u64(5);
        let g = sbm(&[10, 10], 0.8, 0.05, &mut rng);
        let mut cfg = Node2VecConfig::default();
        cfg.sgns.dim = 16;
        cfg.sgns.epochs = 3;
        cfg.walks.walks_per_node = 8;
        cfg.walks.walk_length = 20;
        let vecs = Node2Vec::new(cfg).embed_nodes(&g);
        let mut intra = 0.0;
        let mut inter = 0.0;
        let mut ni = 0;
        let mut nx = 0;
        for a in 0..20 {
            for b in (a + 1)..20 {
                let s = cosine(&vecs[a], &vecs[b]);
                if (a < 10) == (b < 10) {
                    intra += s;
                    ni += 1;
                } else {
                    inter += s;
                    nx += 1;
                }
            }
        }
        let intra = intra / ni as f64;
        let inter = inter / nx as f64;
        assert!(
            intra > inter + 0.1,
            "intra-community similarity {intra:.3} vs inter {inter:.3}"
        );
    }

    #[test]
    fn dimension_and_shape() {
        let g = x2v_graph::generators::cycle(8);
        let n2v = Node2Vec::with_bias(0.5, 2.0);
        let vecs = n2v.embed_nodes(&g);
        assert_eq!(vecs.len(), 8);
        assert_eq!(vecs[0].len(), n2v.dimension());
    }
}
