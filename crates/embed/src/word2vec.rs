//! Skip-gram with negative sampling — word2vec (Mikolov et al., [74]).
//!
//! Sentences are sequences of token ids in `0..vocab`. For each
//! (centre, context) pair within the window the model maximises
//! `log σ(w·c) + Σ_neg log σ(−w·c_neg)` by SGD; negatives are drawn from
//! the unigram distribution raised to `3/4` via an alias table.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use x2v_ckpt::codec::{Dec, Enc};
use x2v_ckpt::crc32::Crc32;
use x2v_linalg::chunked::axpy_f64;
use x2v_linalg::sampling::AliasTable;
use x2v_linalg::vector::sigmoid;

/// SGNS hyperparameters.
#[derive(Clone, Debug)]
pub struct SgnsConfig {
    /// Embedding dimension.
    pub dim: usize,
    /// Window radius (context = up to `window` tokens each side).
    pub window: usize,
    /// Negative samples per positive pair.
    pub negative: usize,
    /// Training epochs over the corpus.
    pub epochs: usize,
    /// Initial learning rate (linearly decayed to 1e-4 of itself).
    pub learning_rate: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for SgnsConfig {
    fn default() -> Self {
        SgnsConfig {
            dim: 32,
            window: 4,
            negative: 5,
            epochs: 5,
            learning_rate: 0.025,
            seed: 0x2fec,
        }
    }
}

/// Trained SGNS model: input ("word") and output ("context") vectors.
pub struct Word2Vec {
    /// Input vectors, `vocab × dim` row-major.
    input: Vec<f64>,
    /// Output vectors, `vocab × dim` row-major.
    output: Vec<f64>,
    dim: usize,
    vocab: usize,
}

/// The guarded-site name for SGNS training.
pub const SITE: &str = "embed/word2vec";

/// The checkpoint frame kind for SGNS epoch state.
pub const CKPT_KIND: &str = "sgns-epoch";

/// Sentences per shard before the chunk plan's 64-chunk ceiling kicks in.
/// Part of the determinism contract: changing it re-keys every shard's RNG
/// stream and snapshot boundary, shifting all trained models.
const SENTENCE_GRAIN: usize = 32;

/// Epoch-granular SGNS training state, exactly what must survive a crash
/// for the resumed run to be bit-identical to an uninterrupted one: both
/// embedding matrices, the SGD step counter (which drives learning-rate
/// decay) and the full RNG stream state.
struct EpochCkpt {
    fingerprint: u32,
    epochs_done: u64,
    step: u64,
    rng: [u64; 4],
    input: Vec<f64>,
    output: Vec<f64>,
}

impl EpochCkpt {
    fn encode(&self) -> Vec<u8> {
        let mut e = Enc::new();
        e.u32(self.fingerprint).u64(self.epochs_done).u64(self.step);
        for s in self.rng {
            e.u64(s);
        }
        e.f64_slice(&self.input).f64_slice(&self.output);
        e.finish()
    }

    fn decode(payload: &[u8], matrix_len: usize) -> Option<Self> {
        let mut d = Dec::new(payload);
        let ck = EpochCkpt {
            fingerprint: d.u32("fingerprint").ok()?,
            epochs_done: d.u64("epochs_done").ok()?,
            step: d.u64("step").ok()?,
            rng: [
                d.u64("rng0").ok()?,
                d.u64("rng1").ok()?,
                d.u64("rng2").ok()?,
                d.u64("rng3").ok()?,
            ],
            input: d.f64_vec(matrix_len, "input").ok()?,
            output: d.f64_vec(matrix_len, "output").ok()?,
        };
        d.finish("trailing").ok()?;
        Some(ck)
    }
}

/// Fingerprints the training configuration and corpus shape; a checkpoint
/// whose fingerprint differs is stale (different hyperparameters or data)
/// and triggers a cold start instead of a silently-wrong resume.
fn config_fingerprint(
    config: &SgnsConfig,
    vocab: usize,
    sentences: usize,
    total_tokens: usize,
) -> u32 {
    let mut c = Crc32::new();
    c.update(CKPT_KIND.as_bytes());
    c.update_u64(config.dim as u64);
    c.update_u64(config.window as u64);
    c.update_u64(config.negative as u64);
    c.update_u64(config.epochs as u64);
    c.update_u64(config.learning_rate.to_bits());
    c.update_u64(config.seed);
    c.update_u64(vocab as u64);
    c.update_u64(sentences as u64);
    c.update_u64(total_tokens as u64);
    c.finish()
}

/// Sequential in-order dot product for the SGNS inner loop. The summation
/// order here is part of the fixed-seed model-bit contract (resume goldens,
/// downstream embedding-quality seeds), so this must not be swapped for the
/// lane-chunked `x2v_linalg::chunked::dot_f64` reduction.
#[inline]
fn dot_seq(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

impl Word2Vec {
    /// Trains on a corpus of token-id sentences over `vocab` tokens.
    ///
    /// SGD is an anytime algorithm, so the ambient [`x2v_guard::Budget`]
    /// degrades gracefully here instead of failing: the epoch loop checks
    /// the budget cooperatively between epochs and, on a trip, returns the
    /// vectors trained so far (recording `guard/degraded` and stopping
    /// early) rather than panicking.
    ///
    /// # Panics
    /// If any token id is `≥ vocab` or the corpus is empty.
    pub fn train(corpus: &[Vec<usize>], vocab: usize, config: &SgnsConfig) -> Self {
        Self::train_job(corpus, vocab, config, "word2vec")
    }

    /// [`train`](Self::train) under an explicit checkpoint job name.
    ///
    /// When an ambient [`x2v_ckpt::Store`] is installed, the full training
    /// state (both matrices, the SGD step counter and the RNG stream state)
    /// is checkpointed under `job` after every epoch, so a crashed or
    /// budget-tripped run resumes — with [`x2v_ckpt::set_resume`] in effect
    /// — to the *bit-identical* final model an uninterrupted run produces.
    /// A checkpoint whose configuration fingerprint, matrix shape or epoch
    /// count does not match is ignored (`ckpt/fallback_cold_start`); a save
    /// failure is a logged, counted degradation (`ckpt/save_failed`), never
    /// a training failure.
    pub fn train_job(corpus: &[Vec<usize>], vocab: usize, config: &SgnsConfig, job: &str) -> Self {
        let _timer = x2v_obs::span("embed/word2vec_train");
        assert!(!corpus.is_empty(), "empty corpus");
        let mut counts = vec![0f64; vocab];
        let mut total_tokens = 0usize;
        for sentence in corpus {
            for &t in sentence {
                assert!(t < vocab, "token {t} out of vocabulary {vocab}");
                counts[t] += 1.0;
                total_tokens += 1;
            }
        }
        let weights: Vec<f64> = counts.iter().map(|&c| c.powf(0.75)).collect();
        let negatives = AliasTable::new(&weights);
        let mut rng = StdRng::seed_from_u64(config.seed);
        let dim = config.dim;
        let scale = 0.5 / dim as f64;
        let mut input: Vec<f64> = (0..vocab * dim)
            .map(|_| (rng.random::<f64>() - 0.5) * 2.0 * scale)
            .collect();
        let mut output = vec![0.0f64; vocab * dim];
        let total_steps = (config.epochs * total_tokens).max(1);
        let mut step = 0usize;
        // Negative-sample draws accumulate locally; the registry lock is
        // taken once at the end, not inside the SGD loop.
        let mut neg_draws = 0u64;
        // Token-prefix sums per sentence: chunk `[a, b)` of sentences starts
        // at global SGD step `step + prefix[a]`, so learning-rate decay is a
        // pure function of the token's corpus position at any thread count.
        let mut prefix = Vec::with_capacity(corpus.len() + 1);
        prefix.push(0usize);
        for sentence in corpus {
            prefix.push(prefix.last().expect("non-empty prefix") + sentence.len());
        }

        // Checkpoint/resume: with an ambient store installed and `--resume`
        // in effect, restore the newest valid epoch checkpoint for this job
        // and continue from there; the RNG stream state travels with the
        // matrices, so the resumed run replays the exact token/negative
        // sequence the uninterrupted run would have seen.
        let fingerprint = config_fingerprint(config, vocab, corpus.len(), total_tokens);
        let store = x2v_ckpt::ambient();
        let mut start_epoch = 0usize;
        if let Some(store) = store.as_deref() {
            if x2v_ckpt::resume_requested() {
                let loaded = store
                    .load_latest(job, CKPT_KIND)
                    .ok()
                    .flatten()
                    .and_then(|(_, payload)| EpochCkpt::decode(&payload, vocab * dim))
                    .filter(|ck| {
                        ck.fingerprint == fingerprint
                            && ck.input.len() == vocab * dim
                            && ck.output.len() == vocab * dim
                            && ck.epochs_done as usize <= config.epochs
                            && ck.rng != [0, 0, 0, 0]
                    });
                match loaded {
                    Some(ck) => {
                        start_epoch = ck.epochs_done as usize;
                        step = ck.step as usize;
                        rng = StdRng::from_state(ck.rng);
                        input = ck.input;
                        output = ck.output;
                        x2v_ckpt::note_resumed();
                    }
                    None => x2v_ckpt::note_cold_start(),
                }
            }
        }
        let save_epoch_ckpt = |store: &x2v_ckpt::Store,
                               epochs_done: usize,
                               step: usize,
                               rng: &StdRng,
                               input: &[f64],
                               output: &[f64]| {
            let ck = EpochCkpt {
                fingerprint,
                epochs_done: epochs_done as u64,
                step: step as u64,
                rng: rng.state(),
                input: input.to_vec(),
                output: output.to_vec(),
            };
            if let Err(e) = store.save(job, CKPT_KIND, &ck.encode()) {
                x2v_obs::counter_add("ckpt/save_failed", 1);
                eprintln!("[x2v-embed] checkpoint save failed for job {job:?}: {e}");
            }
        };

        let budget = x2v_guard::ambient();
        let mut meter = budget.meter(SITE);
        for epoch in start_epoch..config.epochs {
            // Cooperative budget check between epochs (one work unit per
            // token trained): a trip stops early with the vectors learnt
            // so far — a usable partial embedding — instead of panicking.
            if meter
                .tick(total_tokens as u64)
                .and_then(|()| meter.checkpoint())
                .is_err()
            {
                x2v_guard::note_degraded();
                x2v_obs::counter_add("embed/epochs_skipped", (config.epochs - epoch) as u64);
                break;
            }
            x2v_obs::progress(
                "embed/word2vec_epochs",
                (epoch + 1) as u64,
                config.epochs as u64,
            );
            // Deterministic sharded epoch. The sentence range is cut by a
            // ChunkPlan keyed only by corpus size; each chunk trains a
            // private copy of both matrices from the epoch-start snapshot
            // using its own split RNG stream, and returns the resulting
            // parameter *delta*. Deltas are applied in chunk order, so the
            // epoch result is a pure function of (snapshot, corpus, seed) —
            // bit-identical at every `X2V_THREADS`, including 1. The master
            // RNG long-jumps once per epoch (2^192 states), leaving the
            // per-chunk jump streams (2^128 apart) collision-free, and its
            // state at each epoch boundary remains the single value the
            // checkpoint has to carry.
            let epoch_base = rng.clone();
            rng.long_jump();
            let plan = x2v_par::ChunkPlan::new(corpus.len(), SENTENCE_GRAIN);
            let shards = x2v_par::map_chunks(&plan, |chunk, range| {
                let mut rng = epoch_base.split_stream(chunk as u64);
                let mut local_in = input.clone();
                let mut local_out = output.clone();
                let mut grad = vec![0.0f64; dim];
                let mut draws = 0u64;
                let mut step = step + prefix[range.start];
                for sentence in &corpus[range] {
                    for (pos, &centre) in sentence.iter().enumerate() {
                        let lr = config.learning_rate
                            * (1.0 - step as f64 / total_steps as f64).max(1e-4);
                        step += 1;
                        // Randomised effective window like the reference
                        // implementation.
                        let b = rng.random_range(0..config.window.max(1));
                        let lo = pos.saturating_sub(config.window - b);
                        let hi = (pos + config.window - b + 1).min(sentence.len());
                        for ctx_pos in lo..hi {
                            if ctx_pos == pos {
                                continue;
                            }
                            let context = sentence[ctx_pos];
                            grad.iter_mut().for_each(|g| *g = 0.0);
                            let wrow = centre * dim;
                            // Positive pair. The two rank-1 updates run on
                            // the chunked `x2v-linalg` axpy (element-wise,
                            // so bit-identical to the scalar loop); the
                            // gradient axpy against the *pre-update* output
                            // row comes first. The dot stays a sequential
                            // sum: a lane-chunked reduction would reorder
                            // the additions and shift every trained model's
                            // bits, breaking the fixed-seed training
                            // contract downstream tests pin.
                            {
                                let crow = context * dim;
                                let dot = dot_seq(
                                    &local_in[wrow..wrow + dim],
                                    &local_out[crow..crow + dim],
                                );
                                let g = (1.0 - sigmoid(dot)) * lr;
                                axpy_f64(g, &local_out[crow..crow + dim], &mut grad);
                                let in_row = &local_in[wrow..wrow + dim];
                                axpy_f64(g, in_row, &mut local_out[crow..crow + dim]);
                            }
                            // Negative pairs.
                            for _ in 0..config.negative {
                                draws += 1;
                                let neg = negatives.sample(&mut rng);
                                if neg == context {
                                    continue;
                                }
                                let crow = neg * dim;
                                let dot = dot_seq(
                                    &local_in[wrow..wrow + dim],
                                    &local_out[crow..crow + dim],
                                );
                                let g = -sigmoid(dot) * lr;
                                axpy_f64(g, &local_out[crow..crow + dim], &mut grad);
                                let in_row = &local_in[wrow..wrow + dim];
                                axpy_f64(g, in_row, &mut local_out[crow..crow + dim]);
                            }
                            axpy_f64(1.0, &grad, &mut local_in[wrow..wrow + dim]);
                        }
                    }
                }
                // Reduce each matrix to its delta against the snapshot.
                for (l, &s) in local_in.iter_mut().zip(input.iter()) {
                    *l -= s;
                }
                for (l, &s) in local_out.iter_mut().zip(output.iter()) {
                    *l -= s;
                }
                (local_in, local_out, draws)
            });
            for (delta_in, delta_out, draws) in shards {
                for (x, d) in input.iter_mut().zip(&delta_in) {
                    *x += d;
                }
                for (x, d) in output.iter_mut().zip(&delta_out) {
                    *x += d;
                }
                neg_draws += draws;
            }
            step += total_tokens;
            // Epoch boundary: persist the full training state. A budget
            // trip at the top of the next epoch then leaves this epoch's
            // work durable instead of discarding it.
            if let Some(store) = store.as_deref() {
                save_epoch_ckpt(store, epoch + 1, step, &rng, &input, &output);
            }
        }
        x2v_obs::counter_add("embed/negative_samples", neg_draws);
        Word2Vec {
            input,
            output,
            dim,
            vocab,
        }
    }

    /// The input vector of a token.
    pub fn vector(&self, token: usize) -> &[f64] {
        &self.input[token * self.dim..(token + 1) * self.dim]
    }

    /// The output ("context") vector of a token — occasionally useful for
    /// asymmetric similarity (the paper notes random-walk similarity is not
    /// symmetric; input·output products expose that asymmetry).
    pub fn context_vector(&self, token: usize) -> &[f64] {
        &self.output[token * self.dim..(token + 1) * self.dim]
    }

    /// All input vectors as rows.
    pub fn vectors(&self) -> Vec<Vec<f64>> {
        (0..self.vocab).map(|t| self.vector(t).to_vec()).collect()
    }

    /// Embedding dimension.
    pub fn dimension(&self) -> usize {
        self.dim
    }

    /// Vocabulary size.
    pub fn vocab_size(&self) -> usize {
        self.vocab
    }

    /// Cosine similarity of two tokens.
    pub fn similarity(&self, a: usize, b: usize) -> f64 {
        x2v_linalg::vector::cosine(self.vector(a), self.vector(b))
    }

    /// Analogy query "a is to b as c is to ?": the token whose vector is
    /// most cosine-similar to `b − a + c` (excluding a, b, c) — the
    /// vector-arithmetic regularity the paper's introduction describes with
    /// Paris − France ≈ Santiago − Chile.
    pub fn analogy(&self, a: usize, b: usize, c: usize) -> usize {
        let target: Vec<f64> = (0..self.dim)
            .map(|d| self.vector(b)[d] - self.vector(a)[d] + self.vector(c)[d])
            .collect();
        (0..self.vocab)
            .filter(|&t| t != a && t != b && t != c)
            .max_by(|&x, &y| {
                let sx = x2v_linalg::vector::cosine(self.vector(x), &target);
                let sy = x2v_linalg::vector::cosine(self.vector(y), &target);
                sx.partial_cmp(&sy).expect("finite similarity")
            })
            .expect("vocabulary larger than 3")
    }

    /// The `k` most similar tokens to `token` (excluding itself).
    pub fn most_similar(&self, token: usize, k: usize) -> Vec<(usize, f64)> {
        let mut sims: Vec<(usize, f64)> = (0..self.vocab)
            .filter(|&t| t != token)
            .map(|t| (t, self.similarity(token, t)))
            .collect();
        sims.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite similarities"));
        sims.truncate(k);
        sims
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Synthetic corpus: tokens 0..5 co-occur, tokens 5..10 co-occur.
    fn two_topic_corpus(seed: u64, sentences: usize) -> Vec<Vec<usize>> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..sentences)
            .map(|i| {
                let base: usize = if i % 2 == 0 { 0 } else { 5 };
                (0..12)
                    .map(|_| base + rng.random_range(0..5usize))
                    .collect()
            })
            .collect()
    }

    #[test]
    fn topic_clusters_separate() {
        let corpus = two_topic_corpus(1, 300);
        let cfg = SgnsConfig {
            dim: 16,
            epochs: 4,
            ..Default::default()
        };
        let model = Word2Vec::train(&corpus, 10, &cfg);
        // Average intra-topic similarity must beat inter-topic similarity.
        let mut intra = 0.0;
        let mut inter = 0.0;
        let mut n_intra = 0;
        let mut n_inter = 0;
        for a in 0..10 {
            for b in (a + 1)..10 {
                let s = model.similarity(a, b);
                if (a < 5) == (b < 5) {
                    intra += s;
                    n_intra += 1;
                } else {
                    inter += s;
                    n_inter += 1;
                }
            }
        }
        let intra = intra / n_intra as f64;
        let inter = inter / n_inter as f64;
        assert!(
            intra > inter + 0.3,
            "intra {intra:.3} should clearly exceed inter {inter:.3}"
        );
    }

    #[test]
    fn most_similar_prefers_same_topic() {
        let corpus = two_topic_corpus(2, 300);
        let cfg = SgnsConfig {
            dim: 16,
            epochs: 4,
            ..Default::default()
        };
        let model = Word2Vec::train(&corpus, 10, &cfg);
        let top: Vec<usize> = model
            .most_similar(0, 4)
            .into_iter()
            .map(|(t, _)| t)
            .collect();
        let same_topic = top.iter().filter(|&&t| t < 5).count();
        assert!(same_topic >= 3, "top-4 of token 0: {top:?}");
    }

    #[test]
    fn deterministic_given_seed() {
        let corpus = two_topic_corpus(3, 50);
        let cfg = SgnsConfig {
            dim: 8,
            epochs: 2,
            ..Default::default()
        };
        let a = Word2Vec::train(&corpus, 10, &cfg);
        let b = Word2Vec::train(&corpus, 10, &cfg);
        assert_eq!(a.vector(3), b.vector(3));
    }

    #[test]
    fn analogy_stays_in_topic() {
        // With clean two-topic structure, "t0 : t1 :: t5 : ?" should answer
        // within topic B (tokens 5..10): the offset t1 − t0 is tiny
        // compared with the between-topic displacement.
        let corpus = two_topic_corpus(8, 400);
        let cfg = SgnsConfig {
            dim: 16,
            epochs: 4,
            ..Default::default()
        };
        let model = Word2Vec::train(&corpus, 10, &cfg);
        let answer = model.analogy(0, 1, 5);
        assert!((5..10).contains(&answer), "answer {answer} left the topic");
    }

    #[test]
    #[should_panic(expected = "out of vocabulary")]
    fn oov_token_rejected() {
        let _ = Word2Vec::train(&[vec![0, 99]], 10, &SgnsConfig::default());
    }
}
