//! RESCAL (Nickel et al. [83]): each relation is a *bilinear form*
//! `β_R(x_h, x_t) = x_hᵀ B_R x_t`, trained so that `β ≈ 1` on facts and
//! `β ≈ 0` on non-facts — the paper's Section 2.3 multi-relational matrix
//! factorisation `min Σ_R ‖X B_R Xᵀ − A_R‖`.
//!
//! Trained by SGD on the squared loss over observed triples plus sampled
//! negatives.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use x2v_graph::relational::KnowledgeGraph;

/// RESCAL hyperparameters.
#[derive(Clone, Debug)]
pub struct RescalConfig {
    /// Embedding dimension.
    pub dim: usize,
    /// Learning rate.
    pub learning_rate: f64,
    /// L2 regularisation strength.
    pub l2: f64,
    /// Epochs.
    pub epochs: usize,
    /// Negative samples per positive triple per epoch.
    pub negative: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for RescalConfig {
    fn default() -> Self {
        RescalConfig {
            dim: 16,
            learning_rate: 0.05,
            l2: 1e-4,
            epochs: 300,
            negative: 4,
            seed: 0x4e5ca1,
        }
    }
}

/// A trained RESCAL model.
pub struct Rescal {
    /// Entity vectors, `n × dim`.
    pub entities: Vec<Vec<f64>>,
    /// Relation matrices `B_R`, each `dim × dim` row-major.
    pub relations: Vec<Vec<f64>>,
    dim: usize,
}

impl Rescal {
    /// Trains on a knowledge graph.
    pub fn train(kg: &KnowledgeGraph, config: &RescalConfig) -> Self {
        let _timer = x2v_obs::span("embed/rescal_train");
        let dim = config.dim;
        let mut rng = StdRng::seed_from_u64(config.seed);
        let mut entities: Vec<Vec<f64>> = (0..kg.n_entities())
            .map(|_| (0..dim).map(|_| rng.random::<f64>() * 0.2 - 0.1).collect())
            .collect();
        let mut relations: Vec<Vec<f64>> = (0..kg.n_relations())
            .map(|_| {
                (0..dim * dim)
                    .map(|_| rng.random::<f64>() * 0.2 - 0.1)
                    .collect()
            })
            .collect();
        let triples = kg.triples().to_vec();
        assert!(
            !triples.is_empty(),
            "cannot train on an empty knowledge graph"
        );
        let mut grad_h = vec![0.0f64; dim];
        let mut grad_t = vec![0.0f64; dim];
        for epoch in 0..config.epochs {
            x2v_obs::progress(
                "embed/rescal_epochs",
                (epoch + 1) as u64,
                config.epochs as u64,
            );
            for &(h, r, t) in &triples {
                Self::sgd_step(
                    &mut entities,
                    &mut relations,
                    h,
                    r,
                    t,
                    1.0,
                    config,
                    dim,
                    &mut grad_h,
                    &mut grad_t,
                );
                for _ in 0..config.negative {
                    let (nh, nt) = if rng.random::<f64>() < 0.5 {
                        (rng.random_range(0..kg.n_entities()), t)
                    } else {
                        (h, rng.random_range(0..kg.n_entities()))
                    };
                    if kg.contains(nh, r, nt) {
                        continue;
                    }
                    Self::sgd_step(
                        &mut entities,
                        &mut relations,
                        nh,
                        r,
                        nt,
                        0.0,
                        config,
                        dim,
                        &mut grad_h,
                        &mut grad_t,
                    );
                }
            }
        }
        Rescal {
            entities,
            relations,
            dim,
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn sgd_step(
        entities: &mut [Vec<f64>],
        relations: &mut [Vec<f64>],
        h: usize,
        r: usize,
        t: usize,
        target: f64,
        config: &RescalConfig,
        dim: usize,
        grad_h: &mut [f64],
        grad_t: &mut [f64],
    ) {
        // score = x_hᵀ B x_t; error = score − target.
        let score = {
            let b = &relations[r];
            let (xh, xt) = (&entities[h], &entities[t]);
            let mut s = 0.0;
            for i in 0..dim {
                let xi = xh[i];
                if xi == 0.0 {
                    continue;
                }
                let row = &b[i * dim..(i + 1) * dim];
                s += xi * row.iter().zip(xt.iter()).map(|(a, c)| a * c).sum::<f64>();
            }
            s
        };
        let err = score - target;
        let lr = config.learning_rate;
        // ∂/∂x_h = B x_t; ∂/∂x_t = Bᵀ x_h; ∂/∂B = x_h x_tᵀ.
        {
            let b = &relations[r];
            for i in 0..dim {
                let row = &b[i * dim..(i + 1) * dim];
                grad_h[i] = row
                    .iter()
                    .zip(entities[t].iter())
                    .map(|(a, c)| a * c)
                    .sum::<f64>();
            }
            for j in 0..dim {
                grad_t[j] = (0..dim)
                    .map(|i| b[i * dim + j] * entities[h][i])
                    .sum::<f64>();
            }
        }
        {
            let b = &mut relations[r];
            for i in 0..dim {
                let xhi = entities[h][i];
                for j in 0..dim {
                    b[i * dim + j] -=
                        lr * (err * xhi * entities[t][j] + config.l2 * b[i * dim + j]);
                }
            }
        }
        // h and t may alias (self-loops are impossible in our KGs, but be
        // safe with sequential updates).
        for i in 0..dim {
            entities[h][i] -= lr * (err * grad_h[i] + config.l2 * entities[h][i]);
        }
        for j in 0..dim {
            entities[t][j] -= lr * (err * grad_t[j] + config.l2 * entities[t][j]);
        }
    }

    /// The bilinear score `x_hᵀ B_r x_t` (≈ 1 for facts, ≈ 0 otherwise).
    pub fn score(&self, h: usize, r: usize, t: usize) -> f64 {
        let b = &self.relations[r];
        let (xh, xt) = (&self.entities[h], &self.entities[t]);
        let mut s = 0.0;
        for i in 0..self.dim {
            let row = &b[i * self.dim..(i + 1) * self.dim];
            s += xh[i] * row.iter().zip(xt.iter()).map(|(a, c)| a * c).sum::<f64>();
        }
        s
    }

    /// Raw rank of the true tail for `(h, r, ?)` (higher score = better).
    pub fn tail_rank(&self, h: usize, r: usize, true_t: usize) -> usize {
        let true_score = self.score(h, r, true_t);
        1 + (0..self.entities.len())
            .filter(|&t| t != true_t && self.score(h, r, t) > true_score)
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_world() -> KnowledgeGraph {
        let mut triples = Vec::new();
        for i in 0..5 {
            triples.push((i, 0, 5 + i)); // likes
            triples.push((5 + i, 1, i)); // liked_by (inverse)
        }
        KnowledgeGraph::new(10, 2, &triples).unwrap()
    }

    #[test]
    fn facts_score_higher_than_nonfacts() {
        let kg = toy_world();
        let model = Rescal::train(&kg, &RescalConfig::default());
        let mut fact = 0.0;
        let mut non = 0.0;
        for i in 0..5 {
            fact += model.score(i, 0, 5 + i);
            non += model.score(i, 0, 5 + ((i + 2) % 5));
        }
        assert!(
            fact / 5.0 > non / 5.0 + 0.3,
            "facts {:.3} vs non-facts {:.3}",
            fact / 5.0,
            non / 5.0
        );
    }

    #[test]
    fn ranking_beats_random() {
        let kg = toy_world();
        let model = Rescal::train(&kg, &RescalConfig::default());
        let mean: f64 = (0..5)
            .map(|i| model.tail_rank(i, 0, 5 + i) as f64)
            .sum::<f64>()
            / 5.0;
        assert!(mean < 3.0, "mean rank {mean}");
    }

    #[test]
    fn asymmetric_relations_supported() {
        // RESCAL's bilinear form is not symmetric — the inverse relation
        // should be learned separately and correctly.
        let kg = toy_world();
        let model = Rescal::train(&kg, &RescalConfig::default());
        let forward = model.score(0, 0, 5);
        let backward = model.score(5, 1, 0);
        assert!(forward > 0.5);
        assert!(backward > 0.5);
    }
}
