//! graph2vec (Narayanan et al. [80]): transductive whole-graph embeddings
//! via PV-DBOW over Weisfeiler-Leman subtree "words" (Section 2.5).
//!
//! Each graph is a document; its words are the WL colours of its nodes at
//! rounds `0..=depth` (computed through one shared interner, so the same
//! rooted subtree is the same word in every graph). Training maximises
//! `log σ(d_g · w_c)` for observed (graph, colour) pairs against sampled
//! negatives — doc2vec's distributed bag of words, exactly as graph2vec
//! prescribes.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use x2v_graph::Graph;
use x2v_linalg::sampling::AliasTable;
use x2v_linalg::vector::sigmoid;
use x2v_wl::features::WlFeatureVector;
use x2v_wl::Refiner;

/// graph2vec hyperparameters.
#[derive(Clone, Debug)]
pub struct Graph2VecConfig {
    /// Embedding dimension.
    pub dim: usize,
    /// WL rounds (subtree depth of the words).
    pub depth: usize,
    /// Negative samples per positive.
    pub negative: usize,
    /// Training epochs.
    pub epochs: usize,
    /// Initial learning rate.
    pub learning_rate: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for Graph2VecConfig {
    fn default() -> Self {
        Graph2VecConfig {
            dim: 32,
            depth: 3,
            negative: 5,
            epochs: 30,
            learning_rate: 0.05,
            seed: 0x617665,
        }
    }
}

/// A fitted graph2vec model: one vector per training graph (transductive —
/// the paper's Section 2.5 stresses this limitation; [`FittedGraph2Vec::infer`]
/// embeds an unseen graph by doc-vector inference with frozen word vectors).
pub struct FittedGraph2Vec {
    doc_vectors: Vec<Vec<f64>>,
    word_vectors: Vec<Vec<f64>>,
    /// (round, colour) → word id.
    word_index: x2v_graph::hash::FxHashMap<(usize, u64), usize>,
    refiner: std::sync::Mutex<Refiner>,
    config: Graph2VecConfig,
}

/// Bag of words of one graph: (word id, multiplicity).
type Bag = Vec<(usize, f64)>;

impl FittedGraph2Vec {
    /// Fits graph2vec on a dataset.
    pub fn fit(graphs: &[Graph], config: Graph2VecConfig) -> Self {
        let mut refiner = Refiner::new();
        let mut word_index = x2v_graph::hash::FxHashMap::default();
        let mut bags: Vec<Bag> = Vec::with_capacity(graphs.len());
        let mut word_freq: Vec<f64> = Vec::new();
        for g in graphs {
            let f = WlFeatureVector::compute(&mut refiner, g, config.depth);
            let mut bag = Vec::new();
            for (round, hist) in f.rounds.iter().enumerate() {
                for (&c, &count) in hist {
                    let next = word_index.len();
                    let id = *word_index.entry((round, c)).or_insert(next);
                    if id == word_freq.len() {
                        word_freq.push(0.0);
                    }
                    word_freq[id] += count as f64;
                    bag.push((id, count as f64));
                }
            }
            bags.push(bag);
        }
        let vocab = word_freq.len();
        let mut rng = StdRng::seed_from_u64(config.seed);
        let dim = config.dim;
        let init = |rng: &mut StdRng| -> Vec<f64> {
            (0..dim)
                .map(|_| (rng.random::<f64>() - 0.5) / dim as f64)
                .collect()
        };
        let mut doc_vectors: Vec<Vec<f64>> = (0..graphs.len()).map(|_| init(&mut rng)).collect();
        let mut word_vectors: Vec<Vec<f64>> = (0..vocab).map(|_| init(&mut rng)).collect();
        let weights: Vec<f64> = word_freq.iter().map(|&f| f.powf(0.75)).collect();
        let negatives = AliasTable::new(&weights);
        let total_steps = config.epochs.max(1);
        for epoch in 0..config.epochs {
            let lr = config.learning_rate * (1.0 - epoch as f64 / total_steps as f64).max(0.05);
            for (d, bag) in bags.iter().enumerate() {
                train_document(
                    &mut doc_vectors[d],
                    &mut word_vectors,
                    bag,
                    &negatives,
                    &config,
                    lr,
                    &mut rng,
                    true,
                );
            }
        }
        FittedGraph2Vec {
            doc_vectors,
            word_vectors,
            word_index,
            refiner: std::sync::Mutex::new(refiner),
            config,
        }
    }

    /// The embedding of training graph `i`.
    pub fn vector(&self, i: usize) -> &[f64] {
        &self.doc_vectors[i]
    }

    /// All training-graph embeddings.
    pub fn vectors(&self) -> &[Vec<f64>] {
        &self.doc_vectors
    }

    /// Embedding dimension.
    pub fn dimension(&self) -> usize {
        self.config.dim
    }

    /// Infers a vector for an unseen graph: word vectors stay frozen, a
    /// fresh doc vector is trained on the graph's WL words. Words never
    /// seen in training are skipped (standard out-of-vocabulary handling).
    pub fn infer(&self, g: &Graph, seed: u64) -> Vec<f64> {
        let mut refiner = self.refiner.lock().expect("graph2vec refiner lock");
        let f = WlFeatureVector::compute(&mut refiner, g, self.config.depth);
        let mut bag = Vec::new();
        for (round, hist) in f.rounds.iter().enumerate() {
            for (&c, &count) in hist {
                if let Some(&id) = self.word_index.get(&(round, c)) {
                    bag.push((id, count as f64));
                }
            }
        }
        let mut rng = StdRng::seed_from_u64(seed);
        let dim = self.config.dim;
        let mut doc: Vec<f64> = (0..dim)
            .map(|_| (rng.random::<f64>() - 0.5) / dim as f64)
            .collect();
        let weights: Vec<f64> = vec![1.0; self.word_vectors.len().max(1)];
        let negatives = AliasTable::new(&weights);
        let mut words = self.word_vectors.clone();
        for epoch in 0..self.config.epochs {
            let lr = self.config.learning_rate
                * (1.0 - epoch as f64 / self.config.epochs.max(1) as f64).max(0.05);
            train_document(
                &mut doc,
                &mut words,
                &bag,
                &negatives,
                &self.config,
                lr,
                &mut rng,
                false,
            );
        }
        doc
    }
}

#[allow(clippy::too_many_arguments)]
fn train_document(
    doc: &mut [f64],
    words: &mut [Vec<f64>],
    bag: &Bag,
    negatives: &AliasTable,
    config: &Graph2VecConfig,
    lr: f64,
    rng: &mut StdRng,
    update_words: bool,
) {
    let dim = doc.len();
    let mut grad = vec![0.0f64; dim];
    for &(word, multiplicity) in bag {
        let weight = multiplicity.sqrt(); // damp very frequent colours
        grad.iter_mut().for_each(|g| *g = 0.0);
        {
            let w = &mut words[word];
            let dot: f64 = doc.iter().zip(w.iter()).map(|(a, b)| a * b).sum();
            let g = (1.0 - sigmoid(dot)) * lr * weight;
            for d in 0..dim {
                grad[d] += g * w[d];
                if update_words {
                    w[d] += g * doc[d];
                }
            }
        }
        for _ in 0..config.negative {
            let neg = negatives.sample(rng);
            if neg == word {
                continue;
            }
            let w = &mut words[neg];
            let dot: f64 = doc.iter().zip(w.iter()).map(|(a, b)| a * b).sum();
            let g = -sigmoid(dot) * lr * weight;
            for d in 0..dim {
                grad[d] += g * w[d];
                if update_words {
                    w[d] += g * doc[d];
                }
            }
        }
        for d in 0..dim {
            doc[d] += grad[d];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use x2v_graph::generators::{cycle, random_tree};
    use x2v_linalg::vector::cosine;

    fn cycles_vs_trees_dataset() -> (Vec<Graph>, Vec<usize>) {
        let mut rng = StdRng::seed_from_u64(77);
        let mut graphs = Vec::new();
        let mut labels = Vec::new();
        for n in 6..14 {
            graphs.push(cycle(n));
            labels.push(0);
            graphs.push(random_tree(n, &mut rng));
            labels.push(1);
        }
        (graphs, labels)
    }

    #[test]
    fn class_structure_visible_in_doc_vectors() {
        let (graphs, labels) = cycles_vs_trees_dataset();
        let model = FittedGraph2Vec::fit(&graphs, Graph2VecConfig::default());
        let mut intra = 0.0;
        let mut inter = 0.0;
        let (mut ni, mut nx) = (0, 0);
        for a in 0..graphs.len() {
            for b in (a + 1)..graphs.len() {
                let s = cosine(model.vector(a), model.vector(b));
                if labels[a] == labels[b] {
                    intra += s;
                    ni += 1;
                } else {
                    inter += s;
                    nx += 1;
                }
            }
        }
        assert!(
            intra / ni as f64 > inter / nx as f64,
            "same-class graphs should be more similar"
        );
    }

    #[test]
    fn inference_lands_near_training_class() {
        let (graphs, _) = cycles_vs_trees_dataset();
        let model = FittedGraph2Vec::fit(&graphs, Graph2VecConfig::default());
        // Infer a new cycle: it should be closer to the average trained
        // cycle than to the average trained tree.
        let inferred = model.infer(&cycle(9), 99);
        let cycle_sim: f64 = (0..graphs.len())
            .step_by(2)
            .map(|i| cosine(&inferred, model.vector(i)))
            .sum::<f64>();
        let tree_sim: f64 = (1..graphs.len())
            .step_by(2)
            .map(|i| cosine(&inferred, model.vector(i)))
            .sum::<f64>();
        assert!(cycle_sim > tree_sim, "{cycle_sim} vs {tree_sim}");
    }

    #[test]
    fn shapes_and_determinism() {
        let (graphs, _) = cycles_vs_trees_dataset();
        let cfg = Graph2VecConfig {
            dim: 8,
            epochs: 5,
            ..Default::default()
        };
        let a = FittedGraph2Vec::fit(&graphs, cfg.clone());
        let b = FittedGraph2Vec::fit(&graphs, cfg);
        assert_eq!(a.vector(0), b.vector(0));
        assert_eq!(a.dimension(), 8);
        assert_eq!(a.vectors().len(), graphs.len());
    }
}
