//! Random-walk corpora over graphs (Section 2.1).
//!
//! DeepWalk samples uniform random walks; node2vec biases the second-order
//! transition by the return parameter `p` and in-out parameter `q`:
//! stepping from `t` to `v`, the unnormalised probability of moving on to
//! `x` is `1/p` if `x = t`, `1` if `dist(t, x) = 1`, and `1/q` otherwise.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use x2v_graph::Graph;

/// Walk-corpus hyperparameters.
#[derive(Clone, Debug)]
pub struct WalkConfig {
    /// Walks started per node.
    pub walks_per_node: usize,
    /// Nodes per walk.
    pub walk_length: usize,
    /// node2vec return parameter `p` (1.0 = unbiased).
    pub p: f64,
    /// node2vec in-out parameter `q` (1.0 = unbiased).
    pub q: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for WalkConfig {
    fn default() -> Self {
        WalkConfig {
            walks_per_node: 10,
            walk_length: 40,
            p: 1.0,
            q: 1.0,
            seed: 7,
        }
    }
}

/// Chunk grain for parallel walk generation: walks per chunk before the
/// plan's 64-chunk ceiling kicks in. Part of the determinism contract —
/// changing it re-keys every chunk's RNG stream and shifts all corpora.
const WALK_GRAIN: usize = 256;

/// Generates the walk corpus: one sentence of node ids per walk. Nodes with
/// no neighbours yield length-1 walks.
///
/// Walks are generated in parallel over the flat walk index space
/// `w = rep·n + start` (rep-major, matching the corpus order). The index
/// space is cut by a [`x2v_par::ChunkPlan`] keyed only by its size, and
/// chunk `c` draws from the dedicated RNG stream
/// `StdRng::seed_from_u64(seed).split_stream(c)` — so the corpus is
/// bit-identical for every `X2V_THREADS`, including 1.
pub fn generate_walks(g: &Graph, config: &WalkConfig) -> Vec<Vec<usize>> {
    let _timer = x2v_obs::span("embed/generate_walks");
    let total = g.order() * config.walks_per_node;
    let plan = x2v_par::ChunkPlan::new(total, WALK_GRAIN);
    let chunks = x2v_par::map_chunks(&plan, |chunk, range| {
        generate_walk_chunk(g, config, chunk, range)
    });
    let corpus: Vec<Vec<usize>> = chunks.into_iter().flatten().collect();
    x2v_obs::counter_add(
        "embed/walk_steps",
        corpus.iter().map(|w| w.len() as u64).sum(),
    );
    corpus
}

/// The deterministic chunking of the flat walk index space: the exact
/// ranges [`generate_walks`] cuts. Exposed so an external scheduler (the
/// `x2v-fleet` runtime) can farm chunks out to worker *processes* and
/// still reproduce the single-process corpus bit-for-bit: concatenating
/// `generate_walk_chunk(g, cfg, c, ranges[c])` over `c` in order IS
/// `generate_walks(g, cfg)`.
pub fn walk_chunks(g: &Graph, config: &WalkConfig) -> Vec<std::ops::Range<usize>> {
    let total = g.order() * config.walks_per_node;
    let plan = x2v_par::ChunkPlan::new(total, WALK_GRAIN);
    (0..plan.n_chunks()).map(|c| plan.range(c)).collect()
}

/// Generates chunk `chunk` of the walk corpus: the walks with flat indices
/// `w = rep·n + start` in `range`, drawn from the chunk's dedicated RNG
/// stream `StdRng::seed_from_u64(seed).split_stream(chunk)`. Independent of
/// the thread or process executing it — the unit of work the fleet ships
/// to workers. `range` must be the chunk's range from [`walk_chunks`].
pub fn generate_walk_chunk(
    g: &Graph,
    config: &WalkConfig,
    chunk: usize,
    range: std::ops::Range<usize>,
) -> Vec<Vec<usize>> {
    let n = g.order();
    let csr = g.csr();
    let uniform = (config.p - 1.0).abs() < 1e-12 && (config.q - 1.0).abs() < 1e-12;
    let mut rng = StdRng::seed_from_u64(config.seed).split_stream(chunk as u64);
    // Scratch buffer for the biased-step weights, reused across every step
    // of every walk in the chunk: the hot loop allocates only the walks
    // themselves. No effect on the RNG draw sequence, so corpora stay
    // bit-identical to the pre-scratch implementation.
    let mut weights: Vec<f64> = Vec::new();
    range
        .map(|w| {
            let start = w % n;
            let mut walk = Vec::with_capacity(config.walk_length);
            walk.push(start);
            while walk.len() < config.walk_length {
                let cur = *walk.last().expect("non-empty walk");
                let nbrs = csr.neighbours(cur);
                if nbrs.is_empty() {
                    break;
                }
                let next = if uniform || walk.len() < 2 {
                    nbrs[rng.random_range(0..nbrs.len())]
                } else {
                    biased_step(
                        csr,
                        walk[walk.len() - 2],
                        cur,
                        config,
                        &mut rng,
                        &mut weights,
                    )
                };
                walk.push(next);
            }
            walk
        })
        .collect()
}

/// One biased second-order step from `cur`, having arrived from `prev`,
/// scanning adjacency through the CSR view with a caller-provided weight
/// scratch buffer.
fn biased_step(
    csr: x2v_graph::csr::CsrView<'_>,
    prev: usize,
    cur: usize,
    config: &WalkConfig,
    rng: &mut StdRng,
    weights: &mut Vec<f64>,
) -> usize {
    let nbrs = csr.neighbours(cur);
    let prev_nbrs = csr.neighbours(prev);
    // Unnormalised weights; rejection-free: sample by cumulative sum.
    let mut total = 0.0f64;
    weights.clear();
    for &x in nbrs {
        let w = if x == prev {
            1.0 / config.p
        } else if prev_nbrs.binary_search(&x).is_ok() {
            1.0
        } else {
            1.0 / config.q
        };
        weights.push(w);
        total += w;
    }
    let mut target = rng.random::<f64>() * total;
    for (i, &w) in weights.iter().enumerate() {
        target -= w;
        if target <= 0.0 {
            return nbrs[i];
        }
    }
    nbrs[nbrs.len() - 1]
}

#[cfg(test)]
mod tests {
    use super::*;
    use x2v_graph::generators::{cycle, path, star};
    use x2v_graph::ops::disjoint_union;

    #[test]
    fn corpus_shape() {
        let g = cycle(6);
        let cfg = WalkConfig {
            walks_per_node: 3,
            walk_length: 10,
            ..Default::default()
        };
        let corpus = generate_walks(&g, &cfg);
        assert_eq!(corpus.len(), 18);
        assert!(corpus.iter().all(|w| w.len() == 10));
        // Consecutive walk nodes are adjacent.
        for walk in &corpus {
            for pair in walk.windows(2) {
                assert!(g.has_edge(pair[0], pair[1]));
            }
        }
    }

    #[test]
    fn isolated_nodes_stop_early() {
        let g = disjoint_union(&path(2), &path(1));
        let cfg = WalkConfig {
            walks_per_node: 1,
            walk_length: 5,
            ..Default::default()
        };
        let corpus = generate_walks(&g, &cfg);
        let iso_walk = corpus.iter().find(|w| w[0] == 2).expect("walk from node 2");
        assert_eq!(iso_walk.len(), 1);
    }

    #[test]
    fn low_p_returns_often() {
        // p → 0 forces immediate backtracking: on a star, walks from a leaf
        // alternate leaf-centre-leaf…, revisiting the start leaf often.
        let g = star(6);
        let backtrack = WalkConfig {
            walks_per_node: 5,
            walk_length: 20,
            p: 0.01,
            q: 1.0,
            seed: 11,
        };
        let explore = WalkConfig {
            p: 100.0,
            ..backtrack.clone()
        };
        let count_revisits = |cfg: &WalkConfig| {
            let corpus = generate_walks(&g, cfg);
            corpus
                .iter()
                .filter(|w| w[0] != 0)
                .map(|w| w.iter().filter(|&&v| v == w[0]).count())
                .sum::<usize>()
        };
        assert!(
            count_revisits(&backtrack) > 2 * count_revisits(&explore),
            "low p must revisit the origin far more often"
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let g = cycle(5);
        let cfg = WalkConfig::default();
        assert_eq!(generate_walks(&g, &cfg), generate_walks(&g, &cfg));
    }
}
