//! # x2v-embed — learned vector embeddings (Section 2)
//!
//! The "practice" side of the paper, implemented from scratch:
//!
//! * [`word2vec`] — skip-gram with negative sampling (SGNS), the algorithm
//!   whose ideas the paper traces through the whole embedding landscape;
//! * [`walks`] — random-walk corpora: uniform (DeepWalk) and the biased
//!   second-order (p, q)-walks of node2vec;
//! * [`node2vec`] / [`deepwalk`] — node embeddings from walk corpora
//!   (Section 2.1), "shallow"/transductive in the paper's taxonomy;
//! * [`line`] — LINE: first-/second-order proximity trained on edges;
//! * [`spectral`] — the matrix-factorisation embeddings of Section 2.1:
//!   SVD of the adjacency matrix (first-order proximity), SVD of
//!   `exp(−c·dist)` similarity, Laplacian eigenmaps, classical MDS — the
//!   three panels of the paper's Figure 2;
//! * [`graph2vec`] — transductive whole-graph embeddings via PV-DBOW over
//!   WL subtree "words" (Section 2.5);
//! * [`transe`] / [`rescal`] — knowledge-graph embeddings (Section 2.3):
//!   relations as translations, and as bilinear forms.
//!
//! Every trainer takes an explicit seed; results are reproducible.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
#![allow(clippy::needless_range_loop)]

pub mod deepwalk;
pub mod graph2vec;
pub mod line;
pub mod node2vec;
pub mod rescal;
pub mod spectral;
pub mod transe;
pub mod walks;
pub mod word2vec;
