//! Property-based tests of the linear-algebra substrate.

use proptest::prelude::*;
use x2v_linalg::assignment::hungarian;
use x2v_linalg::birkhoff::{is_doubly_stochastic, sinkhorn};
use x2v_linalg::eigen::sym_eigen;
use x2v_linalg::rational::Rat;
use x2v_linalg::Matrix;

fn arb_matrix(n: usize) -> impl Strategy<Value = Matrix> {
    proptest::collection::vec(-5.0f64..5.0, n * n)
        .prop_map(move |data| Matrix::from_flat(n, n, data))
}

fn arb_symmetric(n: usize) -> impl Strategy<Value = Matrix> {
    arb_matrix(n).prop_map(|m| {
        let mt = m.transpose();
        (&m + &mt).scaled(0.5)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn matmul_associative(a in arb_matrix(3), b in arb_matrix(3), c in arb_matrix(3)) {
        let left = a.matmul(&b).matmul(&c);
        let right = a.matmul(&b.matmul(&c));
        prop_assert!(left.approx_eq(&right, 1e-9));
    }

    #[test]
    fn eigen_reconstructs_symmetric(a in arb_symmetric(4)) {
        let e = sym_eigen(&a);
        let recon = e.vectors.matmul(&Matrix::diag(&e.values)).matmul(&e.vectors.transpose());
        prop_assert!(recon.approx_eq(&a, 1e-7));
        // Trace = sum of eigenvalues.
        let sum: f64 = e.values.iter().sum();
        prop_assert!((sum - a.trace()).abs() < 1e-7);
    }

    #[test]
    fn hungarian_beats_identity_assignment(c in arb_matrix(4)) {
        let (_, best) = hungarian(&c);
        let identity_cost: f64 = (0..4).map(|i| c[(i, i)]).sum();
        prop_assert!(best <= identity_cost + 1e-9);
    }

    #[test]
    fn sinkhorn_output_doubly_stochastic(m in proptest::collection::vec(0.1f64..5.0, 16)) {
        let x = sinkhorn(&Matrix::from_flat(4, 4, m), 1e-9, 2000);
        prop_assert!(is_doubly_stochastic(&x, 1e-6));
    }

    #[test]
    fn rational_field_axioms(an in -50i128..50, ad in 1i128..20, bn in -50i128..50, bd in 1i128..20) {
        let a = Rat::new(an, ad);
        let b = Rat::new(bn, bd);
        prop_assert_eq!(a + b, b + a);
        prop_assert_eq!(a * b, b * a);
        prop_assert_eq!(a + Rat::ZERO, a);
        prop_assert_eq!(a * Rat::ONE, a);
        prop_assert_eq!(a - a, Rat::ZERO);
        if !b.is_zero() {
            prop_assert_eq!((a / b) * b, a);
        }
        // Distributivity.
        let c = Rat::new(7, 3);
        prop_assert_eq!(c * (a + b), c * a + c * b);
    }

    #[test]
    fn lu_solution_satisfies_system(a in arb_matrix(4), b in proptest::collection::vec(-3.0f64..3.0, 4)) {
        if let Some(x) = x2v_linalg::solve::lu_solve(&a, &b) {
            let ax = a.matvec(&x);
            for (p, q) in ax.iter().zip(&b) {
                prop_assert!((p - q).abs() < 1e-6, "{} vs {}", p, q);
            }
        }
    }

    #[test]
    fn norms_triangle_inequality(a in arb_matrix(3), b in arb_matrix(3)) {
        use x2v_linalg::norms::{frobenius, operator_1, spectral};
        let sum = &a + &b;
        prop_assert!(frobenius(&sum) <= frobenius(&a) + frobenius(&b) + 1e-9);
        prop_assert!(operator_1(&sum) <= operator_1(&a) + operator_1(&b) + 1e-9);
        prop_assert!(spectral(&sum) <= spectral(&a) + spectral(&b) + 1e-7);
    }

    #[test]
    fn cut_norm_bounds(a in arb_matrix(4)) {
        use x2v_linalg::norms::{cut_norm_exact, cut_norm_local_search, entrywise_p};
        let cut = cut_norm_exact(&a);
        prop_assert!(cut <= entrywise_p(&a, 1.0) + 1e-9);
        prop_assert!(cut_norm_local_search(&a) <= cut + 1e-9);
    }

    #[test]
    fn chunked_dot_matches_naive(pair in arb_len_pair()) {
        use x2v_linalg::chunked::{dot_f64, LANES};
        let (a, b) = pair;
        let mut naive = 0.0f64;
        for (x, y) in a.iter().zip(&b) {
            naive += x * y;
        }
        let chunked = dot_f64(&a, &b);
        if a.len() < LANES {
            // Below one chunk the kernel is the sequential loop: bit-equal.
            prop_assert_eq!(chunked.to_bits(), naive.to_bits());
        } else {
            let scale = a.len() as f64 * 25.0; // |entries| < 5 → |products| < 25
            prop_assert!((chunked - naive).abs() <= 1e-12 * scale.max(1.0),
                "{} vs {}", chunked, naive);
        }
        // Determinism: same inputs, same bits, every call.
        prop_assert_eq!(chunked.to_bits(), dot_f64(&a, &b).to_bits());
    }

    #[test]
    fn chunked_axpy_bit_identical_to_naive(pair in arb_len_pair(), alpha in -3.0f64..3.0) {
        use x2v_linalg::chunked::axpy_f64;
        let (x, y0) = pair;
        let mut chunked = y0.clone();
        axpy_f64(alpha, &x, &mut chunked);
        let mut naive = y0;
        for (yi, xi) in naive.iter_mut().zip(&x) {
            *yi += alpha * xi;
        }
        for (c, n) in chunked.iter().zip(&naive) {
            prop_assert_eq!(c.to_bits(), n.to_bits());
        }
    }

    #[test]
    fn chunked_sum_matches_naive(pair in arb_len_pair()) {
        use x2v_linalg::chunked::sum_f64;
        let (a, _) = pair;
        let naive: f64 = a.iter().sum();
        let scale = a.len() as f64 * 5.0;
        prop_assert!((sum_f64(&a) - naive).abs() <= 1e-12 * scale.max(1.0));
    }
}

/// Strategy: two equal-length vectors whose lengths cluster around the
/// chunk-boundary edge cases `{0, 1, LANES−1, LANES, LANES+1}` plus
/// larger sizes spanning several chunks.
fn arb_len_pair() -> impl Strategy<Value = (Vec<f64>, Vec<f64>)> {
    use x2v_linalg::chunked::LANES;
    const MAX: usize = 200;
    (
        0usize..6,
        2 * LANES..MAX,
        proptest::collection::vec(-5.0f64..5.0, MAX),
        proptest::collection::vec(-5.0f64..5.0, MAX),
    )
        .prop_map(|(pick, large, mut a, mut b)| {
            let n = [0, 1, LANES - 1, LANES, LANES + 1, large][pick];
            a.truncate(n);
            b.truncate(n);
            (a, b)
        })
}
