//! Optimisation over the Birkhoff polytope of doubly stochastic matrices.
//!
//! Two tools from the paper:
//!
//! * **Sinkhorn projection** — rescales a positive matrix to doubly
//!   stochastic form; used to produce feasible starting points.
//! * **Frank-Wolfe minimisation** of `f(X) = ‖AX − XB‖²_F` over doubly
//!   stochastic `X` — the convex program whose zero set characterises
//!   *fractional isomorphism* (Theorem 3.2). The paper points out ([57])
//!   that Frank-Wolfe iterations on this objective mirror the refinement
//!   rounds of 1-WL; the linear-minimisation oracle is a min-cost assignment
//!   solved by [`crate::assignment::hungarian`], and the step size has a
//!   closed form because `f` is quadratic.

use crate::assignment::{hungarian, permutation_matrix};
use crate::norms::frobenius;
use crate::Matrix;

/// Sinkhorn–Knopp projection: alternately normalises rows and columns of a
/// strictly positive matrix until both sums are within `tol` of 1.
///
/// # Panics
/// If the matrix is not square or has a non-positive entry.
pub fn sinkhorn(m: &Matrix, tol: f64, max_iters: usize) -> Matrix {
    assert!(m.is_square(), "sinkhorn needs a square matrix");
    assert!(
        m.as_slice().iter().all(|&x| x > 0.0),
        "sinkhorn needs strictly positive entries"
    );
    let n = m.rows();
    let mut x = m.clone();
    for _ in 0..max_iters {
        for i in 0..n {
            let s: f64 = x.row(i).iter().sum();
            for v in x.row_mut(i) {
                *v /= s;
            }
        }
        let mut worst = 0.0f64;
        for j in 0..n {
            let s: f64 = (0..n).map(|i| x[(i, j)]).sum();
            for i in 0..n {
                x[(i, j)] /= s;
            }
            worst = worst.max((s - 1.0).abs());
        }
        // After column normalisation, check row deviation.
        let mut row_dev = 0.0f64;
        for i in 0..n {
            let s: f64 = x.row(i).iter().sum();
            row_dev = row_dev.max((s - 1.0).abs());
        }
        if worst.max(row_dev) < tol {
            break;
        }
    }
    x
}

/// Whether `x` is doubly stochastic within tolerance.
pub fn is_doubly_stochastic(x: &Matrix, tol: f64) -> bool {
    if !x.is_square() {
        return false;
    }
    let n = x.rows();
    if x.as_slice().iter().any(|&v| v < -tol) {
        return false;
    }
    for i in 0..n {
        if (x.row(i).iter().sum::<f64>() - 1.0).abs() > tol {
            return false;
        }
    }
    for j in 0..n {
        if ((0..n).map(|i| x[(i, j)]).sum::<f64>() - 1.0).abs() > tol {
            return false;
        }
    }
    true
}

/// The uniform doubly stochastic matrix (barycentre of the polytope).
pub fn barycentre(n: usize) -> Matrix {
    Matrix::filled(n, n, 1.0 / n as f64)
}

/// Result of the Frank-Wolfe minimisation.
pub struct FrankWolfeResult {
    /// The final iterate (doubly stochastic up to numerical error).
    pub x: Matrix,
    /// `‖A X − X B‖_F` at the final iterate.
    pub objective: f64,
    /// Iterations performed.
    pub iterations: usize,
}

/// Minimises `‖AX − XB‖²_F` over doubly stochastic `X` by *away-step*
/// Frank-Wolfe with exact line search. `A`, `B` must be square of equal
/// order.
///
/// The away steps keep an explicit convex decomposition of the iterate over
/// Birkhoff vertices (permutation matrices) and remove mass from the worst
/// active vertex when that descends faster — restoring linear convergence
/// where classic Frank-Wolfe zig-zags at `O(1/k)` near faces. The LMO is a
/// min-cost assignment ([`hungarian`]).
///
/// Returns an objective near zero iff the graphs with adjacency matrices
/// `A`, `B` are fractionally isomorphic (Theorem 3.2).
pub fn frank_wolfe_fractional_iso(
    a: &Matrix,
    b: &Matrix,
    max_iters: usize,
    tol: f64,
) -> FrankWolfeResult {
    assert!(
        a.is_square() && b.is_square(),
        "adjacency matrices must be square"
    );
    assert_eq!(a.rows(), b.rows(), "graphs must have equal order");
    let n = a.rows();
    // Active set: vertices (as assignments) with weights; start from the
    // barycentre's support being huge is impractical, so start at a single
    // vertex (the identity) — any feasible start works.
    let mut active: Vec<(Vec<usize>, f64)> = vec![((0..n).collect(), 1.0)];
    let mut x = permutation_matrix(&active[0].0);
    let residual = |x: &Matrix| &a.matmul(x) - &x.matmul(b);
    let mut iterations = 0;
    for it in 0..max_iters {
        iterations = it + 1;
        let r = residual(&x);
        let obj = frobenius(&r);
        if obj < tol {
            break;
        }
        // ∇f(X) = 2 (Aᵀ R − R Bᵀ) for f = ‖R‖², R = AX − XB.
        let grad = (&a.transpose().matmul(&r) - &r.matmul(&b.transpose())).scaled(2.0);
        // Frank-Wolfe vertex: minimise ⟨grad, S⟩.
        let (fw_assign, _) = hungarian(&grad);
        let s = permutation_matrix(&fw_assign);
        let fw_gap = grad.frobenius_dot(&(&x - &s));
        if fw_gap < tol * tol {
            break;
        }
        // Away vertex: the active vertex maximising ⟨grad, V⟩.
        let (away_idx, _) = active
            .iter()
            .enumerate()
            .map(|(i, (assign, _))| {
                let dot: f64 = assign
                    .iter()
                    .enumerate()
                    .map(|(row, &col)| grad[(row, col)])
                    .sum();
                (i, dot)
            })
            .max_by(|p, q| p.1.partial_cmp(&q.1).expect("finite gradient"))
            .expect("active set non-empty");
        let v = permutation_matrix(&active[away_idx].0);
        let away_gap = grad.frobenius_dot(&(&v - &x));
        let (d, gamma_max, is_away) = if fw_gap >= away_gap {
            (&s - &x, 1.0, false)
        } else {
            let alpha = active[away_idx].1;
            (&x - &v, alpha / (1.0 - alpha).max(1e-18), true)
        };
        // Exact line search for the quadratic along D.
        let rd = &a.matmul(&d) - &d.matmul(b);
        let denom = rd.frobenius_dot(&rd);
        let gamma = if denom < 1e-18 {
            gamma_max
        } else {
            (-r.frobenius_dot(&rd) / denom).clamp(0.0, gamma_max)
        };
        if gamma <= 1e-15 {
            break;
        }
        x = &x + &d.scaled(gamma);
        // Update the convex decomposition.
        if is_away {
            for (_, w) in active.iter_mut() {
                *w *= 1.0 + gamma;
            }
            active[away_idx].1 -= gamma;
        } else {
            for (_, w) in active.iter_mut() {
                *w *= 1.0 - gamma;
            }
            if let Some(entry) = active.iter_mut().find(|(assign, _)| *assign == fw_assign) {
                entry.1 += gamma;
            } else {
                active.push((fw_assign, gamma));
            }
        }
        active.retain(|&(_, w)| w > 1e-12);
    }
    let objective = frobenius(&residual(&x));
    FrankWolfeResult {
        x,
        objective,
        iterations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sinkhorn_produces_doubly_stochastic() {
        let m = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0], &[7.0, 8.0, 9.0]]);
        let x = sinkhorn(&m, 1e-10, 1000);
        assert!(is_doubly_stochastic(&x, 1e-8));
    }

    #[test]
    fn barycentre_is_doubly_stochastic() {
        assert!(is_doubly_stochastic(&barycentre(5), 1e-12));
        assert!(!is_doubly_stochastic(&Matrix::zeros(2, 2), 1e-12));
    }

    #[test]
    fn identical_graphs_reach_zero() {
        // C4 adjacency.
        let a = Matrix::from_rows(&[
            &[0.0, 1.0, 0.0, 1.0],
            &[1.0, 0.0, 1.0, 0.0],
            &[0.0, 1.0, 0.0, 1.0],
            &[1.0, 0.0, 1.0, 0.0],
        ]);
        let r = frank_wolfe_fractional_iso(&a, &a, 200, 1e-9);
        assert!(r.objective < 1e-8, "objective {}", r.objective);
    }

    #[test]
    fn c6_vs_2c3_fractionally_isomorphic() {
        // The paper's running example: 1-WL cannot distinguish C6 from two
        // triangles, so they are fractionally isomorphic and Frank-Wolfe
        // must reach (near) zero.
        let c6 = Matrix::from_rows(&[
            &[0.0, 1.0, 0.0, 0.0, 0.0, 1.0],
            &[1.0, 0.0, 1.0, 0.0, 0.0, 0.0],
            &[0.0, 1.0, 0.0, 1.0, 0.0, 0.0],
            &[0.0, 0.0, 1.0, 0.0, 1.0, 0.0],
            &[0.0, 0.0, 0.0, 1.0, 0.0, 1.0],
            &[1.0, 0.0, 0.0, 0.0, 1.0, 0.0],
        ]);
        let tt = Matrix::from_rows(&[
            &[0.0, 1.0, 1.0, 0.0, 0.0, 0.0],
            &[1.0, 0.0, 1.0, 0.0, 0.0, 0.0],
            &[1.0, 1.0, 0.0, 0.0, 0.0, 0.0],
            &[0.0, 0.0, 0.0, 0.0, 1.0, 1.0],
            &[0.0, 0.0, 0.0, 1.0, 0.0, 1.0],
            &[0.0, 0.0, 0.0, 1.0, 1.0, 0.0],
        ]);
        // The barycentre is already a fractional isomorphism for regular
        // graphs of equal degree; Frank-Wolfe should confirm instantly.
        let r = frank_wolfe_fractional_iso(&c6, &tt, 200, 1e-9);
        assert!(r.objective < 1e-8, "objective {}", r.objective);
        assert!(is_doubly_stochastic(&r.x, 1e-6));
    }

    #[test]
    fn different_degree_graphs_stay_positive() {
        // P3 vs K3: not fractionally isomorphic (degree sequences differ).
        let p3 = Matrix::from_rows(&[&[0.0, 1.0, 0.0], &[1.0, 0.0, 1.0], &[0.0, 1.0, 0.0]]);
        let k3 = Matrix::from_rows(&[&[0.0, 1.0, 1.0], &[1.0, 0.0, 1.0], &[1.0, 1.0, 0.0]]);
        let r = frank_wolfeen(&p3, &k3);
        assert!(r.objective > 0.1, "objective {}", r.objective);
    }

    fn frank_wolfeen(a: &Matrix, b: &Matrix) -> FrankWolfeResult {
        frank_wolfe_fractional_iso(a, b, 500, 1e-10)
    }
}
