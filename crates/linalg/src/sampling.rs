//! Walker alias tables for O(1) sampling from discrete distributions.
//!
//! node2vec's biased second-order random walks and word2vec's unigram^{3/4}
//! negative sampling both draw millions of samples from fixed categorical
//! distributions; the alias method makes each draw two random numbers and
//! one comparison.

use rand::Rng;

/// A Walker alias table over `0..n`.
#[derive(Clone, Debug)]
pub struct AliasTable {
    prob: Vec<f64>,
    alias: Vec<usize>,
}

impl AliasTable {
    /// Builds a table from non-negative weights (not necessarily
    /// normalised).
    ///
    /// # Panics
    /// If `weights` is empty, contains a negative value, or sums to zero.
    pub fn new(weights: &[f64]) -> Self {
        assert!(!weights.is_empty(), "empty distribution");
        assert!(
            weights.iter().all(|&w| w >= 0.0),
            "negative weight in distribution"
        );
        let total: f64 = weights.iter().sum();
        assert!(total > 0.0, "distribution sums to zero");
        let n = weights.len();
        let mut prob: Vec<f64> = weights.iter().map(|&w| w * n as f64 / total).collect();
        let mut alias = vec![0usize; n];
        let mut small: Vec<usize> = Vec::with_capacity(n);
        let mut large: Vec<usize> = Vec::with_capacity(n);
        for (i, &p) in prob.iter().enumerate() {
            if p < 1.0 {
                small.push(i);
            } else {
                large.push(i);
            }
        }
        while let (Some(&s), Some(&l)) = (small.last(), large.last()) {
            small.pop();
            large.pop();
            alias[s] = l;
            prob[l] = (prob[l] + prob[s]) - 1.0;
            if prob[l] < 1.0 {
                small.push(l);
            } else {
                large.push(l);
            }
        }
        // Leftovers are numerically 1.
        for &i in small.iter().chain(large.iter()) {
            prob[i] = 1.0;
        }
        AliasTable { prob, alias }
    }

    /// Number of outcomes.
    pub fn len(&self) -> usize {
        self.prob.len()
    }

    /// Whether the table is empty (never true for a constructed table).
    pub fn is_empty(&self) -> bool {
        self.prob.is_empty()
    }

    /// Draws one sample.
    #[inline]
    pub fn sample<R: Rng>(&self, rng: &mut R) -> usize {
        let i = rng.random_range(0..self.prob.len());
        if rng.random::<f64>() < self.prob[i] {
            i
        } else {
            self.alias[i]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn empirical_frequencies_match() {
        let weights = [1.0, 2.0, 3.0, 4.0];
        let table = AliasTable::new(&weights);
        let mut rng = StdRng::seed_from_u64(42);
        let mut counts = [0usize; 4];
        let draws = 200_000;
        for _ in 0..draws {
            counts[table.sample(&mut rng)] += 1;
        }
        let total: f64 = weights.iter().sum();
        for (i, &w) in weights.iter().enumerate() {
            let expected = w / total;
            let observed = counts[i] as f64 / draws as f64;
            assert!(
                (observed - expected).abs() < 0.01,
                "outcome {i}: observed {observed}, expected {expected}"
            );
        }
    }

    #[test]
    fn degenerate_distribution() {
        let table = AliasTable::new(&[0.0, 1.0, 0.0]);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            assert_eq!(table.sample(&mut rng), 1);
        }
    }

    #[test]
    fn single_outcome() {
        let table = AliasTable::new(&[5.0]);
        let mut rng = StdRng::seed_from_u64(2);
        assert_eq!(table.sample(&mut rng), 0);
        assert_eq!(table.len(), 1);
    }

    #[test]
    #[should_panic(expected = "sums to zero")]
    fn zero_distribution_panics() {
        let _ = AliasTable::new(&[0.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "negative weight")]
    fn negative_weight_panics() {
        let _ = AliasTable::new(&[1.0, -1.0]);
    }
}
