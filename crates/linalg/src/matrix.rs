//! Dense row-major `f64` matrices.

use std::fmt;
use std::ops::{Add, Index, IndexMut, Mul, Sub};

/// A dense matrix of `f64`, stored row-major.
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Zero matrix of shape `rows × cols`.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Matrix filled with `value`.
    pub fn filled(rows: usize, cols: usize, value: f64) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// The `n × n` identity.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Wraps a row-major buffer.
    ///
    /// # Panics
    /// If `data.len() != rows * cols`.
    pub fn from_flat(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols, "buffer length mismatch");
        Matrix { rows, cols, data }
    }

    /// Builds from nested rows (handy in tests).
    ///
    /// # Panics
    /// If the rows are ragged.
    pub fn from_rows(rows: &[&[f64]]) -> Self {
        let r = rows.len();
        let c = rows.first().map_or(0, |row| row.len());
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            assert_eq!(row.len(), c, "ragged rows");
            data.extend_from_slice(row);
        }
        Matrix {
            rows: r,
            cols: c,
            data,
        }
    }

    /// Diagonal matrix from entries.
    pub fn diag(entries: &[f64]) -> Self {
        let n = entries.len();
        let mut m = Matrix::zeros(n, n);
        for (i, &e) in entries.iter().enumerate() {
            m[(i, i)] = e;
        }
        m
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Whether the matrix is square.
    #[inline]
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Borrow of row `i`.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutable borrow of row `i`.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Column `j` collected into a vector.
    pub fn col(&self, j: usize) -> Vec<f64> {
        (0..self.rows).map(|i| self[(i, j)]).collect()
    }

    /// The raw row-major buffer.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable raw buffer.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// The transpose.
    pub fn transpose(&self) -> Matrix {
        let mut t = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                t[(j, i)] = self[(i, j)];
            }
        }
        t
    }

    /// Matrix product `self * rhs`.
    ///
    /// # Panics
    /// On shape mismatch.
    pub fn matmul(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.cols, rhs.rows, "shape mismatch in matmul");
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        // i-k-j loop order: unit-stride access to rhs and out rows.
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(i, k)];
                if a == 0.0 {
                    continue;
                }
                let rrow = rhs.row(k);
                let orow = out.row_mut(i);
                for (o, r) in orow.iter_mut().zip(rrow) {
                    *o += a * r;
                }
            }
        }
        out
    }

    /// Matrix–vector product.
    ///
    /// # Panics
    /// On shape mismatch.
    pub fn matvec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(self.cols, x.len(), "shape mismatch in matvec");
        (0..self.rows)
            .map(|i| self.row(i).iter().zip(x).map(|(a, b)| a * b).sum())
            .collect()
    }

    /// Scales every entry in place.
    pub fn scale_in_place(&mut self, s: f64) {
        for v in &mut self.data {
            *v *= s;
        }
    }

    /// Returns `self * s`.
    pub fn scaled(&self, s: f64) -> Matrix {
        let mut m = self.clone();
        m.scale_in_place(s);
        m
    }

    /// Sum of diagonal entries.
    ///
    /// # Panics
    /// If not square.
    pub fn trace(&self) -> f64 {
        assert!(self.is_square(), "trace of non-square matrix");
        (0..self.rows).map(|i| self[(i, i)]).sum()
    }

    /// `self^k` by repeated squaring (`k = 0` gives the identity).
    ///
    /// # Panics
    /// If not square.
    pub fn pow(&self, mut k: u32) -> Matrix {
        assert!(self.is_square(), "power of non-square matrix");
        let mut result = Matrix::identity(self.rows);
        let mut base = self.clone();
        while k > 0 {
            if k & 1 == 1 {
                result = result.matmul(&base);
            }
            k >>= 1;
            if k > 0 {
                base = base.matmul(&base);
            }
        }
        result
    }

    /// Frobenius inner product `⟨self, rhs⟩ = Σ_ij self_ij rhs_ij`.
    ///
    /// # Panics
    /// On shape mismatch.
    pub fn frobenius_dot(&self, rhs: &Matrix) -> f64 {
        assert_eq!(
            (self.rows, self.cols),
            (rhs.rows, rhs.cols),
            "shape mismatch"
        );
        self.data.iter().zip(&rhs.data).map(|(a, b)| a * b).sum()
    }

    /// Maximum absolute entry difference to `rhs`.
    pub fn max_abs_diff(&self, rhs: &Matrix) -> f64 {
        assert_eq!(
            (self.rows, self.cols),
            (rhs.rows, rhs.cols),
            "shape mismatch"
        );
        self.data
            .iter()
            .zip(&rhs.data)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max)
    }

    /// Whether all entries are within `tol` of `rhs`.
    pub fn approx_eq(&self, rhs: &Matrix, tol: f64) -> bool {
        (self.rows, self.cols) == (rhs.rows, rhs.cols) && self.max_abs_diff(rhs) <= tol
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;

    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        &mut self.data[i * self.cols + j]
    }
}

impl Add<&Matrix> for &Matrix {
    type Output = Matrix;

    fn add(self, rhs: &Matrix) -> Matrix {
        assert_eq!(
            (self.rows, self.cols),
            (rhs.rows, rhs.cols),
            "shape mismatch"
        );
        let data = self
            .data
            .iter()
            .zip(&rhs.data)
            .map(|(a, b)| a + b)
            .collect();
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }
}

impl Sub<&Matrix> for &Matrix {
    type Output = Matrix;

    fn sub(self, rhs: &Matrix) -> Matrix {
        assert_eq!(
            (self.rows, self.cols),
            (rhs.rows, rhs.cols),
            "shape mismatch"
        );
        let data = self
            .data
            .iter()
            .zip(&rhs.data)
            .map(|(a, b)| a - b)
            .collect();
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }
}

impl Mul<&Matrix> for &Matrix {
    type Output = Matrix;

    fn mul(self, rhs: &Matrix) -> Matrix {
        self.matmul(rhs)
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        for i in 0..self.rows {
            write!(f, "  [")?;
            for j in 0..self.cols {
                if j > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{:8.4}", self[(i, j)])?;
            }
            writeln!(f, "]")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_indexing() {
        let m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert_eq!(m[(0, 1)], 2.0);
        assert_eq!(m.row(1), &[3.0, 4.0]);
        assert_eq!(m.col(0), vec![1.0, 3.0]);
        assert_eq!(Matrix::identity(3).trace(), 3.0);
        assert_eq!(Matrix::diag(&[1.0, 2.0])[(1, 1)], 2.0);
    }

    #[test]
    fn matmul_known() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c, Matrix::from_rows(&[&[19.0, 22.0], &[43.0, 50.0]]));
        assert_eq!(a.matvec(&[1.0, 1.0]), vec![3.0, 7.0]);
    }

    #[test]
    fn transpose_and_ops() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0]]);
        assert_eq!(a.transpose().rows(), 3);
        let s = &a + &a;
        assert_eq!(s[(0, 2)], 6.0);
        let d = &s - &a;
        assert_eq!(d, a);
        assert_eq!(a.scaled(2.0)[(0, 0)], 2.0);
    }

    #[test]
    fn power_matches_repeated_multiplication() {
        let a = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 1.0]]); // Fibonacci
        let a5 = a.pow(5);
        // A^5 = [[3,5],[5,8]]
        assert_eq!(a5, Matrix::from_rows(&[&[3.0, 5.0], &[5.0, 8.0]]));
        assert_eq!(a.pow(0), Matrix::identity(2));
    }

    #[test]
    fn frobenius_dot_and_diff() {
        let a = Matrix::identity(2);
        let b = Matrix::filled(2, 2, 1.0);
        assert_eq!(a.frobenius_dot(&b), 2.0);
        assert_eq!(a.max_abs_diff(&b), 1.0);
        assert!(a.approx_eq(&a, 0.0));
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn shape_mismatch_panics() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }
}
