//! Small vector helpers: dot products, norms, cosine similarity.

/// Dot product.
///
/// # Panics
/// On length mismatch.
#[inline]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "length mismatch");
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Euclidean (`ℓ₂`) norm.
#[inline]
pub fn norm2(a: &[f64]) -> f64 {
    dot(a, a).sqrt()
}

/// `ℓ_p` norm for `p ≥ 1`.
pub fn norm_p(a: &[f64], p: f64) -> f64 {
    assert!(p >= 1.0, "p must be >= 1");
    a.iter().map(|x| x.abs().powf(p)).sum::<f64>().powf(1.0 / p)
}

/// Euclidean distance.
pub fn euclidean(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "length mismatch");
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y) * (x - y))
        .sum::<f64>()
        .sqrt()
}

/// Cosine similarity `⟨a,b⟩ / (‖a‖‖b‖)`; `0.0` if either vector is zero.
pub fn cosine(a: &[f64], b: &[f64]) -> f64 {
    let na = norm2(a);
    let nb = norm2(b);
    if na == 0.0 || nb == 0.0 {
        0.0
    } else {
        dot(a, b) / (na * nb)
    }
}

/// `y += alpha * x`.
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "length mismatch");
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

/// Normalises to unit `ℓ₂` norm in place (no-op on the zero vector).
pub fn normalize(a: &mut [f64]) {
    let n = norm2(a);
    if n > 0.0 {
        for x in a {
            *x /= n;
        }
    }
}

/// Index of the maximum entry (first on ties); `None` on empty input.
pub fn argmax(a: &[f64]) -> Option<usize> {
    let mut best: Option<(usize, f64)> = None;
    for (i, &v) in a.iter().enumerate() {
        if best.is_none_or(|(_, b)| v > b) {
            best = Some((i, v));
        }
    }
    best.map(|(i, _)| i)
}

/// Numerically-stable softmax.
pub fn softmax(a: &[f64]) -> Vec<f64> {
    let m = a.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let exps: Vec<f64> = a.iter().map(|&x| (x - m).exp()).collect();
    let s: f64 = exps.iter().sum();
    exps.into_iter().map(|e| e / s).collect()
}

/// Logistic sigmoid.
#[inline]
pub fn sigmoid(x: f64) -> f64 {
    1.0 / (1.0 + (-x).exp())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_and_norms() {
        assert_eq!(dot(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
        assert_eq!(norm2(&[3.0, 4.0]), 5.0);
        assert!((norm_p(&[1.0, -1.0, 1.0], 1.0) - 3.0).abs() < 1e-12);
        assert_eq!(euclidean(&[0.0, 0.0], &[3.0, 4.0]), 5.0);
    }

    #[test]
    fn cosine_cases() {
        assert!((cosine(&[1.0, 0.0], &[2.0, 0.0]) - 1.0).abs() < 1e-12);
        assert!(cosine(&[1.0, 0.0], &[0.0, 1.0]).abs() < 1e-12);
        assert_eq!(cosine(&[0.0, 0.0], &[1.0, 1.0]), 0.0);
        assert!((cosine(&[1.0, 0.0], &[-1.0, 0.0]) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn axpy_and_normalize() {
        let mut y = vec![1.0, 1.0];
        axpy(2.0, &[1.0, -1.0], &mut y);
        assert_eq!(y, vec![3.0, -1.0]);
        let mut v = vec![3.0, 4.0];
        normalize(&mut v);
        assert!((norm2(&v) - 1.0).abs() < 1e-12);
        let mut z = vec![0.0, 0.0];
        normalize(&mut z);
        assert_eq!(z, vec![0.0, 0.0]);
    }

    #[test]
    fn softmax_and_argmax() {
        let s = softmax(&[1.0, 2.0, 3.0]);
        assert!((s.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(s[2] > s[1] && s[1] > s[0]);
        assert_eq!(argmax(&[0.5, 2.0, 1.0]), Some(1));
        assert_eq!(argmax(&[]), None);
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-12);
    }
}
