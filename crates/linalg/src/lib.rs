//! # x2v-linalg — dense numerical and exact-rational linear algebra
//!
//! Self-contained linear-algebra substrate for the `x2vec` workspace. The
//! paper's theory leans on spectra (co-spectrality, Theorem 4.3), singular
//! value decompositions (the matrix-factorisation node embeddings of
//! Section 2.1), doubly stochastic matrices and convex minimisation over the
//! Birkhoff polytope (fractional isomorphism, Theorem 3.2; relaxed graph
//! distances, eq. 5.5), matrix norms (Section 5.1), and exact rational
//! solvability of linear systems (Theorems 3.2 and 4.6). All of it is
//! implemented here with no external dependencies:
//!
//! * [`Matrix`] — dense row-major `f64` matrices with the usual operations;
//! * [`eigen`] — cyclic Jacobi symmetric eigendecomposition;
//! * [`svd`] — SVD built on the symmetric eigensolver;
//! * [`norms`] — entrywise `ℓ_p`, Frobenius, operator `p ∈ {1, 2, ∞}`, and
//!   cut norms (exact and local-search approximate);
//! * [`solve`] — LU solves, Householder QR least squares, rank;
//! * [`rational`] — exact `i128` rationals, Gaussian elimination,
//!   determinants, and feasibility of linear systems over ℚ;
//! * [`assignment`] — Hungarian algorithm (the linear-minimisation oracle of
//!   Frank-Wolfe over the Birkhoff polytope);
//! * [`birkhoff`] — Sinkhorn projection and Frank-Wolfe minimisation of
//!   `‖AX − XB‖_F` over doubly stochastic matrices (the [57] connection);
//! * [`sampling`] — Walker alias tables for O(1) discrete sampling (used by
//!   node2vec walks and SGNS negative sampling).
//!
//! ```
//! use x2v_linalg::{Matrix, Rat};
//!
//! // Exact rationals carry the theorem checks:
//! assert_eq!(Rat::new(1, 3) + Rat::new(1, 6), Rat::new(1, 2));
//!
//! // Spectra drive co-spectrality (Theorem 4.3):
//! let path3 = Matrix::from_rows(&[&[0.0, 1.0, 0.0], &[1.0, 0.0, 1.0], &[0.0, 1.0, 0.0]]);
//! let eigenvalues = x2v_linalg::eigen::sym_eigenvalues(&path3);
//! assert!((eigenvalues[0] - 2f64.sqrt()).abs() < 1e-9);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
#![allow(clippy::needless_range_loop)] // indexed loops mirror the maths in dense kernels

pub mod assignment;
pub mod birkhoff;
pub mod chunked;
pub mod eigen;
mod matrix;
pub mod norms;
pub mod rational;
pub mod sampling;
pub mod solve;
pub mod svd;
pub mod vector;

pub use matrix::Matrix;
pub use rational::Rat;
