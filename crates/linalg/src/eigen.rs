//! Symmetric eigendecomposition via the cyclic Jacobi method.
//!
//! Spectra drive Theorem 4.3 (cycle homomorphism counts ⟺ co-spectrality),
//! the spectral node embeddings of Section 2.1, Laplacian eigenmaps, and
//! classical MDS. The Jacobi method is O(n³) per sweep with excellent
//! accuracy on the small dense matrices this workspace handles.

use crate::Matrix;

/// Result of a symmetric eigendecomposition `A = V Λ Vᵀ`.
pub struct SymEigen {
    /// Eigenvalues, sorted descending.
    pub values: Vec<f64>,
    /// Orthonormal eigenvectors; column `j` of the matrix corresponds to
    /// `values[j]`.
    pub vectors: Matrix,
}

/// Eigendecomposition of a symmetric matrix (symmetry is *assumed*; only the
/// lower triangle influence mirrors the upper in exact arithmetic).
///
/// # Panics
/// If `a` is not square.
pub fn sym_eigen(a: &Matrix) -> SymEigen {
    assert!(a.is_square(), "eigendecomposition of non-square matrix");
    let n = a.rows();
    let mut m = a.clone();
    let mut v = Matrix::identity(n);
    let max_sweeps = 100;
    for _ in 0..max_sweeps {
        let mut off = 0.0;
        for i in 0..n {
            for j in (i + 1)..n {
                off += m[(i, j)] * m[(i, j)];
            }
        }
        if off.sqrt() < 1e-12 {
            break;
        }
        for p in 0..n {
            for q in (p + 1)..n {
                let apq = m[(p, q)];
                if apq.abs() < 1e-15 {
                    continue;
                }
                let app = m[(p, p)];
                let aqq = m[(q, q)];
                let theta = (aqq - app) / (2.0 * apq);
                // Numerically stable tangent of the rotation angle.
                let t = theta.signum() / (theta.abs() + (theta * theta + 1.0).sqrt());
                let c = 1.0 / (t * t + 1.0).sqrt();
                let s = t * c;
                // Apply the rotation to rows/columns p and q.
                for k in 0..n {
                    let mkp = m[(k, p)];
                    let mkq = m[(k, q)];
                    m[(k, p)] = c * mkp - s * mkq;
                    m[(k, q)] = s * mkp + c * mkq;
                }
                for k in 0..n {
                    let mpk = m[(p, k)];
                    let mqk = m[(q, k)];
                    m[(p, k)] = c * mpk - s * mqk;
                    m[(q, k)] = s * mpk + c * mqk;
                }
                for k in 0..n {
                    let vkp = v[(k, p)];
                    let vkq = v[(k, q)];
                    v[(k, p)] = c * vkp - s * vkq;
                    v[(k, q)] = s * vkp + c * vkq;
                }
            }
        }
    }
    // Extract and sort by descending eigenvalue.
    let mut order: Vec<usize> = (0..n).collect();
    let diag: Vec<f64> = (0..n).map(|i| m[(i, i)]).collect();
    order.sort_by(|&i, &j| diag[j].partial_cmp(&diag[i]).expect("finite eigenvalues"));
    let values: Vec<f64> = order.iter().map(|&i| diag[i]).collect();
    let mut vectors = Matrix::zeros(n, n);
    for (new_j, &old_j) in order.iter().enumerate() {
        for i in 0..n {
            vectors[(i, new_j)] = v[(i, old_j)];
        }
    }
    SymEigen { values, vectors }
}

/// Eigenvalues only, sorted descending.
pub fn sym_eigenvalues(a: &Matrix) -> Vec<f64> {
    sym_eigen(a).values
}

/// Whether two symmetric matrices are co-spectral within tolerance
/// (same sorted eigenvalues — Theorem 4.3's right-hand side).
pub fn cospectral(a: &Matrix, b: &Matrix, tol: f64) -> bool {
    if a.rows() != b.rows() {
        return false;
    }
    let ea = sym_eigenvalues(a);
    let eb = sym_eigenvalues(b);
    ea.iter().zip(&eb).all(|(x, y)| (x - y).abs() <= tol)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn diagonal_matrix_eigen() {
        let e = sym_eigen(&Matrix::diag(&[3.0, 1.0, 2.0]));
        assert!((e.values[0] - 3.0).abs() < 1e-10);
        assert!((e.values[1] - 2.0).abs() < 1e-10);
        assert!((e.values[2] - 1.0).abs() < 1e-10);
    }

    #[test]
    fn known_2x2() {
        // [[2,1],[1,2]] has eigenvalues 3, 1.
        let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 2.0]]);
        let e = sym_eigen(&a);
        assert!((e.values[0] - 3.0).abs() < 1e-10);
        assert!((e.values[1] - 1.0).abs() < 1e-10);
    }

    #[test]
    fn reconstruction_and_orthogonality() {
        let a = Matrix::from_rows(&[&[4.0, 1.0, -2.0], &[1.0, 2.0, 0.0], &[-2.0, 0.0, 3.0]]);
        let e = sym_eigen(&a);
        let lam = Matrix::diag(&e.values);
        let recon = e.vectors.matmul(&lam).matmul(&e.vectors.transpose());
        assert!(recon.approx_eq(&a, 1e-9));
        let vtv = e.vectors.transpose().matmul(&e.vectors);
        assert!(vtv.approx_eq(&Matrix::identity(3), 1e-9));
    }

    #[test]
    fn path_graph_spectrum() {
        // P3 adjacency: eigenvalues ±√2, 0.
        let a = Matrix::from_rows(&[&[0.0, 1.0, 0.0], &[1.0, 0.0, 1.0], &[0.0, 1.0, 0.0]]);
        let v = sym_eigenvalues(&a);
        assert!((v[0] - 2f64.sqrt()).abs() < 1e-10);
        assert!(v[1].abs() < 1e-10);
        assert!((v[2] + 2f64.sqrt()).abs() < 1e-10);
    }

    #[test]
    fn cospectral_star_vs_c4_plus_isolated() {
        // The classic K(1,4) vs C4 ∪ K1 pair (paper's Figure 6 shape):
        // both have spectrum {±2, 0, 0, 0}.
        let star = Matrix::from_rows(&[
            &[0.0, 1.0, 1.0, 1.0, 1.0],
            &[1.0, 0.0, 0.0, 0.0, 0.0],
            &[1.0, 0.0, 0.0, 0.0, 0.0],
            &[1.0, 0.0, 0.0, 0.0, 0.0],
            &[1.0, 0.0, 0.0, 0.0, 0.0],
        ]);
        let c4k1 = Matrix::from_rows(&[
            &[0.0, 1.0, 0.0, 1.0, 0.0],
            &[1.0, 0.0, 1.0, 0.0, 0.0],
            &[0.0, 1.0, 0.0, 1.0, 0.0],
            &[1.0, 0.0, 1.0, 0.0, 0.0],
            &[0.0, 0.0, 0.0, 0.0, 0.0],
        ]);
        assert!(cospectral(&star, &c4k1, 1e-9));
        let p2 = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]);
        assert!(!cospectral(&star, &p2, 1e-9));
    }
}
