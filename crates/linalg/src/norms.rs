//! Matrix norms (Section 5.1): entrywise `ℓ_p`, Frobenius, operator norms
//! `‖·‖_⟨p⟩` for `p ∈ {1, 2, ∞}`, and the cut norm `‖·‖_□` (exact for small
//! matrices, local-search approximation in general).
//!
//! All of these are invariant under row/column permutations (property (5.1)
//! in the paper), which the tests check — the graph distance measures of
//! `x2v-similarity` depend on it.

use crate::eigen::sym_eigenvalues;
use crate::Matrix;

/// Entrywise `ℓ_p` norm `‖M‖_p = (Σ |M_ij|^p)^{1/p}` (so `p = 2` is
/// Frobenius, `p = 1` the entry sum).
pub fn entrywise_p(m: &Matrix, p: f64) -> f64 {
    assert!(p >= 1.0, "p must be >= 1");
    m.as_slice()
        .iter()
        .map(|x| x.abs().powf(p))
        .sum::<f64>()
        .powf(1.0 / p)
}

/// Frobenius norm `‖M‖_F`.
pub fn frobenius(m: &Matrix) -> f64 {
    m.as_slice().iter().map(|x| x * x).sum::<f64>().sqrt()
}

/// Operator 1-norm `‖M‖_⟨1⟩ = max_j Σ_i |M_ij|` (max column sum).
pub fn operator_1(m: &Matrix) -> f64 {
    (0..m.cols())
        .map(|j| (0..m.rows()).map(|i| m[(i, j)].abs()).sum::<f64>())
        .fold(0.0, f64::max)
}

/// Operator ∞-norm `max_i Σ_j |M_ij|` (max row sum).
pub fn operator_inf(m: &Matrix) -> f64 {
    (0..m.rows())
        .map(|i| m.row(i).iter().map(|x| x.abs()).sum::<f64>())
        .fold(0.0, f64::max)
}

/// Spectral norm `‖M‖_⟨2⟩` = largest singular value (via the top eigenvalue
/// of `MᵀM`).
pub fn spectral(m: &Matrix) -> f64 {
    let mtm = m.transpose().matmul(m);
    sym_eigenvalues(&mtm)
        .first()
        .copied()
        .unwrap_or(0.0)
        .max(0.0)
        .sqrt()
}

/// Exact cut norm `‖M‖_□ = max_{S,T} |Σ_{i∈S, j∈T} M_ij|` by enumerating all
/// row subsets (the optimal `T` for fixed `S` is read off greedily).
///
/// # Panics
/// If the matrix has more than 24 rows (2^rows subsets are enumerated).
pub fn cut_norm_exact(m: &Matrix) -> f64 {
    let r = m.rows();
    assert!(r <= 24, "exact cut norm limited to 24 rows");
    let mut best = 0.0f64;
    for mask in 0u64..(1u64 << r) {
        // Column sums over the selected rows.
        let mut colsum = vec![0.0f64; m.cols()];
        for i in 0..r {
            if mask >> i & 1 == 1 {
                for (c, &v) in colsum.iter_mut().zip(m.row(i)) {
                    *c += v;
                }
            }
        }
        // For fixed S, |Σ_{T}| is maximised by taking all positive columns
        // (or all negative ones).
        let pos: f64 = colsum.iter().filter(|&&c| c > 0.0).sum();
        let neg: f64 = colsum.iter().filter(|&&c| c < 0.0).sum();
        best = best.max(pos).max(-neg);
    }
    best
}

/// Local-search lower bound on the cut norm: alternate optimising `S` for
/// fixed `T` and `T` for fixed `S` from several deterministic starts.
/// Always `≤ ‖M‖_□`; typically within the Alon–Naor factor in practice.
pub fn cut_norm_local_search(m: &Matrix) -> f64 {
    let (r, c) = (m.rows(), m.cols());
    let mut best = 0.0f64;
    // Deterministic starts: each single row, plus all rows.
    let mut starts: Vec<Vec<bool>> = (0..r.min(16))
        .map(|i| (0..r).map(|x| x == i).collect())
        .collect();
    starts.push(vec![true; r]);
    for mut s in starts {
        let mut t = vec![true; c];
        for sign in [1.0f64, -1.0] {
            loop {
                // Optimise T for fixed S.
                let mut colsum = vec![0.0f64; c];
                for i in 0..r {
                    if s[i] {
                        for (cs, &v) in colsum.iter_mut().zip(m.row(i)) {
                            *cs += v;
                        }
                    }
                }
                for j in 0..c {
                    t[j] = sign * colsum[j] > 0.0;
                }
                // Optimise S for fixed T.
                let mut improved = false;
                for i in 0..r {
                    let rowsum: f64 = m
                        .row(i)
                        .iter()
                        .zip(&t)
                        .filter(|&(_, &tj)| tj)
                        .map(|(&v, _)| v)
                        .sum();
                    let want = sign * rowsum > 0.0;
                    if s[i] != want {
                        s[i] = want;
                        improved = true;
                    }
                }
                if !improved {
                    break;
                }
            }
            let val: f64 = (0..r)
                .filter(|&i| s[i])
                .map(|i| {
                    m.row(i)
                        .iter()
                        .zip(&t)
                        .filter(|&(_, &tj)| tj)
                        .map(|(&v, _)| v)
                        .sum::<f64>()
                })
                .sum();
            best = best.max(val.abs());
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    fn example() -> Matrix {
        Matrix::from_rows(&[&[1.0, -2.0], &[3.0, 4.0]])
    }

    #[test]
    fn entrywise_norms() {
        let m = example();
        assert!((entrywise_p(&m, 1.0) - 10.0).abs() < 1e-12);
        assert!((frobenius(&m) - 30f64.sqrt()).abs() < 1e-12);
        assert!((entrywise_p(&m, 2.0) - frobenius(&m)).abs() < 1e-12);
    }

    #[test]
    fn operator_norms_known() {
        let m = example();
        assert_eq!(operator_1(&m), 6.0); // columns sums 4, 6
        assert_eq!(operator_inf(&m), 7.0); // row sums 3, 7
                                           // Spectral norm of diag(-5, 3) is 5.
        assert!((spectral(&Matrix::diag(&[-5.0, 3.0])) - 5.0).abs() < 1e-9);
    }

    #[test]
    fn spectral_bounded_by_frobenius() {
        let m = example();
        assert!(spectral(&m) <= frobenius(&m) + 1e-9);
    }

    #[test]
    fn cut_norm_all_positive_is_total_sum() {
        let m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert_eq!(cut_norm_exact(&m), 10.0);
    }

    #[test]
    fn cut_norm_mixed_signs() {
        let m = Matrix::from_rows(&[&[1.0, -1.0], &[-1.0, 1.0]]);
        // Best: S={0}, T={0} (or symmetric choices) → 1... but S={0,1},T={0,1} sums to 0;
        // S={0}, T={0} gives 1; the exact optimum is 1.
        assert_eq!(cut_norm_exact(&m), 1.0);
        assert!(cut_norm_local_search(&m) <= 1.0 + 1e-12);
        assert!(cut_norm_local_search(&m) >= 1.0 - 1e-12);
    }

    #[test]
    fn local_search_is_lower_bound() {
        let m = Matrix::from_rows(&[
            &[0.3, -1.2, 0.7, 2.0],
            &[-0.5, 0.9, -1.1, 0.2],
            &[1.5, -0.4, 0.0, -2.2],
        ]);
        let exact = cut_norm_exact(&m);
        let approx = cut_norm_local_search(&m);
        assert!(approx <= exact + 1e-9);
        assert!(
            approx >= exact / 2.0 - 1e-9,
            "should be a decent bound here"
        );
    }

    #[test]
    fn permutation_invariance() {
        // ‖M‖ = ‖MP‖ = ‖QM‖ (property 5.1) for all norms here.
        let m = Matrix::from_rows(&[&[1.0, -2.0, 0.5], &[3.0, 4.0, -1.0], &[0.0, 2.0, 2.5]]);
        // Swap rows 0,2 and columns 0,1.
        let mut p = m.clone();
        for j in 0..3 {
            let t = p[(0, j)];
            p[(0, j)] = p[(2, j)];
            p[(2, j)] = t;
        }
        for i in 0..3 {
            let t = p[(i, 0)];
            p[(i, 0)] = p[(i, 1)];
            p[(i, 1)] = t;
        }
        type NamedNorm = (fn(&Matrix) -> f64, &'static str);
        let norms: [NamedNorm; 5] = [
            (frobenius, "frobenius"),
            (operator_1, "op1"),
            (operator_inf, "opinf"),
            (spectral, "spectral"),
            (cut_norm_exact, "cut"),
        ];
        for (f, g) in norms {
            assert!(
                (f(&m) - f(&p)).abs() < 1e-9,
                "{g} not permutation invariant"
            );
        }
    }
}
