//! Floating-point linear solvers: LU with partial pivoting, Householder QR
//! least squares, numerical rank, and feasibility checks for the linear
//! systems (3.2)–(3.3) of the paper.

use crate::Matrix;

/// Solves `A x = b` by LU with partial pivoting. Returns `None` if `A` is
/// numerically singular.
///
/// # Panics
/// On shape mismatch.
pub fn lu_solve(a: &Matrix, b: &[f64]) -> Option<Vec<f64>> {
    assert!(a.is_square(), "lu_solve needs a square matrix");
    assert_eq!(a.rows(), b.len(), "rhs length mismatch");
    let n = a.rows();
    let mut m = a.clone();
    let mut x = b.to_vec();
    for col in 0..n {
        // Partial pivot.
        let piv = (col..n)
            .max_by(|&i, &j| {
                m[(i, col)]
                    .abs()
                    .partial_cmp(&m[(j, col)].abs())
                    .expect("finite entries")
            })
            .expect("non-empty range");
        if m[(piv, col)].abs() < 1e-12 {
            return None;
        }
        if piv != col {
            for j in 0..n {
                let t = m[(col, j)];
                m[(col, j)] = m[(piv, j)];
                m[(piv, j)] = t;
            }
            x.swap(col, piv);
        }
        for i in (col + 1)..n {
            let f = m[(i, col)] / m[(col, col)];
            if f == 0.0 {
                continue;
            }
            for j in col..n {
                let v = m[(col, j)];
                m[(i, j)] -= f * v;
            }
            x[i] -= f * x[col];
        }
    }
    // Back substitution.
    for col in (0..n).rev() {
        x[col] /= m[(col, col)];
        let xc = x[col];
        for i in 0..col {
            x[i] -= m[(i, col)] * xc;
        }
    }
    Some(x)
}

/// Least-squares solution of `min ‖A x − b‖₂` via Householder QR. Works for
/// `rows ≥ cols`; rank-deficient columns get coefficient 0.
///
/// # Panics
/// On shape mismatch or `rows < cols`.
pub fn qr_least_squares(a: &Matrix, b: &[f64]) -> Vec<f64> {
    let (m, n) = (a.rows(), a.cols());
    assert!(m >= n, "qr_least_squares expects rows >= cols");
    assert_eq!(b.len(), m, "rhs length mismatch");
    let mut r = a.clone();
    let mut y = b.to_vec();
    for k in 0..n {
        // Householder vector for column k below the diagonal.
        let mut norm = 0.0;
        for i in k..m {
            norm += r[(i, k)] * r[(i, k)];
        }
        let norm = norm.sqrt();
        if norm < 1e-14 {
            continue;
        }
        let alpha = if r[(k, k)] >= 0.0 { -norm } else { norm };
        let mut v = vec![0.0; m - k];
        v[0] = r[(k, k)] - alpha;
        for i in (k + 1)..m {
            v[i - k] = r[(i, k)];
        }
        let vnorm2: f64 = v.iter().map(|x| x * x).sum();
        if vnorm2 < 1e-28 {
            continue;
        }
        // Apply H = I − 2 v vᵀ / ‖v‖² to R (columns k..n) and to y.
        for j in k..n {
            let dot: f64 = (k..m).map(|i| v[i - k] * r[(i, j)]).sum();
            let f = 2.0 * dot / vnorm2;
            for i in k..m {
                r[(i, j)] -= f * v[i - k];
            }
        }
        let dot: f64 = (k..m).map(|i| v[i - k] * y[i]).sum();
        let f = 2.0 * dot / vnorm2;
        for i in k..m {
            y[i] -= f * v[i - k];
        }
    }
    // Back substitution on the upper triangle.
    let mut x = vec![0.0; n];
    for k in (0..n).rev() {
        let mut s = y[k];
        for j in (k + 1)..n {
            s -= r[(k, j)] * x[j];
        }
        if r[(k, k)].abs() < 1e-12 {
            x[k] = 0.0;
        } else {
            x[k] = s / r[(k, k)];
        }
    }
    x
}

/// Residual `‖A x − b‖₂` of the least-squares solution — near zero iff the
/// system is (numerically) feasible over ℝ.
pub fn least_squares_residual(a: &Matrix, b: &[f64]) -> f64 {
    let x = if a.rows() >= a.cols() {
        qr_least_squares(a, b)
    } else {
        // Underdetermined: solve the normal equations AᵀA x = Aᵀ b padded —
        // minimum-norm solution via Aᵀ(AAᵀ)⁻¹ b approximated by QR on Aᵀ
        // against each unit direction is overkill; instead solve
        // (AᵀA + λI) x = Aᵀb with tiny ridge for stability.
        let at = a.transpose();
        let mut ata = at.matmul(a);
        for i in 0..ata.rows() {
            ata[(i, i)] += 1e-10;
        }
        let atb = at.matvec(b);
        lu_solve(&ata, &atb).unwrap_or_else(|| vec![0.0; a.cols()])
    };
    let ax = a.matvec(&x);
    ax.iter()
        .zip(b)
        .map(|(p, q)| (p - q) * (p - q))
        .sum::<f64>()
        .sqrt()
}

/// Numerical rank via QR-like elimination with a relative tolerance.
pub fn rank(a: &Matrix, tol: f64) -> usize {
    let mut m = a.clone();
    let (rows, cols) = (m.rows(), m.cols());
    let scale = m
        .as_slice()
        .iter()
        .fold(0.0f64, |acc, &x| acc.max(x.abs()))
        .max(1e-300);
    let mut rank = 0;
    let mut row = 0;
    for col in 0..cols {
        if row >= rows {
            break;
        }
        let piv = (row..rows)
            .max_by(|&i, &j| {
                m[(i, col)]
                    .abs()
                    .partial_cmp(&m[(j, col)].abs())
                    .expect("finite")
            })
            .expect("non-empty");
        if m[(piv, col)].abs() <= tol * scale {
            continue;
        }
        if piv != row {
            for j in 0..cols {
                let t = m[(row, j)];
                m[(row, j)] = m[(piv, j)];
                m[(piv, j)] = t;
            }
        }
        for i in (row + 1)..rows {
            let f = m[(i, col)] / m[(row, col)];
            for j in col..cols {
                let v = m[(row, j)];
                m[(i, j)] -= f * v;
            }
        }
        rank += 1;
        row += 1;
    }
    rank
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lu_solves_known_system() {
        let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 3.0]]);
        let x = lu_solve(&a, &[5.0, 10.0]).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-10);
        assert!((x[1] - 3.0).abs() < 1e-10);
    }

    #[test]
    fn lu_detects_singular() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]);
        assert!(lu_solve(&a, &[1.0, 2.0]).is_none());
    }

    #[test]
    fn qr_exact_system() {
        let a = Matrix::from_rows(&[&[1.0, 1.0], &[1.0, -1.0], &[2.0, 0.0]]);
        // b in the column space: A [1, 2]ᵀ = [3, -1, 2]
        let x = qr_least_squares(&a, &[3.0, -1.0, 2.0]);
        assert!((x[0] - 1.0).abs() < 1e-10);
        assert!((x[1] - 2.0).abs() < 1e-10);
        assert!(least_squares_residual(&a, &[3.0, -1.0, 2.0]) < 1e-10);
    }

    #[test]
    fn qr_least_squares_regression_line() {
        // Fit y = 2x + 1 with noiseless data.
        let a = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 1.0], &[2.0, 1.0], &[3.0, 1.0]]);
        let b = [1.0, 3.0, 5.0, 7.0];
        let x = qr_least_squares(&a, &b);
        assert!((x[0] - 2.0).abs() < 1e-10);
        assert!((x[1] - 1.0).abs() < 1e-10);
    }

    #[test]
    fn infeasible_system_has_residual() {
        let a = Matrix::from_rows(&[&[1.0], &[1.0]]);
        let res = least_squares_residual(&a, &[0.0, 1.0]);
        assert!((res - (0.5f64).sqrt()).abs() < 1e-10);
    }

    #[test]
    fn underdetermined_feasible() {
        // x + y = 2 with two unknowns — feasible.
        let a = Matrix::from_rows(&[&[1.0, 1.0]]);
        assert!(least_squares_residual(&a, &[2.0]) < 1e-4);
    }

    #[test]
    fn rank_cases() {
        assert_eq!(rank(&Matrix::identity(3), 1e-9), 3);
        let r1 = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]);
        assert_eq!(rank(&r1, 1e-9), 1);
        assert_eq!(rank(&Matrix::zeros(3, 2), 1e-9), 0);
        let wide = Matrix::from_rows(&[&[1.0, 0.0, 3.0], &[0.0, 1.0, 1.0]]);
        assert_eq!(rank(&wide, 1e-9), 2);
    }
}
