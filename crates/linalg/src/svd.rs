//! Singular value decomposition built on the Jacobi symmetric eigensolver.
//!
//! The matrix-factorisation node embeddings of Section 2.1 minimise
//! `‖XXᵀ − S‖_F`, solved by truncating the SVD (for symmetric `S`, the
//! eigendecomposition) of the similarity matrix.

use crate::eigen::sym_eigen;
use crate::Matrix;

/// Result of a (thin) singular value decomposition `A = U Σ Vᵀ`.
pub struct Svd {
    /// Left singular vectors (columns), `m × r`.
    pub u: Matrix,
    /// Singular values, descending, length `r = min(m, n)`.
    pub sigma: Vec<f64>,
    /// Right singular vectors (columns), `n × r`.
    pub v: Matrix,
}

/// Thin SVD via the eigendecomposition of `AᵀA` (or `AAᵀ`, whichever is
/// smaller). Accurate enough for the moderate condition numbers of the
/// similarity matrices this workspace factorises.
pub fn svd(a: &Matrix) -> Svd {
    let (m, n) = (a.rows(), a.cols());
    if m >= n {
        // Eigen of AᵀA gives V and σ²; U = A V Σ⁻¹.
        let ata = a.transpose().matmul(a);
        let e = sym_eigen(&ata);
        let sigma: Vec<f64> = e.values.iter().map(|&l| l.max(0.0).sqrt()).collect();
        let v = e.vectors;
        let av = a.matmul(&v);
        let mut u = Matrix::zeros(m, n);
        for j in 0..n {
            if sigma[j] > 1e-12 {
                for i in 0..m {
                    u[(i, j)] = av[(i, j)] / sigma[j];
                }
            }
        }
        Svd { u, sigma, v }
    } else {
        let t = svd(&a.transpose());
        Svd {
            u: t.v,
            sigma: t.sigma,
            v: t.u,
        }
    }
}

/// Rank-`d` factor embedding: rows are `u_i √σ_i` for the top `d` singular
/// triples — the minimiser of `‖XXᵀ − S‖_F` over rank-d `X` for symmetric
/// PSD `S`, and the standard spectral node embedding for general `S`.
///
/// Returns an `m × d` matrix.
pub fn truncated_factor(a: &Matrix, d: usize) -> Matrix {
    let s = svd(a);
    let d = d.min(s.sigma.len());
    let mut x = Matrix::zeros(a.rows(), d);
    for j in 0..d {
        let scale = s.sigma[j].max(0.0).sqrt();
        for i in 0..a.rows() {
            x[(i, j)] = s.u[(i, j)] * scale;
        }
    }
    x
}

/// Best rank-`d` approximation `A_d = U_d Σ_d V_dᵀ` (Eckart–Young).
pub fn low_rank_approx(a: &Matrix, d: usize) -> Matrix {
    let s = svd(a);
    let d = d.min(s.sigma.len());
    let mut out = Matrix::zeros(a.rows(), a.cols());
    for j in 0..d {
        let sj = s.sigma[j];
        for i in 0..a.rows() {
            let uij = s.u[(i, j)] * sj;
            for k in 0..a.cols() {
                out[(i, k)] += uij * s.v[(k, j)];
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reconstructs_full_rank() {
        let a = Matrix::from_rows(&[&[3.0, 1.0], &[1.0, 3.0], &[0.0, 2.0]]);
        let s = svd(&a);
        let recon = s.u.matmul(&Matrix::diag(&s.sigma)).matmul(&s.v.transpose());
        assert!(recon.approx_eq(&a, 1e-9));
    }

    #[test]
    fn singular_values_sorted_nonnegative() {
        let a = Matrix::from_rows(&[&[1.0, 0.0, 2.0], &[0.0, -1.0, 1.0]]);
        let s = svd(&a);
        for w in s.sigma.windows(2) {
            assert!(w[0] >= w[1] - 1e-12);
        }
        assert!(s.sigma.iter().all(|&x| x >= 0.0));
    }

    #[test]
    fn known_diagonal() {
        let a = Matrix::diag(&[-5.0, 3.0]);
        let s = svd(&a);
        assert!((s.sigma[0] - 5.0).abs() < 1e-10);
        assert!((s.sigma[1] - 3.0).abs() < 1e-10);
    }

    #[test]
    fn eckart_young_rank_one() {
        let a = Matrix::from_rows(&[&[2.0, 0.0], &[0.0, 1.0]]);
        let a1 = low_rank_approx(&a, 1);
        assert!(a1.approx_eq(&Matrix::from_rows(&[&[2.0, 0.0], &[0.0, 0.0]]), 1e-9));
    }

    #[test]
    fn factor_embedding_shape_and_quality() {
        // S = XXᵀ for a known X should be recovered up to rotation:
        // check only the objective value.
        let x = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0], &[1.0, 1.0]]);
        let s = x.matmul(&x.transpose());
        let y = truncated_factor(&s, 2);
        assert_eq!((y.rows(), y.cols()), (3, 2));
        let recon = y.matmul(&y.transpose());
        assert!(recon.approx_eq(&s, 1e-8));
    }

    #[test]
    fn wide_matrix_path() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0, 4.0]]);
        let s = svd(&a);
        let recon = s.u.matmul(&Matrix::diag(&s.sigma)).matmul(&s.v.transpose());
        assert!(recon.approx_eq(&a, 1e-9));
    }
}
