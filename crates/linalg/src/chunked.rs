//! Chunked, autovectorizable `dot`/`axpy` kernels with a deterministic
//! reduction order.
//!
//! A naive `Σ aᵢ·bᵢ` loop is a single serial dependency chain: IEEE-754
//! addition is not associative, so the compiler may not reorder it, which
//! caps the loop at one fused multiply-add per float-add latency and
//! blocks SIMD. These kernels instead accumulate into [`LANES`] fixed
//! partial sums — independent chains the backend can keep in one vector
//! register — and reduce them in one *fixed* pairwise order at the end.
//! The result is a pure function of the input slices: no runtime feature
//! detection, no length-dependent strategy switch, and therefore the same
//! bits on every machine and at every `X2V_THREADS` — the house
//! determinism invariant.
//!
//! Used by SGNS training (`x2v-embed`), whose gradient updates are the
//! chunked `axpy` (element-wise, so bit-identical to the scalar loop).
//! [`crate::vector::dot`] and `Matrix::matvec` deliberately do **not**
//! delegate here: the repo's hot dot products are short (SVM feature
//! rows ~24 wide, GNN layers 16 wide), and at those lengths the lane
//! accumulators plus tree reduction cost more than the serial chain they
//! replace — switching them regressed `gnn/forward` and
//! `kernel/gram_svm` 35–57% in the bench suite. Reach for these kernels
//! for long rows or element-wise updates; keep the plain loop for
//! short-vector reductions.

/// Accumulator lanes per chunk. Eight f64 lanes fill one AVX-512 register
/// or two AVX2 registers; part of the bit-level contract — changing it
/// changes reduction order and therefore results.
pub const LANES: usize = 8;

macro_rules! chunked_impl {
    ($dot:ident, $axpy:ident, $sum:ident, $t:ty, $doc:literal) => {
        #[doc = concat!("Chunked ", $doc, " dot product with deterministic lane reduction.")]
        ///
        /// Slices shorter than [`LANES`] reduce to the naive sequential
        /// sum (bit-identical to the textbook loop); longer slices use
        /// `LANES` accumulators and a fixed pairwise tree reduction.
        ///
        /// # Panics
        /// On length mismatch.
        #[inline]
        pub fn $dot(a: &[$t], b: &[$t]) -> $t {
            assert_eq!(a.len(), b.len(), "length mismatch");
            let chunks = a.len() / LANES;
            let mut acc = [0.0 as $t; LANES];
            for c in 0..chunks {
                let xa = &a[c * LANES..(c + 1) * LANES];
                let xb = &b[c * LANES..(c + 1) * LANES];
                for l in 0..LANES {
                    acc[l] += xa[l] * xb[l];
                }
            }
            let mut tail = 0.0 as $t;
            for i in chunks * LANES..a.len() {
                tail += a[i] * b[i];
            }
            if chunks == 0 {
                return tail;
            }
            // Fixed pairwise tree: ((0+1)+(2+3)) + ((4+5)+(6+7)), then tail.
            let s = ((acc[0] + acc[1]) + (acc[2] + acc[3]))
                + ((acc[4] + acc[5]) + (acc[6] + acc[7]));
            s + tail
        }

        #[doc = concat!("Chunked ", $doc, " `y += alpha * x`.")]
        ///
        /// Element-wise, so chunking changes no results versus the naive
        /// loop — it only breaks the loop-carried bounds checks so the
        /// backend vectorises the body.
        ///
        /// # Panics
        /// On length mismatch.
        #[inline]
        pub fn $axpy(alpha: $t, x: &[$t], y: &mut [$t]) {
            assert_eq!(x.len(), y.len(), "length mismatch");
            let chunks = x.len() / LANES;
            for c in 0..chunks {
                let xs = &x[c * LANES..(c + 1) * LANES];
                let ys = &mut y[c * LANES..(c + 1) * LANES];
                for l in 0..LANES {
                    ys[l] += alpha * xs[l];
                }
            }
            for i in chunks * LANES..x.len() {
                y[i] += alpha * x[i];
            }
        }

        #[doc = concat!("Chunked ", $doc, " sum with the same deterministic lane reduction as the dot kernel.")]
        #[inline]
        pub fn $sum(a: &[$t]) -> $t {
            let chunks = a.len() / LANES;
            let mut acc = [0.0 as $t; LANES];
            for c in 0..chunks {
                let xa = &a[c * LANES..(c + 1) * LANES];
                for l in 0..LANES {
                    acc[l] += xa[l];
                }
            }
            let mut tail = 0.0 as $t;
            for i in chunks * LANES..a.len() {
                tail += a[i];
            }
            if chunks == 0 {
                return tail;
            }
            let s = ((acc[0] + acc[1]) + (acc[2] + acc[3]))
                + ((acc[4] + acc[5]) + (acc[6] + acc[7]));
            s + tail
        }
    };
}

chunked_impl!(dot_f64, axpy_f64, sum_f64, f64, "`f64`");
chunked_impl!(dot_f32, axpy_f32, sum_f32, f32, "`f32`");

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_dot(a: &[f64], b: &[f64]) -> f64 {
        // Explicit loop from +0.0 (`Iterator::sum` seeds with -0.0, which
        // differs in bits on empty input).
        let mut s = 0.0;
        for (x, y) in a.iter().zip(b) {
            s += x * y;
        }
        s
    }

    #[test]
    fn short_slices_match_naive_bitwise() {
        // Below one chunk the kernel *is* the sequential loop.
        for n in 0..LANES {
            let a: Vec<f64> = (0..n).map(|i| 0.1 + i as f64 * 0.7).collect();
            let b: Vec<f64> = (0..n).map(|i| 1.3 - i as f64 * 0.2).collect();
            assert_eq!(dot_f64(&a, &b).to_bits(), naive_dot(&a, &b).to_bits());
        }
    }

    #[test]
    fn long_slices_match_naive_to_tolerance() {
        let a: Vec<f64> = (0..1000).map(|i| (i as f64 * 0.37).sin()).collect();
        let b: Vec<f64> = (0..1000).map(|i| (i as f64 * 0.11).cos()).collect();
        let chunked = dot_f64(&a, &b);
        let naive = naive_dot(&a, &b);
        assert!((chunked - naive).abs() < 1e-9, "{chunked} vs {naive}");
    }

    #[test]
    fn exact_on_integers_regardless_of_order() {
        // Integer-valued products below 2^53 are exact in any summation
        // order — the property the sparse-feature Gram path relies on.
        let a: Vec<f64> = (0..100).map(|i| (i % 7) as f64).collect();
        let b: Vec<f64> = (0..100).map(|i| (i % 5) as f64).collect();
        assert_eq!(dot_f64(&a, &b), naive_dot(&a, &b));
    }

    #[test]
    fn axpy_is_bit_identical_to_naive() {
        let x: Vec<f64> = (0..77).map(|i| (i as f64 * 0.3).tan()).collect();
        let mut y1: Vec<f64> = (0..77).map(|i| i as f64 * 0.01).collect();
        let mut y2 = y1.clone();
        axpy_f64(0.37, &x, &mut y1);
        for (yi, xi) in y2.iter_mut().zip(&x) {
            *yi += 0.37 * xi;
        }
        for (a, b) in y1.iter().zip(&y2) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn f32_variants_work() {
        let a = vec![1.0f32; 20];
        let b = vec![2.0f32; 20];
        assert_eq!(dot_f32(&a, &b), 40.0);
        assert_eq!(sum_f32(&a), 20.0);
        let mut y = vec![0.0f32; 20];
        axpy_f32(2.0, &a, &mut y);
        assert!(y.iter().all(|&v| v == 2.0));
    }

    #[test]
    fn deterministic_across_calls() {
        let a: Vec<f64> = (0..333).map(|i| (i as f64).sqrt()).collect();
        assert_eq!(dot_f64(&a, &a).to_bits(), dot_f64(&a, &a).to_bits());
        assert_eq!(sum_f64(&a).to_bits(), sum_f64(&a).to_bits());
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatch_panics() {
        let _ = dot_f64(&[1.0], &[1.0, 2.0]);
    }
}
