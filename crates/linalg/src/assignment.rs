//! The Hungarian algorithm (Kuhn–Munkres) for min-cost perfect assignment.
//!
//! Serves two roles in the workspace: the linear-minimisation oracle inside
//! Frank-Wolfe over the Birkhoff polytope ([`crate::birkhoff`]), and the
//! alignment heuristic seeding the exact graph-distance search of
//! `x2v-similarity`.

use crate::Matrix;

/// Solves `min_σ Σ_i cost[i, σ(i)]` over permutations σ of `0..n`.
/// Returns `(assignment, total_cost)` where `assignment[i] = σ(i)`.
///
/// O(n³) shortest-augmenting-path implementation (Jonker–Volgenant style
/// potentials).
///
/// # Panics
/// If `cost` is not square.
pub fn hungarian(cost: &Matrix) -> (Vec<usize>, f64) {
    assert!(cost.is_square(), "assignment needs a square cost matrix");
    let n = cost.rows();
    if n == 0 {
        return (Vec::new(), 0.0);
    }
    // Potentials and matching arrays use 1-based sentinel row/col 0.
    let mut u = vec![0.0f64; n + 1];
    let mut v = vec![0.0f64; n + 1];
    let mut p = vec![0usize; n + 1]; // p[j] = row matched to column j (1-based)
    let mut way = vec![0usize; n + 1];
    for i in 1..=n {
        p[0] = i;
        let mut j0 = 0usize;
        let mut minv = vec![f64::INFINITY; n + 1];
        let mut used = vec![false; n + 1];
        loop {
            used[j0] = true;
            let i0 = p[j0];
            let mut delta = f64::INFINITY;
            let mut j1 = 0usize;
            for j in 1..=n {
                if used[j] {
                    continue;
                }
                let cur = cost[(i0 - 1, j - 1)] - u[i0] - v[j];
                if cur < minv[j] {
                    minv[j] = cur;
                    way[j] = j0;
                }
                if minv[j] < delta {
                    delta = minv[j];
                    j1 = j;
                }
            }
            for j in 0..=n {
                if used[j] {
                    u[p[j]] += delta;
                    v[j] -= delta;
                } else {
                    minv[j] -= delta;
                }
            }
            j0 = j1;
            if p[j0] == 0 {
                break;
            }
        }
        // Augment along the alternating path.
        loop {
            let j1 = way[j0];
            p[j0] = p[j1];
            j0 = j1;
            if j0 == 0 {
                break;
            }
        }
    }
    let mut assignment = vec![0usize; n];
    for j in 1..=n {
        if p[j] > 0 {
            assignment[p[j] - 1] = j - 1;
        }
    }
    let total: f64 = (0..n).map(|i| cost[(i, assignment[i])]).sum();
    (assignment, total)
}

/// Permutation matrix of an assignment (`P[i, σ(i)] = 1`).
pub fn permutation_matrix(assignment: &[usize]) -> Matrix {
    let n = assignment.len();
    let mut p = Matrix::zeros(n, n);
    for (i, &j) in assignment.iter().enumerate() {
        p[(i, j)] = 1.0;
    }
    p
}

#[cfg(test)]
mod tests {
    use super::*;

    fn brute_force(cost: &Matrix) -> f64 {
        fn go(cost: &Matrix, row: usize, used: &mut [bool], acc: f64, best: &mut f64) {
            let n = cost.rows();
            if row == n {
                *best = best.min(acc);
                return;
            }
            for j in 0..n {
                if !used[j] {
                    used[j] = true;
                    go(cost, row + 1, used, acc + cost[(row, j)], best);
                    used[j] = false;
                }
            }
        }
        let mut best = f64::INFINITY;
        go(cost, 0, &mut vec![false; cost.rows()], 0.0, &mut best);
        best
    }

    #[test]
    fn known_3x3() {
        let c = Matrix::from_rows(&[&[4.0, 1.0, 3.0], &[2.0, 0.0, 5.0], &[3.0, 2.0, 2.0]]);
        let (a, total) = hungarian(&c);
        assert_eq!(total, 5.0);
        assert_eq!(a, vec![1, 0, 2]);
    }

    #[test]
    fn identity_is_optimal_for_diagonal_reward() {
        let c = Matrix::from_rows(&[&[0.0, 9.0], &[9.0, 0.0]]);
        let (a, total) = hungarian(&c);
        assert_eq!(a, vec![0, 1]);
        assert_eq!(total, 0.0);
    }

    #[test]
    fn matches_brute_force_on_pseudorandom() {
        // Deterministic pseudo-random costs.
        for seed in 0u64..6 {
            let n = 5;
            let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
            let mut next = || {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                (state % 1000) as f64 / 100.0
            };
            let mut c = Matrix::zeros(n, n);
            for i in 0..n {
                for j in 0..n {
                    c[(i, j)] = next();
                }
            }
            let (a, total) = hungarian(&c);
            let bf = brute_force(&c);
            assert!((total - bf).abs() < 1e-9, "seed {seed}: {total} vs {bf}");
            // assignment must be a permutation
            let mut seen = vec![false; n];
            for &j in &a {
                assert!(!seen[j]);
                seen[j] = true;
            }
        }
    }

    #[test]
    fn negative_costs_ok() {
        let c = Matrix::from_rows(&[&[-5.0, 0.0], &[0.0, -5.0]]);
        let (_, total) = hungarian(&c);
        assert_eq!(total, -10.0);
    }

    #[test]
    fn permutation_matrix_shape() {
        let p = permutation_matrix(&[2, 0, 1]);
        assert_eq!(p[(0, 2)], 1.0);
        assert_eq!(p[(1, 0)], 1.0);
        assert_eq!(p[(2, 1)], 1.0);
        assert_eq!(p.as_slice().iter().sum::<f64>(), 3.0);
    }
}
