//! Exact rational arithmetic over `i128` and exact Gaussian elimination.
//!
//! Theorems 3.2 and 4.6 characterise WL-/path-indistinguishability via the
//! existence of *rational* solutions to the linear systems (3.2)–(3.3).
//! Because those systems have integer coefficients, rational feasibility
//! coincides with real feasibility — so exact elimination here decides both,
//! with none of the tolerance headaches of floating point.
//!
//! Arithmetic is overflow-checked: operations panic with a clear message
//! rather than silently wrapping, which is the correct failure mode for a
//! proof-checking tool.

use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, Div, Mul, Neg, Sub};

/// An exact rational number `num / den` with `den > 0`, always reduced.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Rat {
    num: i128,
    den: i128,
}

fn gcd(mut a: i128, mut b: i128) -> i128 {
    a = a.abs();
    b = b.abs();
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

impl Rat {
    /// Zero.
    pub const ZERO: Rat = Rat { num: 0, den: 1 };
    /// One.
    pub const ONE: Rat = Rat { num: 1, den: 1 };

    /// Constructs `num / den` in lowest terms.
    ///
    /// # Panics
    /// If `den == 0`.
    pub fn new(num: i128, den: i128) -> Rat {
        assert!(den != 0, "zero denominator");
        let g = gcd(num, den).max(1);
        let sign = if den < 0 { -1 } else { 1 };
        Rat {
            num: sign * num / g,
            den: sign * den / g,
        }
    }

    /// The integer `n` as a rational.
    pub fn int(n: i128) -> Rat {
        Rat { num: n, den: 1 }
    }

    /// Numerator (sign-carrying).
    pub fn num(&self) -> i128 {
        self.num
    }

    /// Denominator (always positive).
    pub fn den(&self) -> i128 {
        self.den
    }

    /// Whether this is zero.
    pub fn is_zero(&self) -> bool {
        self.num == 0
    }

    /// Whether this is strictly negative.
    pub fn is_negative(&self) -> bool {
        self.num < 0
    }

    /// Approximate `f64` value.
    pub fn to_f64(&self) -> f64 {
        self.num as f64 / self.den as f64
    }

    /// Multiplicative inverse.
    ///
    /// # Panics
    /// On zero.
    pub fn recip(&self) -> Rat {
        assert!(self.num != 0, "division by zero rational");
        Rat::new(self.den, self.num)
    }

    fn checked(num: Option<i128>, den: Option<i128>) -> Rat {
        let num = num.expect("rational arithmetic overflow (numerator)");
        let den = den.expect("rational arithmetic overflow (denominator)");
        Rat::new(num, den)
    }
}

impl Add for Rat {
    type Output = Rat;
    fn add(self, rhs: Rat) -> Rat {
        // a/b + c/d = (a d + c b) / (b d), reducing by g = gcd(b, d) first.
        let g = gcd(self.den, rhs.den).max(1);
        let lhs_den = self.den / g;
        let rhs_den = rhs.den / g;
        Rat::checked(
            self.num
                .checked_mul(rhs_den)
                .and_then(|x| rhs.num.checked_mul(lhs_den).and_then(|y| x.checked_add(y))),
            lhs_den.checked_mul(rhs.den),
        )
    }
}

impl Sub for Rat {
    type Output = Rat;
    fn sub(self, rhs: Rat) -> Rat {
        self + (-rhs)
    }
}

impl Neg for Rat {
    type Output = Rat;
    fn neg(self) -> Rat {
        Rat {
            num: -self.num,
            den: self.den,
        }
    }
}

impl Mul for Rat {
    type Output = Rat;
    fn mul(self, rhs: Rat) -> Rat {
        // Cross-reduce before multiplying to delay overflow.
        let g1 = gcd(self.num, rhs.den).max(1);
        let g2 = gcd(rhs.num, self.den).max(1);
        Rat::checked(
            (self.num / g1).checked_mul(rhs.num / g2),
            (self.den / g2).checked_mul(rhs.den / g1),
        )
    }
}

impl Div for Rat {
    type Output = Rat;
    #[allow(clippy::suspicious_arithmetic_impl)] // division IS multiplication by the reciprocal
    fn div(self, rhs: Rat) -> Rat {
        self * rhs.recip()
    }
}

impl PartialOrd for Rat {
    fn partial_cmp(&self, other: &Rat) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Rat {
    fn cmp(&self, other: &Rat) -> Ordering {
        // a/b vs c/d (b, d > 0): compare a d vs c b.
        let lhs = self
            .num
            .checked_mul(other.den)
            .expect("overflow in comparison");
        let rhs = other
            .num
            .checked_mul(self.den)
            .expect("overflow in comparison");
        lhs.cmp(&rhs)
    }
}

impl fmt::Debug for Rat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.den == 1 {
            write!(f, "{}", self.num)
        } else {
            write!(f, "{}/{}", self.num, self.den)
        }
    }
}

impl fmt::Display for Rat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// A dense matrix of rationals.
#[derive(Clone, PartialEq, Eq)]
pub struct RatMatrix {
    rows: usize,
    cols: usize,
    data: Vec<Rat>,
}

impl RatMatrix {
    /// Zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        RatMatrix {
            rows,
            cols,
            data: vec![Rat::ZERO; rows * cols],
        }
    }

    /// From integer rows.
    pub fn from_int_rows(rows: &[&[i128]]) -> Self {
        let r = rows.len();
        let c = rows.first().map_or(0, |x| x.len());
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            assert_eq!(row.len(), c, "ragged rows");
            data.extend(row.iter().map(|&x| Rat::int(x)));
        }
        RatMatrix {
            rows: r,
            cols: c,
            data,
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Entry access.
    pub fn get(&self, i: usize, j: usize) -> Rat {
        self.data[i * self.cols + j]
    }

    /// Entry mutation.
    pub fn set(&mut self, i: usize, j: usize, v: Rat) {
        self.data[i * self.cols + j] = v;
    }

    /// Matrix product.
    ///
    /// # Panics
    /// On shape mismatch.
    pub fn matmul(&self, rhs: &RatMatrix) -> RatMatrix {
        assert_eq!(self.cols, rhs.rows, "shape mismatch");
        let mut out = RatMatrix::zeros(self.rows, rhs.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self.get(i, k);
                if a.is_zero() {
                    continue;
                }
                for j in 0..rhs.cols {
                    let cur = out.get(i, j);
                    out.set(i, j, cur + a * rhs.get(k, j));
                }
            }
        }
        out
    }

    /// Reduced row echelon form; returns (rref, pivot columns).
    pub fn rref(&self) -> (RatMatrix, Vec<usize>) {
        let mut m = self.clone();
        let mut pivots = Vec::new();
        let mut row = 0;
        for col in 0..m.cols {
            if row >= m.rows {
                break;
            }
            // Find a pivot.
            let Some(piv) = (row..m.rows).find(|&i| !m.get(i, col).is_zero()) else {
                continue;
            };
            // Swap rows.
            if piv != row {
                for j in 0..m.cols {
                    let a = m.get(row, j);
                    let b = m.get(piv, j);
                    m.set(row, j, b);
                    m.set(piv, j, a);
                }
            }
            // Scale pivot row to leading 1.
            let inv = m.get(row, col).recip();
            for j in col..m.cols {
                let v = m.get(row, j) * inv;
                m.set(row, j, v);
            }
            // Eliminate the column everywhere else.
            for i in 0..m.rows {
                if i == row || m.get(i, col).is_zero() {
                    continue;
                }
                let f = m.get(i, col);
                for j in col..m.cols {
                    let v = m.get(i, j) - f * m.get(row, j);
                    m.set(i, j, v);
                }
            }
            pivots.push(col);
            row += 1;
        }
        (m, pivots)
    }

    /// Exact rank.
    pub fn rank(&self) -> usize {
        self.rref().1.len()
    }

    /// Exact determinant by fraction-free-ish elimination over `Rat`.
    ///
    /// # Panics
    /// If not square.
    pub fn determinant(&self) -> Rat {
        assert_eq!(self.rows, self.cols, "determinant of non-square matrix");
        let mut m = self.clone();
        let n = m.rows;
        let mut det = Rat::ONE;
        for col in 0..n {
            let Some(piv) = (col..n).find(|&i| !m.get(i, col).is_zero()) else {
                return Rat::ZERO;
            };
            if piv != col {
                det = -det;
                for j in 0..n {
                    let a = m.get(col, j);
                    let b = m.get(piv, j);
                    m.set(col, j, b);
                    m.set(piv, j, a);
                }
            }
            let p = m.get(col, col);
            det = det * p;
            let inv = p.recip();
            for i in (col + 1)..n {
                let f = m.get(i, col) * inv;
                if f.is_zero() {
                    continue;
                }
                for j in col..n {
                    let v = m.get(i, j) - f * m.get(col, j);
                    m.set(i, j, v);
                }
            }
        }
        det
    }

    /// Decides whether `A x = b` has a rational solution; returns one if so.
    pub fn solve(&self, b: &[Rat]) -> Option<Vec<Rat>> {
        assert_eq!(b.len(), self.rows, "rhs length mismatch");
        // Augment and reduce.
        let mut aug = RatMatrix::zeros(self.rows, self.cols + 1);
        for i in 0..self.rows {
            for j in 0..self.cols {
                aug.set(i, j, self.get(i, j));
            }
            aug.set(i, self.cols, b[i]);
        }
        let (r, pivots) = aug.rref();
        // Infeasible iff some pivot lies in the augmented column.
        if pivots.contains(&self.cols) {
            return None;
        }
        let mut x = vec![Rat::ZERO; self.cols];
        for (row, &col) in pivots.iter().enumerate() {
            x[col] = r.get(row, self.cols);
        }
        Some(x)
    }
}

impl fmt::Debug for RatMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "RatMatrix {}x{} [", self.rows, self.cols)?;
        for i in 0..self.rows {
            write!(f, "  [")?;
            for j in 0..self.cols {
                if j > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{}", self.get(i, j))?;
            }
            writeln!(f, "]")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rat_arithmetic() {
        let a = Rat::new(1, 2);
        let b = Rat::new(1, 3);
        assert_eq!(a + b, Rat::new(5, 6));
        assert_eq!(a - b, Rat::new(1, 6));
        assert_eq!(a * b, Rat::new(1, 6));
        assert_eq!(a / b, Rat::new(3, 2));
        assert_eq!(-a, Rat::new(-1, 2));
        assert_eq!(Rat::new(2, 4), Rat::new(1, 2));
        assert_eq!(Rat::new(1, -2), Rat::new(-1, 2));
        assert!(Rat::new(1, 3) < Rat::new(1, 2));
        assert_eq!(format!("{}", Rat::new(-3, 6)), "-1/2");
    }

    #[test]
    #[should_panic(expected = "zero denominator")]
    fn zero_denominator_panics() {
        let _ = Rat::new(1, 0);
    }

    #[test]
    fn determinant_known() {
        let m = RatMatrix::from_int_rows(&[&[2, 1], &[1, 3]]);
        assert_eq!(m.determinant(), Rat::int(5));
        let s = RatMatrix::from_int_rows(&[&[1, 2], &[2, 4]]);
        assert_eq!(s.determinant(), Rat::ZERO);
        // Triangular with diagonal 1,2,3.
        let t = RatMatrix::from_int_rows(&[&[1, 5, 7], &[0, 2, 9], &[0, 0, 3]]);
        assert_eq!(t.determinant(), Rat::int(6));
    }

    #[test]
    fn rank_and_rref() {
        let m = RatMatrix::from_int_rows(&[&[1, 2, 3], &[2, 4, 6], &[1, 0, 1]]);
        assert_eq!(m.rank(), 2);
        assert_eq!(RatMatrix::from_int_rows(&[&[0, 0], &[0, 0]]).rank(), 0);
    }

    #[test]
    fn solve_feasible() {
        let a = RatMatrix::from_int_rows(&[&[2, 1], &[1, 3]]);
        let x = a.solve(&[Rat::int(5), Rat::int(10)]).unwrap();
        assert_eq!(x, vec![Rat::int(1), Rat::int(3)]);
    }

    #[test]
    fn solve_infeasible_and_underdetermined() {
        // x + y = 1, x + y = 2: infeasible.
        let a = RatMatrix::from_int_rows(&[&[1, 1], &[1, 1]]);
        assert!(a.solve(&[Rat::int(1), Rat::int(2)]).is_none());
        // x + y = 2 alone: feasible (particular solution with free var 0).
        let u = RatMatrix::from_int_rows(&[&[1, 1]]);
        let x = u.solve(&[Rat::int(2)]).unwrap();
        assert_eq!(x[0] + x[1], Rat::int(2));
    }

    #[test]
    fn matmul_exact() {
        let a = RatMatrix::from_int_rows(&[&[1, 2], &[3, 4]]);
        let b = RatMatrix::from_int_rows(&[&[5, 6], &[7, 8]]);
        let c = a.matmul(&b);
        assert_eq!(c.get(0, 0), Rat::int(19));
        assert_eq!(c.get(1, 1), Rat::int(50));
    }

    #[test]
    fn cross_reduction_delays_overflow() {
        // (2^80 / 3) * (3 / 2^80) = 1 must not overflow.
        let big = 1i128 << 80;
        let a = Rat::new(big, 3);
        let b = Rat::new(3, big);
        assert_eq!(a * b, Rat::ONE);
    }
}
