//! The fleet worker loop: claim, compute, publish, heartbeat.
//!
//! A worker process is deliberately dumb. It sweeps the task list from a
//! per-worker rotated starting point (so claim attempts de-conflict
//! naturally), skips tasks whose shard already exists or whose current
//! attempt is claimed, wins what it can via the `O_EXCL` lease race, and
//! publishes shards whose bytes depend only on (manifest, task). It holds
//! no state the store does not hold — SIGKILL it at any instant and the
//! protocol state stays consistent, which is the whole design.
//!
//! Liveness has two halves. A heartbeat thread publishes beat frames
//! every `heartbeat_ms`, so the *supervisor* can tell a wedged worker
//! from a slow one. And when a sweep makes no progress for a few rounds
//! (everything pending is claimed by someone else), the worker turns
//! *straggler re-dispatcher*: it speculatively re-executes the first
//! pending task in task order (`fleet/steals`) — duplicate shards are
//! byte-identical, so this trades only wasted CPU for liveness.
//!
//! Fault drills: `kill9@fleet/worker` aborts the process right before a
//! claim attempt (no unwinding — the closest safe stand-in for SIGKILL);
//! `stall@fleet/heartbeat` wedges the worker on entry — no beats, no
//! work, no exit — leaving the supervisor's stall detector to kill us.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use x2v_ckpt::Store;
use x2v_guard::faults::{self, ProcFaultKind};
use x2v_guard::GuardError;
use x2v_obs::keys;

use crate::protocol::{self, Heartbeat, Lease, Manifest, HEARTBEAT_KIND, LEASE_KIND};
use crate::{Workload, HEARTBEAT_SITE, WORKER_SITE};

/// Sweeps without progress before the straggler re-dispatch kicks in.
const STEAL_AFTER_IDLE_SWEEPS: u32 = 3;

/// Runs the worker side of the fleet protocol to completion: returns
/// `Ok(())` once every task is done or abandoned from this worker's view.
/// Exits only through the typed error path (the supervisor treats a
/// non-zero exit as a death and re-dispatches our leases).
pub fn worker_main(
    store: &Store,
    job: &str,
    worker: u64,
    heartbeat_ms: u64,
    max_attempts: u64,
    workload: &dyn Workload,
) -> Result<(), GuardError> {
    let _span = x2v_obs::span("fleet/worker");
    if faults::proc_fault(HEARTBEAT_SITE) == Some(ProcFaultKind::Stall) {
        // The stall drill: wedge before the first beat, exactly like a
        // process livelocked on entry — the supervisor can only tell by
        // the heartbeat that never starts advancing, and must kill us.
        loop {
            std::thread::sleep(Duration::from_secs(3600));
        }
    }
    let manifest = Manifest::of(workload);
    let fingerprint = manifest.fingerprint();
    let n = workload.num_tasks();
    let pid = std::process::id() as u64;
    let lease = protocol::lease_job(job);

    let done = Arc::new(AtomicBool::new(false));
    let beats = spawn_heartbeat(
        store.root().to_path_buf(),
        job.to_string(),
        worker,
        pid,
        heartbeat_ms,
        Arc::clone(&done),
    );

    let mut idle_sweeps = 0u32;
    let result = loop {
        let mut progressed = false;
        let mut unsettled = 0usize;
        for i in 0..n {
            let t = (worker as usize * 7 + i) % n.max(1);
            if shard_exists(store, job, fingerprint, t)? {
                continue;
            }
            let Some(k) = protocol::current_attempt(store, job, t, max_attempts) else {
                continue; // abandoned: settled, just not by us
            };
            unsettled += 1;
            if store.named_exists(&lease, &protocol::claim_name(t, k)) {
                continue; // someone owns this attempt
            }
            if faults::proc_fault(WORKER_SITE) == Some(ProcFaultKind::Kill9) {
                // SIGKILL stand-in: no unwinding, no cleanup, no exit code
                // the supervisor could mistake for a typed failure.
                std::process::abort();
            }
            let claim = Lease { worker, pid }.encode();
            if !store.claim_named(&lease, &protocol::claim_name(t, k), LEASE_KIND, &claim)? {
                continue; // lost the race
            }
            let data = workload.run_task(t)?;
            protocol::publish_shard(store, job, fingerprint, t, &data)?;
            progressed = true;
        }
        if unsettled == 0 {
            break Ok(());
        }
        if progressed {
            idle_sweeps = 0;
            continue;
        }
        idle_sweeps += 1;
        if idle_sweeps >= STEAL_AFTER_IDLE_SWEEPS {
            // Straggler re-dispatch: deterministically the *first* pending
            // task in task order, so concurrent stealers pile onto the
            // same task instead of fanning out into wasted work.
            let victim = (0..n).find_map(|t| match shard_exists(store, job, fingerprint, t) {
                Ok(false) => protocol::current_attempt(store, job, t, max_attempts).map(|_| Ok(t)),
                Ok(true) => None,
                Err(e) => Some(Err(e)),
            });
            match victim {
                Some(Ok(t)) => {
                    x2v_obs::counter_add(keys::fleet::STEALS, 1);
                    let data = workload.run_task(t)?;
                    protocol::publish_shard(store, job, fingerprint, t, &data)?;
                    idle_sweeps = 0;
                    continue;
                }
                Some(Err(e)) => break Err(e),
                None => {} // everything settled while we looked
            }
        }
        std::thread::sleep(Duration::from_millis(heartbeat_ms.max(1)));
    };
    done.store(true, Ordering::Release);
    let _ = beats.join();
    result
}

fn shard_exists(
    store: &Store,
    job: &str,
    fingerprint: u32,
    task: usize,
) -> Result<bool, GuardError> {
    Ok(store
        .latest_generation(&protocol::shard_job(job, fingerprint, task))?
        .is_some())
}

/// The heartbeat thread: publishes a beat frame every `heartbeat_ms` until
/// the main loop finishes. Beat publishing is best-effort — a failed save
/// just means the supervisor sees us stall and recycles us, which is the
/// correct outcome for a worker whose store writes fail. Opens its own
/// `Store` handle (same root) so the main loop's borrow stays local.
fn spawn_heartbeat(
    root: std::path::PathBuf,
    job: String,
    worker: u64,
    pid: u64,
    heartbeat_ms: u64,
    done: Arc<AtomicBool>,
) -> std::thread::JoinHandle<()> {
    std::thread::spawn(move || {
        let Ok(store) = Store::open(&root) else {
            return;
        };
        let hb_job = protocol::heartbeat_job(&job, worker);
        let mut seq = 0u64;
        while !done.load(Ordering::Acquire) {
            seq += 1;
            let beat = Heartbeat { worker, pid, seq }.encode();
            let _ = store.save(&hb_job, HEARTBEAT_KIND, &beat);
            x2v_obs::counter_add(keys::fleet::HEARTBEATS, 1);
            std::thread::sleep(Duration::from_millis(heartbeat_ms.max(1)));
        }
    })
}
