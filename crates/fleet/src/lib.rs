//! # x2v-fleet — crash-tolerant multi-process execution over the ckpt store
//!
//! The paper's quadratic hot paths (WL-kernel Gram matrices, walk corpora)
//! are embarrassingly shardable, and this crate shards them across worker
//! *subprocesses* without giving up the house invariant: the merged output
//! is **bit-identical** at any worker count (including 1 = inline, no
//! subprocess at all) and under any kill schedule. Workers are expected to
//! die — SIGKILL, OOM, wedged — and the supervisor's job is to make that
//! boring.
//!
//! There is no network and no IPC channel: the only shared medium is the
//! durable, checksummed [`x2v_ckpt::Store`]. That buys the whole crash
//! story for free — every message is a validated frame, torn state is
//! detected and quarantined, and a run that dies mid-flight resumes from
//! its shards. The protocol ([`protocol`]):
//!
//! * the supervisor publishes a **task manifest** frame (workload kind,
//!   parameter blob, task count) and spawns N workers;
//! * workers **claim** tasks via atomic lease frames — an `O_EXCL` file
//!   create the kernel arbitrates, so exactly one claimant wins
//!   ([`x2v_ckpt::Store::claim_named`]);
//! * task results are published as generation-numbered, CRC-checked
//!   **shard** frames whose bytes depend only on (manifest, task) — so a
//!   straggler or a retry republishing a shard is *harmless duplication*,
//!   never divergence. This is what makes the determinism proof work;
//! * workers emit **heartbeat** frames on a deadline; a heartbeat that
//!   stops advancing gets its worker killed and respawned (with seeded,
//!   jittered [`x2v_guard::retry::Backoff`]);
//! * a dead worker's leases are **revoked** (a marker frame — leases are
//!   never deleted mid-run) and the task becomes claimable at the next
//!   attempt index, up to a retry cap;
//! * at the cap the run degrades honestly: a declared-`Partial` merge with
//!   the missing tasks enumerated (when allowed), or a typed
//!   [`GuardError::WorkerFailed`] — never a hang, never a silently wrong
//!   matrix.
//!
//! Every degradation path is drillable via `X2V_FAULTS`
//! (`kill9@fleet/worker`, `stall@fleet/heartbeat`, `corrupt@fleet/shard`)
//! and observable via the `fleet/*` counters
//! ([`x2v_obs::keys::fleet`]). See `docs/fleet.md` for the failure matrix.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod protocol;
pub mod supervisor;
pub mod worker;

pub use supervisor::{run_fleet, FleetConfig, FleetOutcome};
pub use worker::worker_main;

use x2v_guard::GuardError;

/// The supervisor's guarded site (`GuardError::WorkerFailed` originates
/// here; the run span and budget meter carry this name).
pub const SITE: &str = "fleet/run";

/// The worker task loop's guarded site — fault-injection target
/// `kill9@fleet/worker` (the worker aborts on the spot, simulating
/// SIGKILL/OOM mid-task).
pub const WORKER_SITE: &str = "fleet/worker";

/// The worker heartbeat loop's guarded site — fault-injection target
/// `stall@fleet/heartbeat` (the worker stops heartbeating and wedges, so
/// the supervisor must detect it by timeout and kill it).
pub const HEARTBEAT_SITE: &str = "fleet/heartbeat";

/// The shard-publish site — fault-injection target `corrupt@fleet/shard`
/// (one bit of the just-published shard frame is flipped on disk, so the
/// supervisor must quarantine it and re-dispatch the task).
pub const SHARD_SITE: &str = "fleet/shard";

/// A shardable computation the fleet can execute.
///
/// The contract that the whole determinism story rests on:
/// [`Workload::run_task`] must be a *pure deterministic function* of
/// (`kind`, `params`, task index) — same inputs, same bytes, in any
/// process, at any time. The fleet exploits this by letting retries and
/// stragglers republish shards freely: duplicates are byte-identical, so
/// the merged result cannot depend on the schedule.
pub trait Workload {
    /// Stable identifier of the workload family (goes in the manifest;
    /// the worker binary dispatches on it).
    fn kind(&self) -> &'static str;
    /// Serialised parameters sufficient to reconstruct the workload in
    /// another process (goes in the manifest).
    fn params(&self) -> Vec<u8>;
    /// Number of independent tasks. Task indices are `0..num_tasks()`.
    fn num_tasks(&self) -> usize;
    /// Executes task `task`, returning its shard bytes. Must be
    /// deterministic in (`kind`, `params`, `task`) alone.
    fn run_task(&self, task: usize) -> Result<Vec<u8>, GuardError>;
}
