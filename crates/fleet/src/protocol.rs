//! The on-store fleet protocol: job naming, frame kinds and payload codecs.
//!
//! Everything the supervisor and its workers exchange lives in the ckpt
//! store as validated frames, grouped into per-purpose store *jobs* under
//! one fleet job name `<job>`:
//!
//! ```text
//! <job>.manifest            gen frames, kind "fleet-manifest"
//! <job>.lease               named frames: claim-t<T>-a<K> ("fleet-lease"),
//!                           revoked-t<T>-a<K> ("fleet-mark")
//! <job>.shard.<FP>.t<T>     gen frames, kind "fleet-shard"
//! <job>.hb.w<W>             gen frames, kind "fleet-heartbeat"
//! ```
//!
//! `<FP>` is the manifest fingerprint (CRC32 over the manifest payload):
//! baking it into the shard job name means shards from a *different*
//! manifest — a changed parameter, a different workload — are simply
//! invisible, so a resume can never merge stale bytes.
//!
//! A task `T` is attempted at monotonically increasing attempt indices
//! `K = 0, 1, …`: attempt `K` is owned by whoever wins the `O_EXCL` race
//! on `claim-t<T>-a<K>`, and is over when the supervisor publishes the
//! idempotent `revoked-t<T>-a<K>` marker (dead owner, stalled owner, or
//! corrupt shard). The *current* attempt of a task is the smallest
//! unrevoked index; a task with all `max_attempts` indices revoked is
//! abandoned. Claims and markers are never deleted mid-run — they are the
//! audit trail — and shard payloads do not mention the worker that
//! produced them, so every attempt publishes byte-identical shards.

use x2v_ckpt::codec::{Dec, Enc};
use x2v_ckpt::{crc32, Store};
use x2v_guard::faults::{self, SocketFaultKind};
use x2v_guard::GuardError;
use x2v_obs::keys;

/// Frame kind of manifest generations.
pub const MANIFEST_KIND: &str = "fleet-manifest";
/// Frame kind of task lease claims.
pub const LEASE_KIND: &str = "fleet-lease";
/// Frame kind of revocation markers.
pub const MARK_KIND: &str = "fleet-mark";
/// Frame kind of result shard generations.
pub const SHARD_KIND: &str = "fleet-shard";
/// Frame kind of heartbeat generations.
pub const HEARTBEAT_KIND: &str = "fleet-heartbeat";

/// Upper bound accepted for a decoded manifest parameter blob.
const MAX_PARAMS: usize = 1 << 26;
/// Upper bound accepted for a decoded shard payload.
const MAX_SHARD: usize = 1 << 30;

/// The store job holding `job`'s manifest generations.
pub fn manifest_job(job: &str) -> String {
    format!("{job}.manifest")
}

/// The store job holding `job`'s lease claims and revocation markers.
pub fn lease_job(job: &str) -> String {
    format!("{job}.lease")
}

/// The store job holding task `task`'s result shards under manifest
/// fingerprint `fingerprint`.
pub fn shard_job(job: &str, fingerprint: u32, task: usize) -> String {
    format!("{job}.shard.{fingerprint:08x}.t{task}")
}

/// The store job holding worker `worker`'s heartbeat generations.
pub fn heartbeat_job(job: &str, worker: u64) -> String {
    format!("{job}.hb.w{worker}")
}

/// The named frame claiming attempt `attempt` of task `task`.
pub fn claim_name(task: usize, attempt: u64) -> String {
    format!("claim-t{task}-a{attempt}")
}

/// The named frame revoking attempt `attempt` of task `task`.
pub fn revoked_name(task: usize, attempt: u64) -> String {
    format!("revoked-t{task}-a{attempt}")
}

/// The task manifest: everything a worker process needs to reconstruct
/// the workload and enumerate its tasks.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Manifest {
    /// Workload family identifier ([`crate::Workload::kind`]).
    pub workload_kind: String,
    /// Serialised workload parameters ([`crate::Workload::params`]).
    pub params: Vec<u8>,
    /// Number of tasks.
    pub num_tasks: u64,
}

impl Manifest {
    /// Builds the manifest of `workload`.
    pub fn of(workload: &dyn crate::Workload) -> Self {
        Manifest {
            workload_kind: workload.kind().to_string(),
            params: workload.params(),
            num_tasks: workload.num_tasks() as u64,
        }
    }

    /// Serialises the manifest payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut e = Enc::new();
        e.str(&self.workload_kind)
            .bytes(&self.params)
            .u64(self.num_tasks);
        e.finish()
    }

    /// Deserialises a manifest payload; `None` on any malformation.
    pub fn decode(payload: &[u8]) -> Option<Self> {
        let mut d = Dec::new(payload);
        let workload_kind = d.str(256, "manifest kind").ok()?;
        let params = d.bytes_vec(MAX_PARAMS, "manifest params").ok()?;
        let num_tasks = d.u64("manifest tasks").ok()?;
        d.finish("manifest tail").ok()?;
        Some(Manifest {
            workload_kind,
            params,
            num_tasks,
        })
    }

    /// The manifest fingerprint: CRC32 over the encoded payload. Shard job
    /// names embed it, so shards are only ever merged against the exact
    /// manifest that produced them.
    pub fn fingerprint(&self) -> u32 {
        crc32::crc32(&self.encode())
    }
}

/// A lease claim payload: who owns this attempt.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Lease {
    /// Claiming worker's fleet id (`u64::MAX` for the inline supervisor).
    pub worker: u64,
    /// Claiming process id, for forensics and external `kill`.
    pub pid: u64,
}

impl Lease {
    /// Serialises the lease payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut e = Enc::new();
        e.u64(self.worker).u64(self.pid);
        e.finish()
    }

    /// Deserialises a lease payload; `None` on any malformation (a claim
    /// caught mid-write — treated as pending by readers).
    pub fn decode(payload: &[u8]) -> Option<Self> {
        let mut d = Dec::new(payload);
        let worker = d.u64("lease worker").ok()?;
        let pid = d.u64("lease pid").ok()?;
        d.finish("lease tail").ok()?;
        Some(Lease { worker, pid })
    }
}

/// A heartbeat payload.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Heartbeat {
    /// Beating worker's fleet id.
    pub worker: u64,
    /// Beating worker's process id (the chaos battery reads this to aim
    /// its SIGKILLs).
    pub pid: u64,
    /// Monotonic beat sequence within this worker process.
    pub seq: u64,
}

impl Heartbeat {
    /// Serialises the heartbeat payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut e = Enc::new();
        e.u64(self.worker).u64(self.pid).u64(self.seq);
        e.finish()
    }

    /// Deserialises a heartbeat payload; `None` on any malformation.
    pub fn decode(payload: &[u8]) -> Option<Self> {
        let mut d = Dec::new(payload);
        let worker = d.u64("hb worker").ok()?;
        let pid = d.u64("hb pid").ok()?;
        let seq = d.u64("hb seq").ok()?;
        d.finish("hb tail").ok()?;
        Some(Heartbeat { worker, pid, seq })
    }
}

/// Encodes a shard payload. Deliberately excludes any producer identity:
/// shard bytes are a function of (manifest, task) alone, so duplicated
/// publishes are byte-identical.
pub fn encode_shard(task: usize, data: &[u8]) -> Vec<u8> {
    let mut e = Enc::new();
    e.u64(task as u64).bytes(data);
    e.finish()
}

/// Decodes a shard payload for `task`; `None` on malformation or task
/// mismatch (either is treated as corruption by the supervisor).
pub fn decode_shard(task: usize, payload: &[u8]) -> Option<Vec<u8>> {
    let mut d = Dec::new(payload);
    let t = d.u64("shard task").ok()?;
    if t != task as u64 {
        return None;
    }
    let data = d.bytes_vec(MAX_SHARD, "shard data").ok()?;
    d.finish("shard tail").ok()?;
    Some(data)
}

/// The current attempt index of `task`: the smallest `k < max_attempts`
/// whose revocation marker is absent, or `None` when every attempt has
/// been revoked — the task is abandoned. Both the supervisor and the
/// workers derive attempt state from the same on-store markers, so they
/// can never disagree about which attempt is live.
pub fn current_attempt(store: &Store, job: &str, task: usize, max_attempts: u64) -> Option<u64> {
    let lease = lease_job(job);
    (0..max_attempts).find(|&k| !store.named_exists(&lease, &revoked_name(task, k)))
}

/// Publishes the shard for `task` (counting
/// [`keys::fleet::SHARDS_PUBLISHED`]), honouring the `corrupt@fleet/shard`
/// drill: when it fires, one bit of the just-written frame is flipped on
/// disk *after* the atomic publish — exactly what silent media corruption
/// between publish and collection looks like — so the supervisor's
/// quarantine-and-retry path is exercised end to end.
pub fn publish_shard(
    store: &Store,
    job: &str,
    fingerprint: u32,
    task: usize,
    data: &[u8],
) -> Result<(), GuardError> {
    let shard = shard_job(job, fingerprint, task);
    let payload = encode_shard(task, data);
    let generation = store.save(&shard, SHARD_KIND, &payload)?;
    x2v_obs::counter_add(keys::fleet::SHARDS_PUBLISHED, 1);
    if faults::socket_fault(crate::SHARD_SITE) == Some(SocketFaultKind::Corrupt) {
        // The file name is the store's documented gen layout.
        let path = store
            .job_dir(&shard)
            .join(format!("gen-{generation:06}.ckpt"));
        if let Ok(mut bytes) = std::fs::read(&path) {
            if let Some(last) = bytes.last_mut() {
                *last ^= 0x01;
            }
            let _ = std::fs::write(&path, &bytes);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn payload_round_trips() {
        let m = Manifest {
            workload_kind: "fleet-gram-wl".into(),
            params: vec![1, 2, 3],
            num_tasks: 9,
        };
        assert_eq!(Manifest::decode(&m.encode()).unwrap(), m);
        assert_eq!(
            m.fingerprint(),
            Manifest::decode(&m.encode()).unwrap().fingerprint()
        );

        let l = Lease {
            worker: 3,
            pid: 4242,
        };
        assert_eq!(Lease::decode(&l.encode()).unwrap(), l);
        assert_eq!(Lease::decode(b"torn"), None);

        let h = Heartbeat {
            worker: 1,
            pid: 99,
            seq: 7,
        };
        assert_eq!(Heartbeat::decode(&h.encode()).unwrap(), h);

        let shard = encode_shard(5, b"rows");
        assert_eq!(decode_shard(5, &shard).unwrap(), b"rows");
        assert_eq!(decode_shard(6, &shard), None, "task mismatch is corruption");
    }

    #[test]
    fn fingerprint_distinguishes_manifests() {
        let a = Manifest {
            workload_kind: "k".into(),
            params: vec![1],
            num_tasks: 4,
        };
        let mut b = a.clone();
        b.params = vec![2];
        assert_ne!(a.fingerprint(), b.fingerprint());
        assert_ne!(
            shard_job("j", a.fingerprint(), 0),
            shard_job("j", b.fingerprint(), 0),
            "shards of different manifests must live in different jobs"
        );
    }

    #[test]
    fn attempt_state_follows_revocation_markers() {
        let dir = std::env::temp_dir().join(format!("x2v-fleet-proto-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = Store::open(&dir).unwrap();
        let lease = lease_job("j");
        assert_eq!(current_attempt(&store, "j", 0, 3), Some(0));
        store
            .save_named(&lease, &revoked_name(0, 0), MARK_KIND, b"dead")
            .unwrap();
        assert_eq!(current_attempt(&store, "j", 0, 3), Some(1));
        store
            .save_named(&lease, &revoked_name(0, 1), MARK_KIND, b"dead")
            .unwrap();
        store
            .save_named(&lease, &revoked_name(0, 2), MARK_KIND, b"dead")
            .unwrap();
        assert_eq!(current_attempt(&store, "j", 0, 3), None, "abandoned");
        assert_eq!(current_attempt(&store, "j", 1, 3), Some(0), "independent");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
