//! The fleet supervisor: spawn, watch, revoke, respawn, merge.
//!
//! [`run_fleet`] drives a [`Workload`](crate::Workload) to completion
//! across N worker subprocesses (or inline, in-process, when `workers <=
//! 1`), surviving worker SIGKILLs, stalls and corrupt shards. Its loop is
//! a small state machine over the durable protocol state
//! ([`crate::protocol`]):
//!
//! 1. **collect** — pull validated shards into memory; a shard that fails
//!    validation was quarantined by the store (never deleted), counts
//!    `fleet/shard_corrupt`, and its task's current lease is revoked so
//!    the next attempt can be claimed;
//! 2. **reap** — a worker that exited non-zero (or was SIGKILLed) counts
//!    `fleet/worker_deaths`, has its leases revoked, and is respawned
//!    after a seeded, jittered [`Backoff`] delay (`fleet/respawns`) until
//!    its respawn budget runs out;
//! 3. **stall-watch** — a live worker whose heartbeat generation stops
//!    advancing for `stall_timeout_ms` counts `fleet/stalls_detected` and
//!    is killed; the reap path then takes over;
//! 4. **settle** — a task whose every attempt has been revoked is
//!    abandoned. When all tasks are done-or-abandoned (or nobody is left
//!    to run them) the loop ends — so the supervisor can *never* hang.
//!
//! Missing tasks at the end either degrade the run to a declared partial
//! result (`allow_partial`, counting `fleet/partial`) or surface as a
//! typed [`GuardError::WorkerFailed`] with the missing tasks enumerated.

use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use x2v_ckpt::Store;
use x2v_guard::retry::Backoff;
use x2v_guard::GuardError;
use x2v_obs::keys;

use crate::protocol::{self, Lease, Manifest, LEASE_KIND, MANIFEST_KIND, MARK_KIND, SHARD_KIND};
use crate::{Workload, SITE};

/// Configuration of one fleet run.
#[derive(Clone, Debug)]
pub struct FleetConfig {
    /// Fleet job name: the namespace of every protocol frame in the store.
    pub job: String,
    /// Worker count. `<= 1` runs inline in this process — no subprocesses,
    /// no leases, the degenerate fleet every multi-worker run must match
    /// bit-for-bit.
    pub workers: usize,
    /// Path to the worker executable (the `fleet_worker` bin). Required
    /// when `workers > 1`.
    pub worker_cmd: Option<PathBuf>,
    /// Extra environment for the *first* worker cohort only — the fault
    /// drill channel (`X2V_FAULTS` set here arms exactly one cohort;
    /// respawned workers always start clean, so a drilled crash loop
    /// cannot recurse forever).
    pub worker_env: Vec<(String, String)>,
    /// Worker heartbeat period.
    pub heartbeat_ms: u64,
    /// How long a worker's heartbeat may stand still before the
    /// supervisor declares it stalled and kills it.
    pub stall_timeout_ms: u64,
    /// Per-task retry cap: a task may be re-dispatched this many times
    /// after its first attempt before it is abandoned.
    pub max_task_retries: u64,
    /// Seed of the respawn [`Backoff`] (worker id is the stream, so the
    /// jitter sequence is deterministic per slot).
    pub backoff_seed: u64,
    /// Respawn backoff base delay in milliseconds.
    pub backoff_base_ms: u64,
    /// Respawn backoff delay cap in milliseconds.
    pub backoff_cap_ms: u64,
    /// How many times one worker slot may be respawned before it is
    /// retired.
    pub respawn_cap: u32,
    /// Supervisor poll period.
    pub poll_ms: u64,
    /// Degrade to a declared-partial result instead of erroring when
    /// tasks remain missing at the end.
    pub allow_partial: bool,
    /// Reuse shards of a previous identical run (same manifest bytes)
    /// instead of starting fresh.
    pub resume: bool,
}

impl FleetConfig {
    /// A single-worker (inline) configuration with house defaults.
    pub fn new(job: impl Into<String>) -> Self {
        FleetConfig {
            job: job.into(),
            workers: 1,
            worker_cmd: None,
            worker_env: Vec::new(),
            heartbeat_ms: 50,
            stall_timeout_ms: 1_000,
            max_task_retries: 3,
            backoff_seed: 42,
            backoff_base_ms: Backoff::DEFAULT_BASE_MS,
            backoff_cap_ms: 200,
            respawn_cap: Backoff::DEFAULT_MAX_RETRIES,
            poll_ms: 20,
            allow_partial: false,
            resume: false,
        }
    }
}

/// What one fleet run produced.
#[derive(Clone, Debug)]
pub struct FleetOutcome {
    /// Shard bytes per task, in task order; `None` exactly for the tasks
    /// listed in [`FleetOutcome::missing`].
    pub shards: Vec<Option<Vec<u8>>>,
    /// Tasks with no valid shard after the retry budget, ascending.
    pub missing: Vec<usize>,
    /// Whether every task produced a shard.
    pub complete: bool,
    /// Worker deaths observed (crashes, SIGKILLs, stall kills).
    pub worker_deaths: u64,
    /// Workers respawned.
    pub respawns: u64,
    /// Heartbeat stalls detected.
    pub stalls: u64,
    /// Task lease revocations (the retry count).
    pub retries: u64,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum TaskStatus {
    Pending,
    Done,
    Abandoned,
}

/// What the store currently holds for one task's shard job.
enum ShardState {
    /// Nothing published (or everything quarantined on an earlier poll).
    Missing,
    /// A validated shard.
    Valid(Vec<u8>),
    /// The newest shard failed frame validation and was quarantined just
    /// now; the task is retriable.
    Quarantined,
    /// A frame validated but its payload does not decode — nothing a
    /// retry can fix (defensive; unreachable via the supported writers).
    Poisoned,
}

/// Executes `workload` under `cfg` against `store`. See the module doc
/// for the loop contract; see [`crate::Workload`] for the determinism
/// contract that makes the merged bytes schedule-independent.
pub fn run_fleet(
    store: &Store,
    cfg: &FleetConfig,
    workload: &dyn Workload,
) -> Result<FleetOutcome, GuardError> {
    let _span = x2v_obs::span("fleet/run");
    if cfg.workers > 1 && cfg.worker_cmd.is_none() {
        return Err(GuardError::invalid_input(
            SITE,
            format!("{} workers requested but no worker_cmd given", cfg.workers),
        ));
    }
    let manifest = Manifest::of(workload);
    let fingerprint = manifest.fingerprint();
    prepare_store(store, cfg, &manifest, fingerprint)?;

    let mut outcome = if cfg.workers > 1 {
        run_supervised(store, cfg, workload, fingerprint)?
    } else {
        run_inline(store, cfg, workload, fingerprint)?
    };
    outcome.missing = outcome
        .shards
        .iter()
        .enumerate()
        .filter_map(|(t, s)| s.is_none().then_some(t))
        .collect();
    outcome.complete = outcome.missing.is_empty();

    if outcome.complete {
        cleanup_store(store, cfg, &manifest, fingerprint);
        return Ok(outcome);
    }
    if cfg.allow_partial {
        x2v_obs::counter_add(keys::fleet::PARTIAL, 1);
        x2v_obs::mark(keys::fleet::PARTIAL);
        x2v_guard::note_degraded();
        return Ok(outcome);
    }
    Err(GuardError::WorkerFailed {
        site: SITE,
        tasks: outcome.missing.clone(),
        retries: outcome.retries,
        detail: format!(
            "{} of {} tasks missing after {} worker deaths and {} stalls; \
             completed shards are durable — re-run with --resume",
            outcome.missing.len(),
            outcome.shards.len(),
            outcome.worker_deaths,
            outcome.stalls,
        ),
    })
}

/// Publishes the manifest and reconciles pre-existing protocol state:
/// matching manifest + `resume` keeps the shards; anything else clears
/// them so the run starts fresh. Leases and revocation markers are
/// transient per run either way — shards are the durable truth.
fn prepare_store(
    store: &Store,
    cfg: &FleetConfig,
    manifest: &Manifest,
    fingerprint: u32,
) -> Result<(), GuardError> {
    let mjob = protocol::manifest_job(&cfg.job);
    let payload = manifest.encode();
    let mut resumed = false;
    if cfg.resume {
        if let Some((_, existing)) = store.load_latest(&mjob, MANIFEST_KIND)? {
            resumed = existing == payload;
        }
        if resumed {
            x2v_ckpt::note_resumed();
        } else {
            x2v_ckpt::note_cold_start();
        }
    }
    if !resumed {
        for t in 0..manifest.num_tasks as usize {
            store.clear_job(&protocol::shard_job(&cfg.job, fingerprint, t))?;
        }
    }
    store.clear_named(&protocol::lease_job(&cfg.job))?;
    store.save(&mjob, MANIFEST_KIND, &payload)?;
    Ok(())
}

/// Removes a completed run's protocol state (best-effort; quarantined
/// files are kept by `clear_job`, as always).
fn cleanup_store(store: &Store, cfg: &FleetConfig, manifest: &Manifest, fingerprint: u32) {
    for t in 0..manifest.num_tasks as usize {
        let _ = store.clear_job(&protocol::shard_job(&cfg.job, fingerprint, t));
    }
    let _ = store.clear_named(&protocol::lease_job(&cfg.job));
    let _ = store.clear_job(&protocol::manifest_job(&cfg.job));
    for w in 0..cfg.workers as u64 {
        let _ = store.clear_job(&protocol::heartbeat_job(&cfg.job, w));
    }
}

fn shard_state(
    store: &Store,
    cfg: &FleetConfig,
    fingerprint: u32,
    task: usize,
) -> Result<ShardState, GuardError> {
    let job = protocol::shard_job(&cfg.job, fingerprint, task);
    if store.latest_generation(&job)?.is_none() {
        return Ok(ShardState::Missing);
    }
    match store.load_latest(&job, SHARD_KIND)? {
        Some((_, payload)) => match protocol::decode_shard(task, &payload) {
            Some(data) => Ok(ShardState::Valid(data)),
            None => Ok(ShardState::Poisoned),
        },
        // Present a moment ago, nothing loadable now: the scan quarantined
        // every generation of this shard job.
        None => Ok(ShardState::Quarantined),
    }
}

/// Revokes the current attempt of `task` (idempotent marker), counting
/// the retry. No-op when the task is already abandoned.
fn revoke_current(
    store: &Store,
    cfg: &FleetConfig,
    task: usize,
    max_attempts: u64,
    retries: &mut u64,
    why: &str,
) -> Result<(), GuardError> {
    if let Some(k) = protocol::current_attempt(store, &cfg.job, task, max_attempts) {
        store.save_named(
            &protocol::lease_job(&cfg.job),
            &protocol::revoked_name(task, k),
            MARK_KIND,
            why.as_bytes(),
        )?;
        *retries += 1;
        x2v_obs::counter_add(keys::fleet::RETRIES, 1);
        x2v_guard::note_retry();
    }
    Ok(())
}

/// The inline (single-process) executor: the reference every multi-worker
/// schedule must reproduce bit-for-bit. Tasks run in task order; the
/// `corrupt@fleet/shard` drill and the quarantine-retry loop still apply,
/// so even the degenerate fleet exercises the corruption path.
fn run_inline(
    store: &Store,
    cfg: &FleetConfig,
    workload: &dyn Workload,
    fingerprint: u32,
) -> Result<FleetOutcome, GuardError> {
    let budget = x2v_guard::ambient();
    let mut meter = budget.meter(SITE);
    let n = workload.num_tasks();
    let mut shards: Vec<Option<Vec<u8>>> = vec![None; n];
    let mut retries = 0u64;
    for (t, slot) in shards.iter_mut().enumerate() {
        meter.tick(1)?;
        let mut attempts = 0u64;
        loop {
            match shard_state(store, cfg, fingerprint, t)? {
                ShardState::Valid(data) => {
                    *slot = Some(data);
                    x2v_obs::counter_add(keys::fleet::TASKS_DONE, 1);
                    break;
                }
                ShardState::Poisoned => {
                    x2v_obs::counter_add(keys::fleet::SHARD_CORRUPT, 1);
                    break;
                }
                ShardState::Quarantined => {
                    x2v_obs::counter_add(keys::fleet::SHARD_CORRUPT, 1);
                    retries += 1;
                    x2v_obs::counter_add(keys::fleet::RETRIES, 1);
                    x2v_guard::note_retry();
                    attempts += 1;
                    if attempts > cfg.max_task_retries {
                        break;
                    }
                }
                ShardState::Missing => {
                    let data = workload.run_task(t)?;
                    protocol::publish_shard(store, &cfg.job, fingerprint, t, &data)?;
                    // Loop around: collection validates what landed on
                    // disk, so an injected corruption is caught here.
                }
            }
        }
    }
    Ok(FleetOutcome {
        shards,
        missing: Vec::new(),
        complete: false,
        worker_deaths: 0,
        respawns: 0,
        stalls: 0,
        retries,
    })
}

/// One worker slot: its subprocess, respawn budget and heartbeat watch.
struct Slot {
    worker: u64,
    child: Option<Child>,
    backoff: Backoff,
    respawn_at: Option<Instant>,
    retired: bool,
    hb_seen: Option<u64>,
    hb_changed: Instant,
}

/// Owns the live children; dropping it kills and reaps every one, so an
/// early `?` return (budget trip, storage failure) never leaks worker
/// processes.
struct Cohort {
    slots: Vec<Slot>,
}

impl Drop for Cohort {
    fn drop(&mut self) {
        for slot in &mut self.slots {
            if let Some(child) = slot.child.as_mut() {
                let _ = child.kill();
                let _ = child.wait();
            }
        }
    }
}

fn spawn_worker(
    store: &Store,
    cfg: &FleetConfig,
    worker: u64,
    max_attempts: u64,
    first_cohort: bool,
) -> Result<Child, GuardError> {
    let cmd_path = cfg
        .worker_cmd
        .as_ref()
        .expect("worker_cmd checked by run_fleet");
    let mut cmd = Command::new(cmd_path);
    cmd.arg(store.root())
        .arg(&cfg.job)
        .arg(worker.to_string())
        .arg(cfg.heartbeat_ms.to_string())
        .arg(max_attempts.to_string())
        .stdin(Stdio::null())
        .stdout(Stdio::null())
        .stderr(Stdio::inherit());
    // The supervisor's resource envelope is its own: workers must not
    // inherit the ambient budget/store/report plumbing.
    for var in ["X2V_BUDGET_MS", "X2V_OBS", "X2V_CKPT_DIR", "X2V_RESUME"] {
        cmd.env_remove(var);
    }
    if first_cohort {
        for (k, v) in &cfg.worker_env {
            cmd.env(k, v);
        }
    } else {
        // Respawns start clean: an armed one-shot fault already fired in
        // the cohort it was aimed at, and re-arming it in every respawn
        // would turn a drill into an unbounded crash loop.
        cmd.env_remove("X2V_FAULTS");
    }
    cmd.spawn().map_err(|e| {
        GuardError::storage(
            SITE,
            format!(
                "cannot spawn worker {} ({}): {e}",
                worker,
                cmd_path.display()
            ),
        )
    })
}

fn run_supervised(
    store: &Store,
    cfg: &FleetConfig,
    workload: &dyn Workload,
    fingerprint: u32,
) -> Result<FleetOutcome, GuardError> {
    let budget = x2v_guard::ambient();
    let mut meter = budget.meter(SITE);
    let n = workload.num_tasks();
    let max_attempts = cfg.max_task_retries + 1;
    let stall_timeout = Duration::from_millis(cfg.stall_timeout_ms.max(1));

    let mut status = vec![TaskStatus::Pending; n];
    let mut shards: Vec<Option<Vec<u8>>> = vec![None; n];
    let (mut deaths, mut respawns, mut stalls, mut retries) = (0u64, 0u64, 0u64, 0u64);

    let mut cohort = Cohort { slots: Vec::new() };
    for worker in 0..cfg.workers as u64 {
        cohort.slots.push(Slot {
            worker,
            child: Some(spawn_worker(store, cfg, worker, max_attempts, true)?),
            backoff: Backoff::new(cfg.backoff_seed, worker)
                .with_base_ms(cfg.backoff_base_ms)
                .with_cap_ms(cfg.backoff_cap_ms)
                .with_max_retries(cfg.respawn_cap),
            respawn_at: None,
            retired: false,
            hb_seen: None,
            hb_changed: Instant::now(),
        });
    }

    loop {
        // A tripped ambient budget (or cancel token) unwinds through here;
        // the Cohort drop kills the workers, and the shards already
        // collected stay durable for --resume.
        meter.tick(1)?;

        // 1. Collect shards; quarantined ones burn a retry.
        for t in 0..n {
            if status[t] == TaskStatus::Done {
                continue;
            }
            match shard_state(store, cfg, fingerprint, t)? {
                ShardState::Valid(data) => {
                    shards[t] = Some(data);
                    status[t] = TaskStatus::Done;
                    x2v_obs::counter_add(keys::fleet::TASKS_DONE, 1);
                }
                ShardState::Missing => {}
                ShardState::Quarantined => {
                    x2v_obs::counter_add(keys::fleet::SHARD_CORRUPT, 1);
                    x2v_obs::mark(keys::fleet::SHARD_CORRUPT);
                    revoke_current(store, cfg, t, max_attempts, &mut retries, "corrupt shard")?;
                }
                ShardState::Poisoned => {
                    x2v_obs::counter_add(keys::fleet::SHARD_CORRUPT, 1);
                    while protocol::current_attempt(store, &cfg.job, t, max_attempts).is_some() {
                        revoke_current(store, cfg, t, max_attempts, &mut retries, "poisoned")?;
                    }
                }
            }
            if status[t] == TaskStatus::Pending
                && protocol::current_attempt(store, &cfg.job, t, max_attempts).is_none()
            {
                status[t] = TaskStatus::Abandoned;
            }
        }
        if status.iter().all(|&s| s != TaskStatus::Pending) {
            break;
        }

        // 2. Reap deaths, watch heartbeats, fire due respawns.
        for slot in &mut cohort.slots {
            if let Some(child) = slot.child.as_mut() {
                let exited = child.try_wait().map_err(|e| {
                    GuardError::storage(SITE, format!("cannot reap worker {}: {e}", slot.worker))
                })?;
                if let Some(exit) = exited {
                    slot.child = None;
                    if exit.success() {
                        slot.retired = true;
                    } else {
                        deaths += 1;
                        x2v_obs::counter_add(keys::fleet::WORKER_DEATHS, 1);
                        x2v_obs::mark(keys::fleet::WORKER_DEATHS);
                        revoke_worker_leases(
                            store,
                            cfg,
                            slot.worker,
                            &status,
                            max_attempts,
                            &mut retries,
                        )?;
                        match slot.backoff.next_delay() {
                            Some(delay) => slot.respawn_at = Some(Instant::now() + delay),
                            None => slot.retired = true,
                        }
                    }
                } else {
                    let hb =
                        store.latest_generation(&protocol::heartbeat_job(&cfg.job, slot.worker))?;
                    if hb != slot.hb_seen {
                        slot.hb_seen = hb;
                        slot.hb_changed = Instant::now();
                    } else if slot.hb_changed.elapsed() >= stall_timeout {
                        stalls += 1;
                        x2v_obs::counter_add(keys::fleet::STALLS, 1);
                        x2v_obs::mark(keys::fleet::STALLS);
                        let _ = child.kill();
                        // The reap branch handles the death next poll.
                        slot.hb_changed = Instant::now();
                    }
                }
            } else if slot.respawn_at.is_some_and(|at| Instant::now() >= at) {
                slot.respawn_at = None;
                slot.child = Some(spawn_worker(store, cfg, slot.worker, max_attempts, false)?);
                slot.hb_seen =
                    store.latest_generation(&protocol::heartbeat_job(&cfg.job, slot.worker))?;
                slot.hb_changed = Instant::now();
                respawns += 1;
                x2v_obs::counter_add(keys::fleet::RESPAWNS, 1);
                x2v_obs::mark(keys::fleet::RESPAWNS);
            }
        }

        // 3. Nobody left to make progress. Workers exit cleanly when every
        // task looks settled *to them* — but a corrupt-shard revocation can
        // land after a worker's last sweep, leaving claimable work with no
        // one alive. Recall one retired worker for it, on the same respawn
        // budget; only when that budget is spent does the remainder get
        // abandoned instead of waiting forever.
        let alive = cohort
            .slots
            .iter()
            .any(|s| s.child.is_some() || s.respawn_at.is_some());
        if !alive {
            let mut recalled = false;
            if status.contains(&TaskStatus::Pending) {
                for slot in cohort.slots.iter_mut().filter(|s| s.retired) {
                    if let Some(delay) = slot.backoff.next_delay() {
                        slot.retired = false;
                        slot.respawn_at = Some(Instant::now() + delay);
                        recalled = true;
                        break; // one worker covers a handful of revoked tasks
                    }
                }
            }
            if !recalled {
                for s in status.iter_mut().filter(|s| **s == TaskStatus::Pending) {
                    *s = TaskStatus::Abandoned;
                }
                break;
            }
        }

        std::thread::sleep(Duration::from_millis(cfg.poll_ms.max(1)));
    }
    drop(cohort);

    // Final sweep: a worker may have published its last shard between the
    // supervisor's last collection and its exit.
    for (t, slot) in shards.iter_mut().enumerate() {
        if status[t] != TaskStatus::Done {
            if let ShardState::Valid(data) = shard_state(store, cfg, fingerprint, t)? {
                *slot = Some(data);
                status[t] = TaskStatus::Done;
                x2v_obs::counter_add(keys::fleet::TASKS_DONE, 1);
            }
        }
    }

    Ok(FleetOutcome {
        shards,
        missing: Vec::new(),
        complete: false,
        worker_deaths: deaths,
        respawns,
        stalls,
        retries,
    })
}

/// Revokes every pending-task lease owned by dead worker `worker`. A
/// claim that exists but does not decode was torn mid-write; revoking it
/// is always safe, because shard bytes never depend on who computes them
/// — a revoked-but-actually-live owner republishing is byte-identical
/// duplication, not divergence.
fn revoke_worker_leases(
    store: &Store,
    cfg: &FleetConfig,
    worker: u64,
    status: &[TaskStatus],
    max_attempts: u64,
    retries: &mut u64,
) -> Result<(), GuardError> {
    let lease = protocol::lease_job(&cfg.job);
    for (t, _) in status
        .iter()
        .enumerate()
        .filter(|(_, s)| **s == TaskStatus::Pending)
    {
        let Some(k) = protocol::current_attempt(store, &cfg.job, t, max_attempts) else {
            continue;
        };
        let claim = protocol::claim_name(t, k);
        if !store.named_exists(&lease, &claim) {
            continue;
        }
        let owner = store
            .load_named(&lease, &claim, LEASE_KIND)?
            .and_then(|p| Lease::decode(&p));
        let dead = match owner {
            Some(lease) => lease.worker == worker,
            None => true, // torn claim: its writer died mid-claim
        };
        if dead {
            revoke_current(store, cfg, t, max_attempts, retries, "owner died")?;
        }
    }
    Ok(())
}
