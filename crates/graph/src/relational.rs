//! Relational structures of arbitrary arity, their Gaifman and incidence
//! graphs (Section 4.2), and knowledge graphs (binary relational structures,
//! Section 2.3).

use crate::{DiGraph, Graph, GraphBuilder, GraphError, Result};

/// A relation symbol: a name and an arity.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RelationSymbol {
    /// Human-readable name (e.g. `"capital_of"`).
    pub name: String,
    /// Arity `k_i ≥ 1`.
    pub arity: usize,
}

/// A relational vocabulary `σ = {R_1, …, R_m}`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Vocabulary {
    symbols: Vec<RelationSymbol>,
}

impl Vocabulary {
    /// Builds a vocabulary from `(name, arity)` pairs.
    pub fn new(symbols: &[(&str, usize)]) -> Self {
        Vocabulary {
            symbols: symbols
                .iter()
                .map(|&(name, arity)| RelationSymbol {
                    name: name.to_string(),
                    arity,
                })
                .collect(),
        }
    }

    /// The relation symbols.
    pub fn symbols(&self) -> &[RelationSymbol] {
        &self.symbols
    }

    /// Number of relation symbols.
    pub fn len(&self) -> usize {
        self.symbols.len()
    }

    /// Whether the vocabulary is empty.
    pub fn is_empty(&self) -> bool {
        self.symbols.is_empty()
    }

    /// The maximum arity over all symbols (0 for an empty vocabulary).
    pub fn max_arity(&self) -> usize {
        self.symbols.iter().map(|s| s.arity).max().unwrap_or(0)
    }
}

/// A finite σ-structure `A = (V(A), R_1(A), …, R_m(A))`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Structure {
    vocabulary: Vocabulary,
    universe: usize,
    /// `relations[i]` lists the tuples of `R_i(A)`, deduplicated, sorted.
    relations: Vec<Vec<Vec<usize>>>,
}

impl Structure {
    /// Creates a structure with an empty interpretation of every relation.
    pub fn new(vocabulary: Vocabulary, universe: usize) -> Self {
        let m = vocabulary.len();
        Structure {
            vocabulary,
            universe,
            relations: vec![Vec::new(); m],
        }
    }

    /// Adds a tuple to relation `rel` (index into the vocabulary).
    ///
    /// # Errors
    /// Rejects wrong arity and out-of-range elements. Duplicate tuples are
    /// ignored (relations are sets).
    pub fn add_tuple(&mut self, rel: usize, tuple: &[usize]) -> Result<()> {
        let sym = &self.vocabulary.symbols()[rel];
        if tuple.len() != sym.arity {
            return Err(GraphError::ArityMismatch {
                relation: sym.name.clone(),
                expected: sym.arity,
                got: tuple.len(),
            });
        }
        for &x in tuple {
            if x >= self.universe {
                return Err(GraphError::NodeOutOfRange {
                    node: x,
                    order: self.universe,
                });
            }
        }
        let t = tuple.to_vec();
        if !self.relations[rel].contains(&t) {
            self.relations[rel].push(t);
        }
        Ok(())
    }

    /// Universe size.
    pub fn universe(&self) -> usize {
        self.universe
    }

    /// The vocabulary.
    pub fn vocabulary(&self) -> &Vocabulary {
        &self.vocabulary
    }

    /// Tuples of relation `rel`.
    pub fn tuples(&self, rel: usize) -> &[Vec<usize>] {
        &self.relations[rel]
    }

    /// The Gaifman graph: elements adjacent iff they co-occur in some tuple.
    pub fn gaifman_graph(&self) -> Graph {
        let mut b = GraphBuilder::new(self.universe);
        for tuples in &self.relations {
            for t in tuples {
                for i in 0..t.len() {
                    for j in (i + 1)..t.len() {
                        if t[i] != t[j] {
                            let _ = b.add_edge_idempotent(t[i], t[j]).expect("in range");
                        }
                    }
                }
            }
        }
        b.build()
    }

    /// The incidence graph encoding of the incidence structure `A_I`
    /// (Section 4.2), as a vertex-labelled undirected graph suitable for
    /// 1-WL / C² comparisons of structures over the same vocabulary:
    ///
    /// * one node per universe element, label `0`;
    /// * one node per tuple `(R_i, v_1, …, v_{k_i})`, label `1 + i`
    ///   (realising the unary predicates `P_i`);
    /// * the binary incidence relation `E_j` connecting position `j` of a
    ///   tuple to its element is realised by a subdivision node labelled
    ///   `1 + m + j` where `m` is the number of relation symbols — distinct
    ///   labels per position stand in for the edge-coloured relations `E_j`.
    pub fn incidence_graph(&self) -> Graph {
        let m = self.vocabulary.len();
        let n_tuples: usize = self.relations.iter().map(Vec::len).sum();
        let n_positions: usize = self
            .relations
            .iter()
            .enumerate()
            .map(|(i, ts)| ts.len() * self.vocabulary.symbols()[i].arity)
            .sum();
        let total = self.universe + n_tuples + n_positions;
        let mut b = GraphBuilder::new(total);
        let mut tuple_node = self.universe;
        let mut pos_node = self.universe + n_tuples;
        for (i, tuples) in self.relations.iter().enumerate() {
            for t in tuples {
                b.set_label(tuple_node, 1 + i as u32).expect("in range");
                for (j, &elem) in t.iter().enumerate() {
                    b.set_label(pos_node, (1 + m + j) as u32).expect("in range");
                    b.add_edge(tuple_node, pos_node).expect("fresh");
                    let _ = b.add_edge_idempotent(pos_node, elem).expect("in range");
                    pos_node += 1;
                }
                tuple_node += 1;
            }
        }
        b.build()
    }

    /// Wraps a graph as a `{E/2}`-structure (the standard encoding; each
    /// undirected edge contributes both orientations of `E`).
    pub fn from_graph(g: &Graph) -> Self {
        let vocab = Vocabulary::new(&[("E", 2)]);
        let mut s = Structure::new(vocab, g.order());
        for (u, v) in g.edges() {
            s.add_tuple(0, &[u, v]).expect("valid edge");
            s.add_tuple(0, &[v, u]).expect("valid edge");
        }
        s
    }
}

/// A knowledge graph: entities, relation types, and (head, relation, tail)
/// triples — the input of TransE and RESCAL (Section 2.3).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct KnowledgeGraph {
    n_entities: usize,
    n_relations: usize,
    triples: Vec<(usize, usize, usize)>,
}

impl KnowledgeGraph {
    /// Creates a knowledge graph from `(head, relation, tail)` triples.
    ///
    /// # Errors
    /// Rejects out-of-range entities/relations. Duplicates are dropped.
    pub fn new(
        n_entities: usize,
        n_relations: usize,
        triples: &[(usize, usize, usize)],
    ) -> Result<Self> {
        let mut kept = Vec::with_capacity(triples.len());
        for &(h, r, t) in triples {
            if h >= n_entities {
                return Err(GraphError::NodeOutOfRange {
                    node: h,
                    order: n_entities,
                });
            }
            if t >= n_entities {
                return Err(GraphError::NodeOutOfRange {
                    node: t,
                    order: n_entities,
                });
            }
            if r >= n_relations {
                return Err(GraphError::NodeOutOfRange {
                    node: r,
                    order: n_relations,
                });
            }
            if !kept.contains(&(h, r, t)) {
                kept.push((h, r, t));
            }
        }
        Ok(KnowledgeGraph {
            n_entities,
            n_relations,
            triples: kept,
        })
    }

    /// Number of entities.
    pub fn n_entities(&self) -> usize {
        self.n_entities
    }

    /// Number of relation types.
    pub fn n_relations(&self) -> usize {
        self.n_relations
    }

    /// All triples.
    pub fn triples(&self) -> &[(usize, usize, usize)] {
        &self.triples
    }

    /// Whether a triple is present.
    pub fn contains(&self, h: usize, r: usize, t: usize) -> bool {
        self.triples.contains(&(h, r, t))
    }

    /// The directed graph of one relation type.
    pub fn relation_digraph(&self, r: usize) -> DiGraph {
        let arcs: Vec<(usize, usize)> = self
            .triples
            .iter()
            .filter(|&&(_, rr, _)| rr == r)
            .map(|&(h, _, t)| (h, t))
            .collect();
        DiGraph::from_arcs(self.n_entities, &arcs).expect("validated at construction")
    }

    /// Dense adjacency matrix `A_R` of relation `r`, row-major `n × n`.
    pub fn relation_adjacency_flat(&self, r: usize) -> Vec<f64> {
        let n = self.n_entities;
        let mut a = vec![0.0; n * n];
        for &(h, rr, t) in &self.triples {
            if rr == r {
                a[h * n + t] = 1.0;
            }
        }
        a
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ternary_example() -> Structure {
        // R(x, y, z) ternary, S(x) unary over a 4-element universe.
        let vocab = Vocabulary::new(&[("R", 3), ("S", 1)]);
        let mut s = Structure::new(vocab, 4);
        s.add_tuple(0, &[0, 1, 2]).unwrap();
        s.add_tuple(0, &[1, 2, 3]).unwrap();
        s.add_tuple(1, &[0]).unwrap();
        s
    }

    #[test]
    fn arity_and_range_checked() {
        let mut s = ternary_example();
        assert!(matches!(
            s.add_tuple(0, &[0, 1]),
            Err(GraphError::ArityMismatch {
                expected: 3,
                got: 2,
                ..
            })
        ));
        assert!(s.add_tuple(1, &[9]).is_err());
        // duplicates ignored
        s.add_tuple(1, &[0]).unwrap();
        assert_eq!(s.tuples(1).len(), 1);
    }

    #[test]
    fn gaifman_graph_of_ternary() {
        let s = ternary_example();
        let g = s.gaifman_graph();
        assert!(g.has_edge(0, 1));
        assert!(g.has_edge(0, 2));
        assert!(g.has_edge(1, 3));
        assert!(!g.has_edge(0, 3));
        assert_eq!(g.size(), 5);
    }

    #[test]
    fn incidence_graph_counts() {
        let s = ternary_example();
        let ig = s.incidence_graph();
        // 4 elements + 3 tuples + (2*3 + 1*1) position nodes
        assert_eq!(ig.order(), 4 + 3 + 7);
        // tuple nodes carry relation labels
        assert_eq!(ig.label(4), 1); // first R-tuple
        assert_eq!(ig.label(6), 2); // the S-tuple
                                    // every position node has degree 2 (tuple + element)
        for v in 7..14 {
            assert_eq!(ig.degree(v), 2, "position node {v}");
        }
    }

    #[test]
    fn graph_structure_roundtrip() {
        let g = crate::generators::cycle(4);
        let s = Structure::from_graph(&g);
        assert_eq!(s.tuples(0).len(), 8); // both orientations
        assert_eq!(s.gaifman_graph(), g);
    }

    #[test]
    fn knowledge_graph_accessors() {
        let kg = KnowledgeGraph::new(4, 2, &[(0, 0, 1), (1, 0, 2), (0, 1, 3), (0, 0, 1)]).unwrap();
        assert_eq!(kg.triples().len(), 3); // duplicate dropped
        assert!(kg.contains(0, 0, 1));
        assert!(!kg.contains(1, 1, 0));
        let d = kg.relation_digraph(0);
        assert_eq!(d.size(), 2);
        let a = kg.relation_adjacency_flat(1);
        assert_eq!(a[3], 1.0); // (0,3)
        assert_eq!(a[12], 0.0); // (3,0)
    }

    #[test]
    fn knowledge_graph_rejects_out_of_range() {
        assert!(KnowledgeGraph::new(2, 1, &[(0, 0, 5)]).is_err());
        assert!(KnowledgeGraph::new(2, 1, &[(0, 3, 1)]).is_err());
    }
}
