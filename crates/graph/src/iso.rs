//! Ground-truth isomorphism testing for small graphs.
//!
//! Backtracking search with equitable-partition pruning. This is the oracle
//! the workspace checks WL and homomorphism-vector results against (e.g.
//! verifying that CFI pairs are genuinely non-isomorphic although k-WL cannot
//! tell them apart). It is exact but exponential in the worst case; intended
//! for graphs of a few dozen nodes.
//!
//! The equitable-partition routine here is deliberately minimal and private
//! to this crate; the fully-featured, interned, multi-graph Weisfeiler-Leman
//! implementation lives in the `x2v-wl` crate.

use crate::Graph;

/// Computes the coarsest equitable partition refining the label partition.
///
/// Colours are canonical: they are assigned by sorted signature order each
/// round, so two graphs receive comparable colour ids and the multiset of
/// colours is an isomorphism invariant.
pub fn equitable_partition(g: &Graph) -> Vec<usize> {
    let n = g.order();
    // Initial colours: rank of label among sorted distinct labels.
    let mut distinct: Vec<u32> = g.labels().to_vec();
    distinct.sort_unstable();
    distinct.dedup();
    let mut colour: Vec<usize> = g
        .labels()
        .iter()
        .map(|l| distinct.binary_search(l).expect("label present"))
        .collect();
    let mut num_colours = distinct.len().max(1);
    loop {
        // Signature of v: (colour(v), sorted colours of neighbours).
        let mut sigs: Vec<(Vec<usize>, usize)> = (0..n)
            .map(|v| {
                let mut s = Vec::with_capacity(g.degree(v) + 1);
                s.push(colour[v]);
                let mut nb: Vec<usize> = g.neighbours(v).iter().map(|&w| colour[w]).collect();
                nb.sort_unstable();
                s.extend_from_slice(&nb);
                (s, v)
            })
            .collect();
        sigs.sort();
        let mut new_colour = vec![0usize; n];
        let mut next = 0usize;
        for i in 0..n {
            if i > 0 && sigs[i].0 != sigs[i - 1].0 {
                next += 1;
            }
            new_colour[sigs[i].1] = next;
        }
        let new_num = next + 1;
        if new_num == num_colours {
            return new_colour;
        }
        colour = new_colour;
        num_colours = new_num;
    }
}

/// Histogram of colour-class sizes, sorted — an isomorphism invariant.
fn partition_profile(colour: &[usize]) -> Vec<(usize, usize)> {
    let k = colour.iter().copied().max().map_or(0, |m| m + 1);
    let mut count = vec![0usize; k];
    for &c in colour {
        count[c] += 1;
    }
    count.into_iter().enumerate().collect()
}

/// Verifies that `map` (node `v` of `g` ↦ `map[v]` of `h`) is an isomorphism.
pub fn is_isomorphism(g: &Graph, h: &Graph, map: &[usize]) -> bool {
    if g.order() != h.order() || map.len() != g.order() {
        return false;
    }
    let mut seen = vec![false; h.order()];
    for &im in map {
        if im >= h.order() || seen[im] {
            return false;
        }
        seen[im] = true;
    }
    for v in 0..g.order() {
        if g.label(v) != h.label(map[v]) {
            return false;
        }
    }
    for u in 0..g.order() {
        for v in (u + 1)..g.order() {
            if g.has_edge(u, v) != h.has_edge(map[u], map[v]) {
                return false;
            }
        }
    }
    true
}

struct IsoSearch<'a> {
    g: &'a Graph,
    h: &'a Graph,
    gc: Vec<usize>,
    hc: Vec<usize>,
    /// map[v] = image in h, usize::MAX if unassigned
    map: Vec<usize>,
    used: Vec<bool>,
    order: Vec<usize>,
    count_all: bool,
    found: u64,
}

impl IsoSearch<'_> {
    fn search(&mut self, depth: usize) -> bool {
        if depth == self.order.len() {
            self.found += 1;
            return !self.count_all;
        }
        let v = self.order[depth];
        for w in 0..self.h.order() {
            if self.used[w] || self.hc[w] != self.gc[v] {
                continue;
            }
            // Consistency with already-mapped nodes.
            let ok = self.order[..depth]
                .iter()
                .all(|&u| self.g.has_edge(v, u) == self.h.has_edge(w, self.map[u]));
            if !ok {
                continue;
            }
            self.map[v] = w;
            self.used[w] = true;
            if self.search(depth + 1) {
                return true;
            }
            self.used[w] = false;
            self.map[v] = usize::MAX;
        }
        false
    }
}

fn prepared_search<'a>(g: &'a Graph, h: &'a Graph, count_all: bool) -> Option<IsoSearch<'a>> {
    if g.order() != h.order() || g.size() != h.size() {
        return None;
    }
    let gc = equitable_partition(g);
    let hc = equitable_partition(h);
    if partition_profile(&gc) != partition_profile(&hc) {
        return None;
    }
    // Map nodes in order of ascending colour-class size (most constrained first).
    let k = gc.iter().copied().max().map_or(0, |m| m + 1);
    let mut class_size = vec![0usize; k];
    for &c in &gc {
        class_size[c] += 1;
    }
    let mut order: Vec<usize> = (0..g.order()).collect();
    order.sort_by_key(|&v| (class_size[gc[v]], gc[v], v));
    Some(IsoSearch {
        g,
        h,
        gc,
        hc,
        map: vec![usize::MAX; g.order()],
        used: vec![false; h.order()],
        order,
        count_all,
        found: 0,
    })
}

/// Finds an isomorphism `g → h` if one exists.
pub fn find_isomorphism(g: &Graph, h: &Graph) -> Option<Vec<usize>> {
    let mut s = prepared_search(g, h, false)?;
    if s.search(0) {
        Some(s.map)
    } else {
        None
    }
}

/// Whether `g` and `h` are isomorphic (exact).
pub fn are_isomorphic(g: &Graph, h: &Graph) -> bool {
    find_isomorphism(g, h).is_some()
}

/// The number of automorphisms `aut(G)` (Section 4's `aut` used in the
/// Lovász decomposition `HOM = P · D · M`).
pub fn automorphism_count(g: &Graph) -> u64 {
    match prepared_search(g, g, true) {
        Some(mut s) => {
            s.search(0);
            s.found
        }
        None => unreachable!("a graph always matches itself structurally"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{complete, cycle, path, petersen, star};
    use crate::ops::{disjoint_union, permute};

    #[test]
    fn c6_not_isomorphic_to_two_triangles() {
        let c6 = cycle(6);
        let tt = disjoint_union(&cycle(3), &cycle(3));
        assert!(!are_isomorphic(&c6, &tt));
    }

    #[test]
    fn permutations_are_isomorphic() {
        let g = petersen();
        let p = permute(&g, &[3, 1, 4, 0, 5, 9, 2, 6, 8, 7]);
        let map = find_isomorphism(&g, &p).expect("isomorphic");
        assert!(is_isomorphism(&g, &p, &map));
    }

    #[test]
    fn labels_block_isomorphism() {
        let g = path(2).with_labels(vec![1, 2]).unwrap();
        let h = path(2).with_labels(vec![1, 1]).unwrap();
        assert!(!are_isomorphic(&g, &h));
        let h2 = path(2).with_labels(vec![2, 1]).unwrap();
        assert!(are_isomorphic(&g, &h2));
    }

    #[test]
    fn automorphism_counts_known() {
        assert_eq!(automorphism_count(&complete(4)), 24);
        assert_eq!(automorphism_count(&cycle(5)), 10); // dihedral D5
        assert_eq!(automorphism_count(&path(4)), 2);
        assert_eq!(automorphism_count(&star(3)), 6); // leaves permute
        assert_eq!(automorphism_count(&petersen()), 120);
    }

    #[test]
    fn equitable_partition_path() {
        // P4: ends form one class, middles another.
        let p = path(4);
        let c = equitable_partition(&p);
        assert_eq!(c[0], c[3]);
        assert_eq!(c[1], c[2]);
        assert_ne!(c[0], c[1]);
    }

    #[test]
    fn equitable_partition_canonical_across_graphs() {
        // Same graph, permuted: profiles must agree class-by-class.
        let g = star(4);
        let h = permute(&g, &[4, 3, 2, 1, 0]);
        let pg = partition_profile(&equitable_partition(&g));
        let ph = partition_profile(&equitable_partition(&h));
        assert_eq!(pg, ph);
    }

    #[test]
    fn regular_graphs_single_class() {
        let c = equitable_partition(&cycle(7));
        assert!(c.iter().all(|&x| x == 0));
    }

    #[test]
    fn different_sizes_fast_reject() {
        assert!(!are_isomorphic(&path(3), &path(4)));
        assert!(!are_isomorphic(&cycle(4), &path(4)));
    }
}
