//! The Cai–Fürer–Immerman (CFI) construction (Section 3.3, [24]).
//!
//! Given a connected base graph `G`, the construction produces, for each set
//! `T ⊆ E(G)` of *twisted* edges, a graph `CFI(G, T)`. Its isomorphism type
//! depends only on the parity of `|T|`: the *untwisted* graph (even parity)
//! and the *twisted* graph (odd parity) are non-isomorphic, yet k-WL cannot
//! distinguish them whenever the base graph has treewidth greater than `k`.
//! These are the canonical hard instances separating the WL hierarchy.
//!
//! Gadget layout for base vertex `v` of degree `d` and base edge `e = {u,v}`:
//!
//! * *edge nodes* `e_v^0`, `e_v^1` for each endpoint `v` of `e` — labelled by
//!   the base edge id;
//! * *inner nodes* `(v, S)` for each even-cardinality `S ⊆ E(v)` — labelled
//!   by the base vertex id; `(v, S)` is adjacent to `e_v^1` for `e ∈ S` and
//!   to `e_v^0` for `e ∈ E(v) \ S`;
//! * `e_u^a` is adjacent to `e_v^b` iff `a ⊕ b = [e ∈ T]`.

use crate::{Graph, GraphBuilder};

/// A CFI instance over a base graph.
pub struct CfiBuilder<'a> {
    base: &'a Graph,
}

impl<'a> CfiBuilder<'a> {
    /// Prepares the construction over a connected base graph.
    pub fn new(base: &'a Graph) -> Self {
        assert!(
            crate::dist::is_connected(base),
            "CFI parity argument needs a connected base"
        );
        CfiBuilder { base }
    }

    /// Builds `CFI(G, T)` where `T` is given as indices into
    /// `base.edge_vec()`.
    pub fn build(&self, twisted_edges: &[usize]) -> Graph {
        let base = self.base;
        let n = base.order();
        let edges = base.edge_vec();
        let m = edges.len();

        // Edge-node ids: for edge index e and endpoint side s ∈ {0 = lower
        // endpoint, 1 = higher endpoint} and bit b: 4 nodes per edge.
        let edge_node = |e: usize, side: usize, bit: usize| e * 4 + side * 2 + bit;
        let n_edge_nodes = 4 * m;

        // Incident edge indices per base vertex, with the side of v.
        let mut incident: Vec<Vec<(usize, usize)>> = vec![Vec::new(); n];
        for (e, &(u, v)) in edges.iter().enumerate() {
            incident[u].push((e, 0));
            incident[v].push((e, 1));
        }

        // Inner-node ids: for vertex v, one per even subset of its incident
        // edges, enumerated in mask order.
        let mut inner_offset = vec![0usize; n + 1];
        for v in 0..n {
            let d = incident[v].len();
            let count = if d == 0 { 1 } else { 1usize << (d - 1) };
            inner_offset[v + 1] = inner_offset[v] + count;
        }
        let total = n_edge_nodes + inner_offset[n];
        let mut b = GraphBuilder::new(total);

        // Labels: edge nodes by base edge, inner nodes by base vertex
        // (offset so labels don't collide).
        for e in 0..m {
            for side in 0..2 {
                for bit in 0..2 {
                    b.set_label(edge_node(e, side, bit), (1 + e) as u32)
                        .expect("in range");
                }
            }
        }

        // Edge-to-edge connections, twisted or straight.
        for e in 0..m {
            let twist = twisted_edges.contains(&e) as usize;
            for a in 0..2 {
                let bv = a ^ twist;
                b.add_edge(edge_node(e, 0, a), edge_node(e, 1, bv))
                    .expect("fresh");
            }
        }

        // Inner gadget nodes.
        for v in 0..n {
            let d = incident[v].len();
            let mut idx = 0usize;
            for mask in 0..(1usize << d) {
                if !(mask.count_ones() as usize).is_multiple_of(2) {
                    continue;
                }
                let node = n_edge_nodes + inner_offset[v] + idx;
                idx += 1;
                b.set_label(node, (1 + m + v) as u32).expect("in range");
                for (i, &(e, side)) in incident[v].iter().enumerate() {
                    let bit = (mask >> i) & 1;
                    b.add_edge(node, edge_node(e, side, bit)).expect("fresh");
                }
            }
        }
        b.build()
    }

    /// The untwisted CFI graph (`T = ∅`).
    pub fn untwisted(&self) -> Graph {
        self.build(&[])
    }

    /// The twisted CFI graph (one twisted edge; any single edge gives the
    /// same isomorphism type over a connected base).
    pub fn twisted(&self) -> Graph {
        self.build(&[0])
    }
}

/// Convenience: the (untwisted, twisted) CFI pair over `base`.
pub fn cfi_pair(base: &Graph) -> (Graph, Graph) {
    let b = CfiBuilder::new(base);
    (b.untwisted(), b.twisted())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{complete, cycle};
    use crate::iso::are_isomorphic;

    #[test]
    fn cfi_sizes() {
        // Base K4: 6 edges * 4 + 4 vertices * 2^(3-1) = 24 + 16 = 40 nodes.
        let (g, h) = cfi_pair(&complete(4));
        assert_eq!(g.order(), 40);
        assert_eq!(h.order(), 40);
        assert_eq!(g.size(), h.size());
        assert_eq!(g.degree_sequence(), h.degree_sequence());
    }

    #[test]
    fn twist_parity_determines_isomorphism() {
        let base = cycle(4);
        let b = CfiBuilder::new(&base);
        let even0 = b.build(&[]);
        let even2 = b.build(&[0, 2]);
        let odd1 = b.build(&[1]);
        let odd3 = b.build(&[0, 1, 3]);
        assert!(are_isomorphic(&even0, &even2));
        assert!(are_isomorphic(&odd1, &odd3));
        assert!(!are_isomorphic(&even0, &odd1));
    }

    #[test]
    fn cfi_pair_nonisomorphic_over_k4() {
        let (g, h) = cfi_pair(&complete(4));
        assert!(!are_isomorphic(&g, &h));
    }

    #[test]
    #[should_panic(expected = "connected base")]
    fn disconnected_base_rejected() {
        let base = crate::ops::disjoint_union(&cycle(3), &cycle(3));
        let _ = CfiBuilder::new(&base);
    }
}
