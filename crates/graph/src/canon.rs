//! Canonical forms for small graphs.
//!
//! [`canonical_key`] returns a byte string equal for two graphs iff they are
//! isomorphic (labels respected). Used to deduplicate exhaustive graph
//! universes in [`crate::enumerate`]. The search permutes nodes within
//! equitable-partition classes only, which keeps the worst case (regular
//! graphs) to `∏ |class|!` — fine for the ≤ 8-node universes we enumerate.

use crate::iso::equitable_partition;
use crate::Graph;

/// Upper-triangle adjacency bitstring of `g` under node ordering `perm`
/// (`perm[i]` = original node placed at position `i`), packed into u64 words,
/// preceded by the label sequence.
fn key_under(g: &Graph, perm: &[usize]) -> Vec<u64> {
    let n = g.order();
    let nbits = n * (n - 1) / 2;
    let mut key = Vec::with_capacity(n + nbits.div_ceil(64));
    for &v in perm {
        key.push(g.label(v) as u64);
    }
    let mut word = 0u64;
    let mut fill = 0usize;
    for i in 0..n {
        for j in (i + 1)..n {
            word <<= 1;
            if g.has_edge(perm[i], perm[j]) {
                word |= 1;
            }
            fill += 1;
            if fill == 64 {
                key.push(word);
                word = 0;
                fill = 0;
            }
        }
    }
    if fill > 0 {
        key.push(word << (64 - fill));
    }
    key
}

struct CanonSearch<'a> {
    g: &'a Graph,
    /// nodes grouped by colour class, classes in canonical colour order
    classes: Vec<Vec<usize>>,
    perm: Vec<usize>,
    best: Option<Vec<u64>>,
}

impl CanonSearch<'_> {
    fn go(&mut self, class_idx: usize, remaining: Vec<usize>) {
        if class_idx == self.classes.len() {
            let key = key_under(self.g, &self.perm);
            if self.best.as_ref().is_none_or(|b| key < *b) {
                self.best = Some(key);
            }
            return;
        }
        // Choose each remaining node of this class as next in the ordering.
        if remaining.is_empty() {
            let next_remaining = self.classes.get(class_idx + 1).cloned().unwrap_or_default();
            self.go(class_idx + 1, next_remaining);
            return;
        }
        for i in 0..remaining.len() {
            let mut rest = remaining.clone();
            let v = rest.swap_remove(i);
            self.perm.push(v);
            if rest.is_empty() {
                let next_remaining = self.classes.get(class_idx + 1).cloned().unwrap_or_default();
                self.go(class_idx + 1, next_remaining);
            } else {
                self.go(class_idx, rest);
            }
            self.perm.pop();
        }
    }
}

/// A canonical key: equal for two graphs iff they are isomorphic.
///
/// The key starts with the order `n`, then the canonical label sequence, then
/// the canonical upper-triangle adjacency bits.
pub fn canonical_key(g: &Graph) -> Vec<u64> {
    let n = g.order();
    if n == 0 {
        return vec![0];
    }
    let colour = equitable_partition(g);
    let k = colour.iter().copied().max().map_or(0, |m| m + 1);
    let mut classes: Vec<Vec<usize>> = vec![Vec::new(); k];
    for (v, &c) in colour.iter().enumerate() {
        classes[c].push(v);
    }
    // Smaller classes first cuts the search tree; ties broken by colour id,
    // which is canonical (see `equitable_partition`).
    classes.sort_by_key(|c| (c.len(), colour[c[0]]));
    let first = classes[0].clone();
    let mut search = CanonSearch {
        g,
        classes,
        perm: Vec::with_capacity(n),
        best: None,
    };
    search.go(0, first);
    let mut key = Vec::with_capacity(2 + n);
    key.push(n as u64);
    key.extend(search.best.expect("at least one ordering"));
    key
}

/// Canonical AHU encoding of a tree graph (must be connected and acyclic),
/// invariant under isomorphism. Two trees get the same string iff isomorphic.
pub fn tree_canonical(g: &Graph) -> String {
    let n = g.order();
    assert!(n >= 1, "empty tree has no canonical form");
    debug_assert_eq!(g.size(), n - 1, "not a tree (wrong edge count)");
    if n == 1 {
        return "()".to_string();
    }
    let centroids = tree_centroids(g);
    match centroids.as_slice() {
        [c] => ahu(g, *c, usize::MAX),
        [c1, c2] => {
            // Split at the centroid edge and combine canonically.
            let a = ahu(g, *c1, *c2);
            let b = ahu(g, *c2, *c1);
            if a <= b {
                format!("[{a}{b}]")
            } else {
                format!("[{b}{a}]")
            }
        }
        _ => unreachable!("a tree has 1 or 2 centroids"),
    }
}

/// AHU canonical string of the subtree rooted at `v`, entered from `parent`
/// (`usize::MAX` for the root). Children encodings are sorted.
fn ahu(g: &Graph, v: usize, parent: usize) -> String {
    let mut kids: Vec<String> = g
        .neighbours(v)
        .iter()
        .filter(|&&w| w != parent)
        .map(|&w| ahu(g, w, v))
        .collect();
    kids.sort();
    let mut s = String::with_capacity(2 + kids.iter().map(String::len).sum::<usize>());
    s.push('(');
    for k in &kids {
        s.push_str(k);
    }
    s.push(')');
    s
}

/// The centroid(s) of a tree: node(s) minimising the maximum component size
/// after removal. Every tree has one or two centroids.
pub fn tree_centroids(g: &Graph) -> Vec<usize> {
    let n = g.order();
    if n == 1 {
        return vec![0];
    }
    // subtree sizes via iterative post-order from node 0
    let mut parent = vec![usize::MAX; n];
    let mut order = Vec::with_capacity(n);
    let mut stack = vec![0usize];
    let mut seen = vec![false; n];
    seen[0] = true;
    while let Some(v) = stack.pop() {
        order.push(v);
        for &w in g.neighbours(v) {
            if !seen[w] {
                seen[w] = true;
                parent[w] = v;
                stack.push(w);
            }
        }
    }
    let mut size = vec![1usize; n];
    for &v in order.iter().rev() {
        if parent[v] != usize::MAX {
            size[parent[v]] += size[v];
        }
    }
    let mut best = n;
    let mut cents = Vec::new();
    for v in 0..n {
        let mut biggest = n - size[v]; // the component containing the parent
        for &w in g.neighbours(v) {
            if parent[w] == v {
                biggest = biggest.max(size[w]);
            }
        }
        match biggest.cmp(&best) {
            std::cmp::Ordering::Less => {
                best = biggest;
                cents = vec![v];
            }
            std::cmp::Ordering::Equal => cents.push(v),
            std::cmp::Ordering::Greater => {}
        }
    }
    cents
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{balanced_binary_tree, cycle, path, star};
    use crate::iso::are_isomorphic;
    use crate::ops::{disjoint_union, permute};

    #[test]
    fn canonical_key_matches_isomorphism() {
        let g = cycle(6);
        let h = permute(&g, &[2, 4, 0, 5, 1, 3]);
        assert_eq!(canonical_key(&g), canonical_key(&h));
        let tt = disjoint_union(&cycle(3), &cycle(3));
        assert_ne!(canonical_key(&g), canonical_key(&tt));
    }

    #[test]
    fn canonical_key_respects_labels() {
        let g = path(2).with_labels(vec![0, 1]).unwrap();
        let h = path(2).with_labels(vec![1, 0]).unwrap();
        let i = path(2).with_labels(vec![0, 0]).unwrap();
        assert_eq!(canonical_key(&g), canonical_key(&h));
        assert_ne!(canonical_key(&g), canonical_key(&i));
    }

    #[test]
    fn canonical_key_separates_small_nonisomorphic() {
        // All 4-node, 3-edge graphs: P4, star, triangle+isolated
        let p4 = path(4);
        let s3 = star(3);
        let t1 = disjoint_union(&cycle(3), &path(1));
        let keys = [canonical_key(&p4), canonical_key(&s3), canonical_key(&t1)];
        assert_ne!(keys[0], keys[1]);
        assert_ne!(keys[0], keys[2]);
        assert_ne!(keys[1], keys[2]);
        assert!(!are_isomorphic(&p4, &s3));
    }

    #[test]
    fn tree_canonical_invariance() {
        let t = balanced_binary_tree(3);
        let p = permute(&t, &[6, 5, 4, 3, 2, 1, 0]);
        assert_eq!(tree_canonical(&t), tree_canonical(&p));
        assert_ne!(tree_canonical(&t), tree_canonical(&path(7)));
    }

    #[test]
    fn centroids_of_path() {
        assert_eq!(tree_centroids(&path(5)), vec![2]);
        let c = tree_centroids(&path(6));
        assert_eq!(c.len(), 2);
        assert!(c.contains(&2) && c.contains(&3));
    }

    #[test]
    fn centroid_of_star() {
        assert_eq!(tree_centroids(&star(5)), vec![0]);
    }

    #[test]
    fn two_centroid_trees_distinguished() {
        // P6 vs the "H" tree (two centroids each) must differ.
        let p6 = path(6);
        let h = crate::Graph::from_edges_unchecked(6, &[(0, 2), (1, 2), (2, 3), (3, 4), (3, 5)]);
        assert_ne!(tree_canonical(&p6), tree_canonical(&h));
    }
}
