//! Compressed sparse row (CSR) adjacency: the flat `offsets`/`targets`
//! layout the hot loops scan.
//!
//! [`Graph`] already stores its neighbour lists in CSR form; this module
//! makes that layout a first-class citizen. [`CsrView`] is the zero-copy
//! borrowed view ([`Graph::csr`]) that WL refinement and walk generation
//! iterate — two flat arrays, no per-node indirection, cache-friendly
//! sequential scans. [`Csr`] is the owned variant for building adjacency
//! directly from edge streams or per-node lists without going through
//! [`Graph`]'s simple-graph validation (parallel edges and self-loops are
//! representable; WL and walks are well defined on multigraphs).
//!
//! Invariants shared by both: `offsets` has length `n + 1`, starts at `0`,
//! is non-decreasing and ends at `targets.len()`; each node's target slice
//! is sorted ascending. Construction canonicalises input order, so two
//! builds from the same multiset of edges are byte-identical — the
//! deterministic-ordering contract the round-trip proptests pin down.

use crate::{Graph, GraphError, Result};

/// A borrowed CSR adjacency view: two flat slices.
///
/// `Copy`, pointer-sized, and free to construct — pass it by value into
/// hot loops instead of re-borrowing a [`Graph`] per node.
#[derive(Clone, Copy, Debug)]
pub struct CsrView<'a> {
    offsets: &'a [usize],
    targets: &'a [usize],
}

impl<'a> CsrView<'a> {
    /// Wraps raw CSR arrays.
    ///
    /// # Panics
    /// If the arrays violate the CSR invariants (empty/non-monotone
    /// offsets, dangling final offset).
    pub fn new(offsets: &'a [usize], targets: &'a [usize]) -> Self {
        assert!(!offsets.is_empty(), "offsets must have length n + 1");
        assert_eq!(offsets[0], 0, "offsets must start at 0");
        assert_eq!(
            *offsets.last().expect("non-empty"),
            targets.len(),
            "final offset must equal targets.len()"
        );
        debug_assert!(offsets.windows(2).all(|w| w[0] <= w[1]));
        CsrView { offsets, targets }
    }

    /// Number of nodes.
    #[inline]
    pub fn order(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Total number of stored target entries (2·edges for an undirected
    /// simple graph).
    #[inline]
    pub fn nnz(&self) -> usize {
        self.targets.len()
    }

    /// Sorted neighbour slice of `v`.
    #[inline]
    pub fn neighbours(&self, v: usize) -> &'a [usize] {
        &self.targets[self.offsets[v]..self.offsets[v + 1]]
    }

    /// Degree of `v`.
    #[inline]
    pub fn degree(&self, v: usize) -> usize {
        self.offsets[v + 1] - self.offsets[v]
    }

    /// The raw offset array, length `order() + 1`.
    #[inline]
    pub fn offsets(&self) -> &'a [usize] {
        self.offsets
    }

    /// The raw concatenated target array.
    #[inline]
    pub fn targets(&self) -> &'a [usize] {
        self.targets
    }
}

impl Graph {
    /// Zero-copy CSR view of this graph's adjacency — the representation
    /// the WL and walk hot loops scan.
    #[inline]
    pub fn csr(&self) -> CsrView<'_> {
        CsrView {
            offsets: self.csr_offsets(),
            targets: self.csr_targets(),
        }
    }
}

/// An owned CSR adjacency structure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Csr {
    offsets: Vec<usize>,
    targets: Vec<usize>,
}

impl Csr {
    /// Copies a graph's adjacency into an owned CSR.
    pub fn from_graph(g: &Graph) -> Self {
        let v = g.csr();
        Csr {
            offsets: v.offsets().to_vec(),
            targets: v.targets().to_vec(),
        }
    }

    /// Builds from per-node adjacency lists. Lists may be unsorted; they
    /// are canonicalised (sorted ascending) so the result depends only on
    /// each node's neighbour *multiset*. Entries must be `< adj.len()`.
    ///
    /// # Errors
    /// [`GraphError::NodeOutOfRange`] on a dangling target.
    pub fn from_adjacency(adj: &[Vec<usize>]) -> Result<Self> {
        let n = adj.len();
        let total: usize = adj.iter().map(Vec::len).sum();
        let mut offsets = Vec::with_capacity(n + 1);
        let mut targets = Vec::with_capacity(total);
        offsets.push(0);
        for list in adj {
            let start = targets.len();
            for &w in list {
                if w >= n {
                    return Err(GraphError::NodeOutOfRange { node: w, order: n });
                }
                targets.push(w);
            }
            targets[start..].sort_unstable();
            offsets.push(targets.len());
        }
        Ok(Csr { offsets, targets })
    }

    /// Builds the symmetric adjacency of an undirected edge multiset on
    /// `n` nodes: every edge `{u, v}` contributes `v` to `u`'s list and
    /// `u` to `v`'s. Edge order is irrelevant (lists are canonicalised).
    ///
    /// # Errors
    /// [`GraphError::NodeOutOfRange`] on an out-of-range endpoint.
    pub fn from_edges(n: usize, edges: &[(usize, usize)]) -> Result<Self> {
        let mut degree = vec![0usize; n];
        for &(u, v) in edges {
            if u >= n {
                return Err(GraphError::NodeOutOfRange { node: u, order: n });
            }
            if v >= n {
                return Err(GraphError::NodeOutOfRange { node: v, order: n });
            }
            degree[u] += 1;
            degree[v] += 1;
        }
        let mut offsets = Vec::with_capacity(n + 1);
        offsets.push(0);
        for v in 0..n {
            offsets.push(offsets[v] + degree[v]);
        }
        let mut cursor = offsets[..n].to_vec();
        let mut targets = vec![0usize; offsets[n]];
        for &(u, v) in edges {
            targets[cursor[u]] = v;
            cursor[u] += 1;
            targets[cursor[v]] = u;
            cursor[v] += 1;
        }
        for v in 0..n {
            targets[offsets[v]..offsets[v + 1]].sort_unstable();
        }
        Ok(Csr { offsets, targets })
    }

    /// The borrowed view over this structure.
    #[inline]
    pub fn view(&self) -> CsrView<'_> {
        CsrView {
            offsets: &self.offsets,
            targets: &self.targets,
        }
    }

    /// Number of nodes.
    #[inline]
    pub fn order(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Total stored target entries.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.targets.len()
    }

    /// Sorted neighbour slice of `v`.
    #[inline]
    pub fn neighbours(&self, v: usize) -> &[usize] {
        &self.targets[self.offsets[v]..self.offsets[v + 1]]
    }

    /// Degree of `v`.
    #[inline]
    pub fn degree(&self, v: usize) -> usize {
        self.offsets[v + 1] - self.offsets[v]
    }

    /// Expands back into per-node adjacency lists (each sorted).
    pub fn to_adjacency(&self) -> Vec<Vec<usize>> {
        (0..self.order())
            .map(|v| self.neighbours(v).to_vec())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{cycle, petersen};

    #[test]
    fn view_matches_graph_accessors() {
        let g = petersen();
        let v = g.csr();
        assert_eq!(v.order(), g.order());
        assert_eq!(v.nnz(), 2 * g.size());
        for u in 0..g.order() {
            assert_eq!(v.neighbours(u), g.neighbours(u));
            assert_eq!(v.degree(u), g.degree(u));
        }
        assert_eq!(v.offsets().len(), g.order() + 1);
    }

    #[test]
    fn from_graph_round_trips_through_adjacency() {
        let g = cycle(7);
        let c = Csr::from_graph(&g);
        let back = Csr::from_adjacency(&c.to_adjacency()).unwrap();
        assert_eq!(c, back);
    }

    #[test]
    fn from_edges_order_independent() {
        let a = Csr::from_edges(4, &[(0, 1), (1, 2), (2, 3)]).unwrap();
        let b = Csr::from_edges(4, &[(2, 3), (0, 1), (2, 1)]).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.neighbours(2), &[1, 3]);
    }

    #[test]
    fn multigraph_entries_are_kept() {
        // Parallel edge and self-loop are representable in raw CSR.
        let c = Csr::from_edges(2, &[(0, 1), (0, 1), (1, 1)]).unwrap();
        assert_eq!(c.neighbours(0), &[1, 1]);
        assert_eq!(c.neighbours(1), &[0, 0, 1, 1]);
        assert_eq!(c.nnz(), 6);
    }

    #[test]
    fn out_of_range_rejected() {
        assert!(matches!(
            Csr::from_edges(2, &[(0, 2)]),
            Err(GraphError::NodeOutOfRange { node: 2, order: 2 })
        ));
        assert!(Csr::from_adjacency(&[vec![1], vec![9]]).is_err());
    }

    #[test]
    #[should_panic(expected = "final offset")]
    fn view_rejects_dangling_offsets() {
        let targets = [0usize, 1];
        let offsets = [0usize, 1, 3];
        let _ = CsrView::new(&offsets[..2], &targets);
    }
}
