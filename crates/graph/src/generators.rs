//! Graph families: deterministic (paths, cycles, stars, complete, grids,
//! Petersen, circulants, balanced binary trees) and random (G(n,p), random
//! regular, random trees, preferential attachment, stochastic block model).
//!
//! All random generators take an explicit [`rand::Rng`] so every experiment
//! in the workspace is reproducible from a seed.

use crate::{Graph, GraphBuilder};
use rand::Rng;

/// The path `P_n` on `n` nodes (`n - 1` edges). `P_1` is a single node.
pub fn path(n: usize) -> Graph {
    let edges: Vec<(usize, usize)> = (0..n.saturating_sub(1)).map(|i| (i, i + 1)).collect();
    Graph::from_edges_unchecked(n, &edges)
}

/// The cycle `C_n` on `n >= 3` nodes.
pub fn cycle(n: usize) -> Graph {
    assert!(n >= 3, "cycles need at least 3 nodes");
    let edges: Vec<(usize, usize)> = (0..n).map(|i| (i, (i + 1) % n)).collect();
    Graph::from_edges_unchecked(n, &edges)
}

/// The star `S_k` = `K_{1,k}`: node 0 is the centre, `1..=k` the leaves.
pub fn star(k: usize) -> Graph {
    let edges: Vec<(usize, usize)> = (1..=k).map(|i| (0, i)).collect();
    Graph::from_edges_unchecked(k + 1, &edges)
}

/// The complete graph `K_n`.
pub fn complete(n: usize) -> Graph {
    let mut edges = Vec::with_capacity(n * (n - 1) / 2);
    for u in 0..n {
        for v in (u + 1)..n {
            edges.push((u, v));
        }
    }
    Graph::from_edges_unchecked(n, &edges)
}

/// The complete bipartite graph `K_{a,b}` (parts `0..a` and `a..a+b`).
pub fn complete_bipartite(a: usize, b: usize) -> Graph {
    let mut edges = Vec::with_capacity(a * b);
    for u in 0..a {
        for v in 0..b {
            edges.push((u, a + v));
        }
    }
    Graph::from_edges_unchecked(a + b, &edges)
}

/// The `r × c` grid graph.
pub fn grid(r: usize, c: usize) -> Graph {
    let idx = |i: usize, j: usize| i * c + j;
    let mut edges = Vec::new();
    for i in 0..r {
        for j in 0..c {
            if j + 1 < c {
                edges.push((idx(i, j), idx(i, j + 1)));
            }
            if i + 1 < r {
                edges.push((idx(i, j), idx(i + 1, j)));
            }
        }
    }
    Graph::from_edges_unchecked(r * c, &edges)
}

/// The Petersen graph (10 nodes, 15 edges, 3-regular, girth 5).
pub fn petersen() -> Graph {
    let mut edges = Vec::with_capacity(15);
    for i in 0..5 {
        edges.push((i, (i + 1) % 5)); // outer C5
        edges.push((5 + i, 5 + (i + 2) % 5)); // inner pentagram
        edges.push((i, 5 + i)); // spokes
    }
    Graph::from_edges_unchecked(10, &edges)
}

/// The circulant graph `C_n(S)`: node `i` adjacent to `i ± s (mod n)` for
/// each `s ∈ S`. Circulants are vertex-transitive, hence 1-WL-monochromatic —
/// useful as hard instances for colour refinement.
pub fn circulant(n: usize, jumps: &[usize]) -> Graph {
    let mut b = GraphBuilder::new(n);
    for i in 0..n {
        for &s in jumps {
            assert!(s >= 1 && 2 * s <= n, "jump {s} invalid for order {n}");
            let j = (i + s) % n;
            let _ = b.add_edge_idempotent(i, j).expect("in range");
        }
    }
    b.build()
}

/// A complete (balanced) binary tree with `levels` levels
/// (`2^levels - 1` nodes); `levels = 1` is a single node.
pub fn balanced_binary_tree(levels: u32) -> Graph {
    let n = (1usize << levels) - 1;
    let mut edges = Vec::with_capacity(n.saturating_sub(1));
    for v in 1..n {
        edges.push(((v - 1) / 2, v));
    }
    Graph::from_edges_unchecked(n, &edges)
}

/// Erdős–Rényi `G(n, p)`.
pub fn gnp<R: Rng>(n: usize, p: f64, rng: &mut R) -> Graph {
    let mut edges = Vec::new();
    for u in 0..n {
        for v in (u + 1)..n {
            if rng.random::<f64>() < p {
                edges.push((u, v));
            }
        }
    }
    Graph::from_edges_unchecked(n, &edges)
}

/// Uniform random labelled tree on `n` nodes via a random Prüfer sequence.
pub fn random_tree<R: Rng>(n: usize, rng: &mut R) -> Graph {
    if n <= 1 {
        return Graph::empty(n);
    }
    if n == 2 {
        return Graph::from_edges_unchecked(2, &[(0, 1)]);
    }
    let pruefer: Vec<usize> = (0..n - 2).map(|_| rng.random_range(0..n)).collect();
    let mut degree = vec![1usize; n];
    for &x in &pruefer {
        degree[x] += 1;
    }
    let mut edges = Vec::with_capacity(n - 1);
    // Standard Prüfer decoding with a pointer + leaf variable.
    let mut ptr = 0;
    while degree[ptr] != 1 {
        ptr += 1;
    }
    let mut leaf = ptr;
    for &x in &pruefer {
        edges.push((leaf, x));
        degree[x] -= 1;
        if degree[x] == 1 && x < ptr {
            leaf = x;
        } else {
            ptr += 1;
            while degree[ptr] != 1 {
                ptr += 1;
            }
            leaf = ptr;
        }
    }
    edges.push((leaf, n - 1));
    Graph::from_edges_unchecked(n, &edges)
}

/// Random `d`-regular graph via the pairing (configuration) model with
/// rejection of loops/multi-edges. Requires `n * d` even and `d < n`.
pub fn random_regular<R: Rng>(n: usize, d: usize, rng: &mut R) -> Graph {
    assert!((n * d).is_multiple_of(2), "n*d must be even");
    assert!(d < n, "degree must be < n");
    'outer: loop {
        let mut stubs: Vec<usize> = (0..n * d).map(|i| i / d).collect();
        // Fisher–Yates shuffle.
        for i in (1..stubs.len()).rev() {
            let j = rng.random_range(0..=i);
            stubs.swap(i, j);
        }
        let mut b = GraphBuilder::new(n);
        for pair in stubs.chunks_exact(2) {
            let (u, v) = (pair[0], pair[1]);
            if u == v {
                continue 'outer;
            }
            match b.add_edge_idempotent(u, v) {
                Ok(true) => {}
                _ => continue 'outer,
            }
        }
        return b.build();
    }
}

/// Barabási–Albert-style preferential attachment: start from a clique on
/// `m + 1` nodes, each new node attaches to `m` distinct existing nodes with
/// probability proportional to degree.
pub fn preferential_attachment<R: Rng>(n: usize, m: usize, rng: &mut R) -> Graph {
    assert!(m >= 1 && n > m, "need n > m >= 1");
    let mut b = GraphBuilder::new(n);
    // Repeated-endpoint list: sampling uniformly from it is degree-biased.
    let mut endpoints: Vec<usize> = Vec::with_capacity(2 * n * m);
    for u in 0..=m {
        for v in (u + 1)..=m {
            b.add_edge(u, v).expect("clique seed");
            endpoints.push(u);
            endpoints.push(v);
        }
    }
    for v in (m + 1)..n {
        let mut targets = Vec::with_capacity(m);
        while targets.len() < m {
            let t = endpoints[rng.random_range(0..endpoints.len())];
            if !targets.contains(&t) {
                targets.push(t);
            }
        }
        for &t in &targets {
            b.add_edge(v, t).expect("new node edges are fresh");
            endpoints.push(v);
            endpoints.push(t);
        }
    }
    b.build()
}

/// Stochastic block model with `sizes.len()` communities: within-community
/// edge probability `p_in`, across `p_out`. Node labels record the community.
pub fn sbm<R: Rng>(sizes: &[usize], p_in: f64, p_out: f64, rng: &mut R) -> Graph {
    let n: usize = sizes.iter().sum();
    let mut block = Vec::with_capacity(n);
    for (b, &s) in sizes.iter().enumerate() {
        block.extend(std::iter::repeat_n(b, s));
    }
    let mut builder = GraphBuilder::new(n);
    for u in 0..n {
        builder.set_label(u, block[u] as u32).expect("in range");
        for v in (u + 1)..n {
            let p = if block[u] == block[v] { p_in } else { p_out };
            if rng.random::<f64>() < p {
                builder.add_edge(u, v).expect("fresh edge");
            }
        }
    }
    builder.build()
}

/// The Zachary karate club graph (34 nodes, 78 edges), the classic node-
/// classification benchmark. Labels are the two factions after the split
/// (0 = instructor's faction, 1 = administrator's).
pub fn karate_club() -> Graph {
    // Edge list of Zachary (1977), 0-indexed.
    const EDGES: [(usize, usize); 78] = [
        (0, 1),
        (0, 2),
        (0, 3),
        (0, 4),
        (0, 5),
        (0, 6),
        (0, 7),
        (0, 8),
        (0, 10),
        (0, 11),
        (0, 12),
        (0, 13),
        (0, 17),
        (0, 19),
        (0, 21),
        (0, 31),
        (1, 2),
        (1, 3),
        (1, 7),
        (1, 13),
        (1, 17),
        (1, 19),
        (1, 21),
        (1, 30),
        (2, 3),
        (2, 7),
        (2, 8),
        (2, 9),
        (2, 13),
        (2, 27),
        (2, 28),
        (2, 32),
        (3, 7),
        (3, 12),
        (3, 13),
        (4, 6),
        (4, 10),
        (5, 6),
        (5, 10),
        (5, 16),
        (6, 16),
        (8, 30),
        (8, 32),
        (8, 33),
        (9, 33),
        (13, 33),
        (14, 32),
        (14, 33),
        (15, 32),
        (15, 33),
        (18, 32),
        (18, 33),
        (19, 33),
        (20, 32),
        (20, 33),
        (22, 32),
        (22, 33),
        (23, 25),
        (23, 27),
        (23, 29),
        (23, 32),
        (23, 33),
        (24, 25),
        (24, 27),
        (24, 31),
        (25, 31),
        (26, 29),
        (26, 33),
        (27, 33),
        (28, 31),
        (28, 33),
        (29, 32),
        (29, 33),
        (30, 32),
        (30, 33),
        (31, 32),
        (31, 33),
        (32, 33),
    ];
    const FACTION: [u32; 34] = [
        0, 0, 0, 0, 0, 0, 0, 0, 1, 1, 0, 0, 0, 0, 1, 1, 0, 0, 1, 0, 1, 0, 1, 1, 1, 1, 1, 1, 1, 1,
        1, 1, 1, 1,
    ];
    Graph::from_edges_unchecked(34, &EDGES)
        .with_labels(FACTION.to_vec())
        .expect("34 labels")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn basic_family_invariants() {
        assert_eq!(path(1).size(), 0);
        assert_eq!(path(5).size(), 4);
        assert_eq!(cycle(5).size(), 5);
        assert_eq!(star(4).degree(0), 4);
        assert_eq!(complete(5).size(), 10);
        assert_eq!(complete_bipartite(2, 3).size(), 6);
        assert_eq!(grid(3, 4).order(), 12);
        assert_eq!(grid(3, 4).size(), 17);
    }

    #[test]
    fn petersen_is_3_regular_girth_5() {
        let p = petersen();
        assert!((0..10).all(|v| p.degree(v) == 3));
        assert_eq!(dist::girth(&p), Some(5));
    }

    #[test]
    fn circulant_regular() {
        let c = circulant(8, &[1, 2]);
        assert!((0..8).all(|v| c.degree(v) == 4));
        assert_eq!(c.size(), 16);
        // C_n({1}) is the cycle
        assert_eq!(circulant(6, &[1]), cycle(6));
    }

    #[test]
    fn binary_tree_shape() {
        let t = balanced_binary_tree(3);
        assert_eq!(t.order(), 7);
        assert_eq!(t.size(), 6);
        assert!(dist::is_connected(&t));
        assert!(dist::girth(&t).is_none());
    }

    #[test]
    fn random_tree_is_tree() {
        let mut rng = StdRng::seed_from_u64(7);
        for n in [2usize, 3, 5, 10, 30] {
            let t = random_tree(n, &mut rng);
            assert_eq!(t.size(), n - 1, "n={n}");
            assert!(dist::is_connected(&t), "n={n}");
        }
    }

    #[test]
    fn random_regular_is_regular() {
        let mut rng = StdRng::seed_from_u64(1);
        let g = random_regular(12, 3, &mut rng);
        assert!((0..12).all(|v| g.degree(v) == 3));
    }

    #[test]
    fn gnp_extremes() {
        let mut rng = StdRng::seed_from_u64(2);
        assert_eq!(gnp(8, 0.0, &mut rng).size(), 0);
        assert_eq!(gnp(8, 1.0, &mut rng).size(), 28);
    }

    #[test]
    fn pa_degrees_and_order() {
        let mut rng = StdRng::seed_from_u64(3);
        let g = preferential_attachment(50, 2, &mut rng);
        assert_eq!(g.order(), 50);
        // seed clique K3 has 3 edges; each of the 47 later nodes adds 2.
        assert_eq!(g.size(), 3 + 47 * 2);
        assert!(dist::is_connected(&g));
    }

    #[test]
    fn sbm_labels_communities() {
        let mut rng = StdRng::seed_from_u64(4);
        let g = sbm(&[5, 7], 1.0, 0.0, &mut rng);
        assert_eq!(g.order(), 12);
        assert_eq!(g.size(), 10 + 21); // two cliques
        assert_eq!(g.label(0), 0);
        assert_eq!(g.label(11), 1);
    }

    #[test]
    fn karate_club_statistics() {
        let k = karate_club();
        assert_eq!(k.order(), 34);
        assert_eq!(k.size(), 78);
        assert_eq!(k.degree(33), 17);
        assert_eq!(k.degree(0), 16);
        assert!(dist::is_connected(&k));
    }
}
