//! Exhaustive enumeration of small combinatorial universes.
//!
//! The paper's characterisation theorems (4.2, 4.4, 4.6, 4.10, …) quantify
//! over *all* graphs of some class. To check them computationally we need the
//! complete universes: all graphs of order ≤ n up to isomorphism, all free
//! trees, all rooted trees, the cycles, the paths. Rooted trees are generated
//! by the Beyer–Hedetniemi level-sequence successor algorithm (constant
//! amortised time); free trees are deduplicated via centroid-canonical AHU
//! encodings; general graphs by edge-subset enumeration with canonical-key
//! dedup (practical to order 7).

use crate::canon::{canonical_key, tree_canonical};
use crate::hash::FxHashSet;
use crate::{Graph, GraphBuilder};

/// All graphs of order exactly `n`, up to isomorphism, unlabelled.
///
/// Counts (OEIS A000088): 1, 2, 4, 11, 34, 156, 1044 for n = 1..7.
///
/// # Panics
/// For `n > 7` (the edge-subset scan would be too slow; use a dedicated tool).
pub fn all_graphs(n: usize) -> Vec<Graph> {
    assert!(n <= 7, "exhaustive enumeration supported up to order 7");
    if n == 0 {
        return vec![Graph::empty(0)];
    }
    let pairs: Vec<(usize, usize)> = (0..n)
        .flat_map(|u| ((u + 1)..n).map(move |v| (u, v)))
        .collect();
    let mut seen: FxHashSet<Vec<u64>> = FxHashSet::default();
    let mut out = Vec::new();
    for mask in 0u64..(1u64 << pairs.len()) {
        let edges: Vec<(usize, usize)> = pairs
            .iter()
            .enumerate()
            .filter(|&(i, _)| mask >> i & 1 == 1)
            .map(|(_, &e)| e)
            .collect();
        let g = Graph::from_edges_unchecked(n, &edges);
        if seen.insert(canonical_key(&g)) {
            out.push(g);
        }
    }
    out
}

/// All graphs of order between 1 and `n` inclusive, up to isomorphism,
/// ordered by (order, size) — the enumeration order used in the proof of
/// Theorem 4.2 (so that the epi matrix is lower triangular).
pub fn all_graphs_up_to(n: usize) -> Vec<Graph> {
    let mut out = Vec::new();
    for k in 1..=n {
        let mut gs = all_graphs(k);
        gs.sort_by_key(Graph::size);
        out.extend(gs);
    }
    out
}

/// All *connected* graphs of order exactly `n`, up to isomorphism.
pub fn all_connected_graphs(n: usize) -> Vec<Graph> {
    all_graphs(n)
        .into_iter()
        .filter(crate::dist::is_connected)
        .collect()
}

/// Iterator over canonical level sequences of rooted trees on `n` nodes
/// (Beyer–Hedetniemi 1980). Levels are 1-based; the first sequence is the
/// path `[1, 2, …, n]`, the last is the star `[1, 2, 2, …, 2]`.
struct LevelSequences {
    seq: Vec<usize>,
    first: bool,
    done: bool,
}

impl LevelSequences {
    fn new(n: usize) -> Self {
        LevelSequences {
            seq: (1..=n).collect(),
            first: true,
            done: n == 0,
        }
    }
}

impl Iterator for LevelSequences {
    type Item = Vec<usize>;

    fn next(&mut self) -> Option<Vec<usize>> {
        if self.done {
            return None;
        }
        if self.first {
            self.first = false;
            return Some(self.seq.clone());
        }
        // Find the last position p with level > 2.
        let Some(p) = self.seq.iter().rposition(|&l| l > 2) else {
            self.done = true;
            return None;
        };
        // q: the parent position — last position before p with level = seq[p] - 1.
        let q = self.seq[..p]
            .iter()
            .rposition(|&l| l == self.seq[p] - 1)
            .expect("canonical sequence has a parent level");
        let shift = p - q;
        for i in p..self.seq.len() {
            self.seq[i] = self.seq[i - shift];
        }
        Some(self.seq.clone())
    }
}

/// Converts a canonical level sequence to a tree graph rooted at node 0.
fn tree_from_level_sequence(seq: &[usize]) -> Graph {
    let n = seq.len();
    let mut b = GraphBuilder::new(n);
    // parent of i: nearest previous j with level(j) = level(i) - 1
    let mut last_at_level = vec![usize::MAX; n + 2];
    for (i, &l) in seq.iter().enumerate() {
        if l > 1 {
            let parent = last_at_level[l - 1];
            b.add_edge(parent, i).expect("tree edge");
        }
        last_at_level[l] = i;
    }
    b.build()
}

/// All rooted trees on `n` nodes up to rooted isomorphism, each returned as
/// `(tree, root)` with root 0.
///
/// Counts (OEIS A000081): 1, 1, 2, 4, 9, 20, 48, 115, 286, 719 for n = 1..10.
pub fn rooted_trees(n: usize) -> Vec<(Graph, usize)> {
    if n == 0 {
        return Vec::new();
    }
    if n == 1 {
        return vec![(Graph::empty(1), 0)];
    }
    LevelSequences::new(n)
        .map(|seq| (tree_from_level_sequence(&seq), 0))
        .collect()
}

/// All free (unrooted) trees on `n` nodes up to isomorphism.
///
/// Counts (OEIS A000055): 1, 1, 1, 2, 3, 6, 11, 23, 47, 106 for n = 1..10.
pub fn free_trees(n: usize) -> Vec<Graph> {
    if n == 0 {
        return Vec::new();
    }
    if n == 1 {
        return vec![Graph::empty(1)];
    }
    let mut seen: FxHashSet<String> = FxHashSet::default();
    let mut out = Vec::new();
    for (t, _) in rooted_trees(n) {
        if seen.insert(tree_canonical(&t)) {
            out.push(t);
        }
    }
    out
}

/// All free trees of order `n` with maximum degree ≤ 3 ("binary trees" as
/// free trees) — the building blocks of the paper's Section-4 experimental
/// feature class (20 binary trees and cycles).
pub fn binary_trees(n: usize) -> Vec<Graph> {
    free_trees(n)
        .into_iter()
        .filter(|t| (0..t.order()).all(|v| t.degree(v) <= 3))
        .collect()
}

/// The paper's Section-4 feature class: the first `count` graphs from the
/// sequence alternating binary trees (by increasing order) and cycles
/// (C3, C4, …). With `count = 20` this reproduces the "small class (of size
/// 20) of graphs consisting of binary trees and cycles".
pub fn trees_and_cycles_basis(count: usize) -> Vec<Graph> {
    let mut trees = Vec::new();
    let mut n = 1;
    while trees.len() < count {
        trees.extend(binary_trees(n));
        n += 1;
    }
    let mut out = Vec::with_capacity(count);
    let mut ti = 0;
    let mut cyc = 3;
    // Alternate: tree, cycle, tree, cycle, …
    while out.len() < count {
        if out.len() % 2 == 0 && ti < trees.len() {
            out.push(trees[ti].clone());
            ti += 1;
        } else {
            out.push(crate::generators::cycle(cyc));
            cyc += 1;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist;
    use crate::iso::are_isomorphic;

    #[test]
    fn graph_counts_match_oeis() {
        assert_eq!(all_graphs(1).len(), 1);
        assert_eq!(all_graphs(2).len(), 2);
        assert_eq!(all_graphs(3).len(), 4);
        assert_eq!(all_graphs(4).len(), 11);
        assert_eq!(all_graphs(5).len(), 34);
    }

    #[test]
    #[ignore = "slow (~a minute in debug); run with --ignored"]
    fn graph_count_order_six() {
        assert_eq!(all_graphs(6).len(), 156);
    }

    #[test]
    fn connected_graph_counts() {
        // OEIS A001349: 1, 1, 2, 6, 21 for n = 1..5
        assert_eq!(all_connected_graphs(1).len(), 1);
        assert_eq!(all_connected_graphs(2).len(), 1);
        assert_eq!(all_connected_graphs(3).len(), 2);
        assert_eq!(all_connected_graphs(4).len(), 6);
        assert_eq!(all_connected_graphs(5).len(), 21);
    }

    #[test]
    fn up_to_ordering_is_by_order_then_size() {
        let gs = all_graphs_up_to(4);
        assert_eq!(gs.len(), 1 + 2 + 4 + 11);
        for w in gs.windows(2) {
            assert!(
                (w[0].order(), w[0].size()) <= (w[1].order(), w[1].size()),
                "enumeration must be sorted by (order, size)"
            );
        }
    }

    #[test]
    fn rooted_tree_counts_match_oeis() {
        let expected = [1usize, 1, 2, 4, 9, 20, 48, 115];
        for (i, &e) in expected.iter().enumerate() {
            assert_eq!(rooted_trees(i + 1).len(), e, "n = {}", i + 1);
        }
    }

    #[test]
    fn free_tree_counts_match_oeis() {
        let expected = [1usize, 1, 1, 2, 3, 6, 11, 23, 47, 106];
        for (i, &e) in expected.iter().enumerate() {
            assert_eq!(free_trees(i + 1).len(), e, "n = {}", i + 1);
        }
    }

    #[test]
    fn every_enumerated_tree_is_a_tree() {
        for t in free_trees(7) {
            assert_eq!(t.size(), t.order() - 1);
            assert!(dist::is_connected(&t));
        }
    }

    #[test]
    fn free_trees_pairwise_nonisomorphic() {
        let ts = free_trees(6);
        for i in 0..ts.len() {
            for j in (i + 1)..ts.len() {
                assert!(!are_isomorphic(&ts[i], &ts[j]), "{i} vs {j}");
            }
        }
    }

    #[test]
    fn binary_tree_counts() {
        // Free trees with max degree ≤ 3: 1, 1, 1, 2, 2, 4, 6, 11 for n = 1..8
        let expected = [1usize, 1, 1, 2, 2, 4, 6, 11];
        for (i, &e) in expected.iter().enumerate() {
            assert_eq!(binary_trees(i + 1).len(), e, "n = {}", i + 1);
        }
    }

    #[test]
    fn basis_has_requested_size_and_mix() {
        let basis = trees_and_cycles_basis(20);
        assert_eq!(basis.len(), 20);
        let cycles = basis
            .iter()
            .filter(|g| g.order() >= 3 && g.order() == g.size())
            .count();
        let trees = basis.iter().filter(|g| g.size() + 1 == g.order()).count();
        assert_eq!(cycles + trees, 20);
        assert!(cycles >= 5 && trees >= 5);
    }
}
