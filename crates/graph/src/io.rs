//! Plain-text graph serialisation.
//!
//! Format (one graph per string):
//!
//! ```text
//! n m
//! u1 v1
//! …
//! um vm
//! [labels l0 l1 … l(n-1)]     # optional final line
//! ```

use crate::{Graph, GraphError, Result};
use std::fmt::Write as _;

/// Serialises a graph to the text format.
pub fn to_text(g: &Graph) -> String {
    let mut s = String::new();
    writeln!(s, "{} {}", g.order(), g.size()).expect("string write");
    for (u, v) in g.edges() {
        writeln!(s, "{u} {v}").expect("string write");
    }
    if g.is_labelled() {
        s.push_str("labels");
        for &l in g.labels() {
            write!(s, " {l}").expect("string write");
        }
        s.push('\n');
    }
    s
}

/// Parses a graph from the text format.
///
/// # Errors
/// Returns [`GraphError::Parse`] on malformed input and the usual builder
/// errors on invalid edges.
pub fn from_text(text: &str) -> Result<Graph> {
    let mut lines = text.lines().filter(|l| !l.trim().is_empty());
    let header = lines
        .next()
        .ok_or_else(|| GraphError::Parse("empty input".into()))?;
    let mut parts = header.split_whitespace();
    let n: usize = parts
        .next()
        .and_then(|t| t.parse().ok())
        .ok_or_else(|| GraphError::Parse(format!("bad header: {header:?}")))?;
    let m: usize = parts
        .next()
        .and_then(|t| t.parse().ok())
        .ok_or_else(|| GraphError::Parse(format!("bad header: {header:?}")))?;
    let mut edges = Vec::with_capacity(m);
    let mut labels: Option<Vec<u32>> = None;
    for line in lines {
        let line = line.trim();
        if let Some(rest) = line.strip_prefix("labels") {
            let ls: std::result::Result<Vec<u32>, _> =
                rest.split_whitespace().map(str::parse).collect();
            labels = Some(ls.map_err(|e| GraphError::Parse(format!("bad labels: {e}")))?);
            continue;
        }
        let mut it = line.split_whitespace();
        let u: usize = it
            .next()
            .and_then(|t| t.parse().ok())
            .ok_or_else(|| GraphError::Parse(format!("bad edge line: {line:?}")))?;
        let v: usize = it
            .next()
            .and_then(|t| t.parse().ok())
            .ok_or_else(|| GraphError::Parse(format!("bad edge line: {line:?}")))?;
        edges.push((u, v));
    }
    if edges.len() != m {
        return Err(GraphError::Parse(format!(
            "header promised {m} edges, found {}",
            edges.len()
        )));
    }
    let g = Graph::from_edges(n, &edges)?;
    match labels {
        Some(ls) => g.with_labels(ls),
        None => Ok(g),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::petersen;

    #[test]
    fn roundtrip_plain() {
        let g = petersen();
        let parsed = from_text(&to_text(&g)).unwrap();
        assert_eq!(g, parsed);
    }

    #[test]
    fn roundtrip_labelled() {
        let g = crate::generators::path(3)
            .with_labels(vec![5, 0, 7])
            .unwrap();
        let parsed = from_text(&to_text(&g)).unwrap();
        assert_eq!(g, parsed);
    }

    #[test]
    fn rejects_malformed() {
        assert!(from_text("").is_err());
        assert!(from_text("nonsense").is_err());
        assert!(from_text("2 1\n0").is_err());
        assert!(from_text("2 2\n0 1").is_err());
        assert!(from_text("2 1\n0 9").is_err());
    }
}
