//! Plain-text graph serialisation.
//!
//! Format (one graph per string):
//!
//! ```text
//! n m
//! u1 v1
//! …
//! um vm
//! [labels l0 l1 … l(n-1)]     # optional final line
//! ```

use crate::{Graph, GraphError, Result};
use std::fmt::Write as _;

/// Serialises a graph to the text format.
pub fn to_text(g: &Graph) -> String {
    let mut s = String::new();
    writeln!(s, "{} {}", g.order(), g.size()).expect("string write");
    for (u, v) in g.edges() {
        writeln!(s, "{u} {v}").expect("string write");
    }
    if g.is_labelled() {
        s.push_str("labels");
        for &l in g.labels() {
            write!(s, " {l}").expect("string write");
        }
        s.push('\n');
    }
    s
}

/// Parses a graph from the text format.
///
/// Hardened against adversarial input: a header edge count larger than a
/// simple graph of the declared order can hold is rejected *before* any
/// allocation sized from it, edge lines with trailing tokens or indices
/// `>= n` are rejected with the offending line quoted, and duplicate
/// `labels` lines are an error rather than a silent overwrite. Blank lines
/// are ignored everywhere.
///
/// # Errors
/// Returns [`GraphError::Parse`] on malformed input and the usual builder
/// errors ([`GraphError::DuplicateEdge`], [`GraphError::SelfLoop`],
/// [`GraphError::LabelLengthMismatch`]) on invalid edges or labels.
pub fn from_text(text: &str) -> Result<Graph> {
    let mut lines = text.lines().filter(|l| !l.trim().is_empty());
    let header = lines
        .next()
        .ok_or_else(|| GraphError::Parse("empty input".into()))?;
    let mut parts = header.split_whitespace();
    let n: usize = parts
        .next()
        .and_then(|t| t.parse().ok())
        .ok_or_else(|| GraphError::Parse(format!("bad header: {header:?}")))?;
    let m: usize = parts
        .next()
        .and_then(|t| t.parse().ok())
        .ok_or_else(|| GraphError::Parse(format!("bad header: {header:?}")))?;
    if parts.next().is_some() {
        return Err(GraphError::Parse(format!(
            "trailing tokens in header: {header:?}"
        )));
    }
    // A simple graph on n nodes has at most n(n−1)/2 edges; a header
    // promising more is hostile or corrupt. Checking this BEFORE
    // `with_capacity(m)` also stops a forged count like `0 u64::MAX` from
    // aborting the process with an out-of-memory allocation.
    let max_edges = n.checked_mul(n.saturating_sub(1)).map(|x| x / 2);
    if max_edges.is_none_or(|max| m > max) {
        return Err(GraphError::Parse(format!(
            "header promises {m} edges, but a simple graph of order {n} holds at most {}",
            max_edges.map_or_else(|| "n(n-1)/2".to_string(), |max| max.to_string())
        )));
    }
    // Cap the preallocation: `m` is still untrusted (a huge order makes a
    // huge count combinatorially plausible), so size from the header only
    // up to a modest bound and let pushes — bounded by the real input
    // length — grow the vector beyond it.
    let mut edges = Vec::with_capacity(m.min(1 << 16));
    let mut labels: Option<Vec<u32>> = None;
    for line in lines {
        let line = line.trim();
        if let Some(rest) = line.strip_prefix("labels") {
            if labels.is_some() {
                return Err(GraphError::Parse("duplicate labels line".into()));
            }
            let ls: std::result::Result<Vec<u32>, _> =
                rest.split_whitespace().map(str::parse).collect();
            labels = Some(ls.map_err(|e| GraphError::Parse(format!("bad labels: {e}")))?);
            continue;
        }
        if labels.is_some() {
            return Err(GraphError::Parse(format!(
                "edge line after labels line: {line:?}"
            )));
        }
        let mut it = line.split_whitespace();
        let u: usize = it
            .next()
            .and_then(|t| t.parse().ok())
            .ok_or_else(|| GraphError::Parse(format!("bad edge line: {line:?}")))?;
        let v: usize = it
            .next()
            .and_then(|t| t.parse().ok())
            .ok_or_else(|| GraphError::Parse(format!("bad edge line: {line:?}")))?;
        if it.next().is_some() {
            return Err(GraphError::Parse(format!(
                "trailing tokens on edge line: {line:?}"
            )));
        }
        if u >= n || v >= n {
            return Err(GraphError::NodeOutOfRange {
                node: u.max(v),
                order: n,
            });
        }
        if edges.len() == m {
            return Err(GraphError::Parse(format!(
                "header promised {m} edges, found more"
            )));
        }
        edges.push((u, v));
    }
    if edges.len() != m {
        return Err(GraphError::Parse(format!(
            "header promised {m} edges, found {}",
            edges.len()
        )));
    }
    let g = Graph::from_edges(n, &edges)?;
    match labels {
        Some(ls) => g.with_labels(ls),
        None => Ok(g),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::petersen;

    #[test]
    fn roundtrip_plain() {
        let g = petersen();
        let parsed = from_text(&to_text(&g)).unwrap();
        assert_eq!(g, parsed);
    }

    #[test]
    fn roundtrip_labelled() {
        let g = crate::generators::path(3)
            .with_labels(vec![5, 0, 7])
            .unwrap();
        let parsed = from_text(&to_text(&g)).unwrap();
        assert_eq!(g, parsed);
    }

    #[test]
    fn rejects_malformed() {
        assert!(from_text("").is_err());
        assert!(from_text("nonsense").is_err());
        assert!(from_text("2 1\n0").is_err());
        assert!(from_text("2 2\n0 1").is_err());
        assert!(from_text("2 1\n0 9").is_err());
    }

    #[test]
    fn tolerates_blank_lines_everywhere() {
        let g = from_text("\n3 2\n\n0 1\n\n1 2\n\nlabels 1 2 3\n\n").unwrap();
        assert_eq!(g.order(), 3);
        assert_eq!(g.size(), 2);
        assert_eq!(g.labels(), &[1, 2, 3]);
    }

    /// Adversarial-input table: every row must be rejected with a typed
    /// error, never a panic or an allocation sized from hostile counts.
    #[test]
    fn adversarial_inputs_rejected() {
        let cases: &[(&str, &str)] = &[
            ("2 1 7\n0 1", "trailing header token"),
            ("3 99\n0 1", "edge count beyond n(n-1)/2"),
            ("0 18446744073709551615\n", "overflowing edge count"),
            ("4294967295 4294967295\n", "huge plausible count, no edges"),
            ("2 1\n0 1 5", "trailing edge-line token"),
            ("2 1\n0 2", "endpoint out of range"),
            ("2 1\n1 1", "self-loop"),
            ("3 2\n0 1\n0 1", "duplicate edge"),
            ("3 2\n0 1\n1 0", "duplicate edge, reversed"),
            ("2 1\n0 1\n0 1\n1 0", "more edges than promised"),
            ("2 1\n0 1\nlabels 0", "label count below order"),
            ("2 1\n0 1\nlabels 0 1 2", "label count above order"),
            ("2 1\n0 1\nlabels 0 1\nlabels 1 0", "duplicate labels line"),
            ("2 1\nlabels 0 1\n0 1", "edge after labels line"),
            ("2 1\n0 1\nlabels x y", "non-numeric labels"),
            ("2 1\n-1 1", "negative endpoint"),
        ];
        for (input, why) in cases {
            let got = from_text(input);
            assert!(got.is_err(), "{why}: {input:?} parsed to {got:?}");
        }
    }

    #[test]
    fn out_of_range_edge_is_typed() {
        match from_text("2 1\n0 9") {
            Err(GraphError::NodeOutOfRange { node: 9, order: 2 }) => {}
            other => panic!("expected NodeOutOfRange, got {other:?}"),
        }
    }

    #[test]
    fn graph_errors_convert_to_guard_invalid_input() {
        let e = from_text("2 1\n1 1").unwrap_err();
        let g: x2v_guard::GuardError = e.into();
        assert!(
            matches!(g, x2v_guard::GuardError::InvalidInput { .. }),
            "{g}"
        );
    }
}
