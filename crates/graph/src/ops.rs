//! Graph operations: disjoint union, complement, permutation, subgraphs,
//! line graphs, and the blow-up used by Section 5's distance measures.

use crate::{Graph, GraphBuilder};

/// Disjoint union `G ∪ H`. Nodes of `h` are shifted by `g.order()`.
pub fn disjoint_union(g: &Graph, h: &Graph) -> Graph {
    let n = g.order() + h.order();
    let shift = g.order();
    let mut b = GraphBuilder::new(n);
    for (u, v) in g.edges() {
        b.add_edge(u, v).expect("valid source edges");
    }
    for (u, v) in h.edges() {
        b.add_edge(u + shift, v + shift)
            .expect("valid source edges");
    }
    for (v, &l) in g.labels().iter().enumerate() {
        b.set_label(v, l).expect("in range");
    }
    for (v, &l) in h.labels().iter().enumerate() {
        b.set_label(v + shift, l).expect("in range");
    }
    b.build()
}

/// Disjoint union of many graphs.
pub fn disjoint_union_all<'a, I: IntoIterator<Item = &'a Graph>>(graphs: I) -> Graph {
    let mut acc = Graph::empty(0);
    for g in graphs {
        acc = disjoint_union(&acc, g);
    }
    acc
}

/// The complement graph (labels preserved).
pub fn complement(g: &Graph) -> Graph {
    let n = g.order();
    let mut b = GraphBuilder::new(n);
    for u in 0..n {
        for v in (u + 1)..n {
            if !g.has_edge(u, v) {
                b.add_edge(u, v).expect("fresh edge");
            }
        }
    }
    for (v, &l) in g.labels().iter().enumerate() {
        b.set_label(v, l).expect("in range");
    }
    b.build()
}

/// Relabels nodes by a permutation: node `v` of `g` becomes `perm[v]`.
///
/// The result is isomorphic to `g`; this is the workhorse for
/// isomorphism-invariance property tests.
pub fn permute(g: &Graph, perm: &[usize]) -> Graph {
    assert_eq!(perm.len(), g.order(), "permutation length must equal order");
    let mut seen = vec![false; g.order()];
    for &p in perm {
        assert!(p < g.order() && !seen[p], "not a permutation");
        seen[p] = true;
    }
    let mut b = GraphBuilder::new(g.order());
    for (u, v) in g.edges() {
        b.add_edge(perm[u], perm[v]).expect("permuted simple graph");
    }
    for (v, &l) in g.labels().iter().enumerate() {
        b.set_label(perm[v], l).expect("in range");
    }
    b.build()
}

/// The subgraph induced by `nodes` (which must be distinct). Node `i` of the
/// result corresponds to `nodes[i]`.
pub fn induced_subgraph(g: &Graph, nodes: &[usize]) -> Graph {
    let mut b = GraphBuilder::new(nodes.len());
    for (i, &u) in nodes.iter().enumerate() {
        b.set_label(i, g.label(u)).expect("in range");
        for (j, &v) in nodes.iter().enumerate().skip(i + 1) {
            if g.has_edge(u, v) {
                b.add_edge(i, j).expect("induced simple graph");
            }
        }
    }
    b.build()
}

/// The line graph `L(G)`: one node per edge of `G`, adjacent iff the edges
/// share an endpoint.
pub fn line_graph(g: &Graph) -> Graph {
    let edges = g.edge_vec();
    let mut b = GraphBuilder::new(edges.len());
    for i in 0..edges.len() {
        for j in (i + 1)..edges.len() {
            let (a, c) = edges[i];
            let (x, y) = edges[j];
            if a == x || a == y || c == x || c == y {
                b.add_edge(i, j).expect("fresh edge");
            }
        }
    }
    b.build()
}

/// The `k`-fold blow-up: every node becomes an independent set of `k` copies,
/// every edge a complete bipartite bundle. Used to compare graphs of
/// different orders via the least common multiple (Section 5.1, after [67]).
pub fn blow_up(g: &Graph, k: usize) -> Graph {
    assert!(k >= 1, "blow-up factor must be positive");
    let n = g.order();
    let mut b = GraphBuilder::new(n * k);
    for (u, v) in g.edges() {
        for i in 0..k {
            for j in 0..k {
                b.add_edge(u * k + i, v * k + j).expect("fresh edge");
            }
        }
    }
    for v in 0..n {
        for i in 0..k {
            b.set_label(v * k + i, g.label(v)).expect("in range");
        }
    }
    b.build()
}

/// Splits a graph into its connected components (as induced subgraphs, each
/// with its original-node index map).
pub fn components(g: &Graph) -> Vec<(Graph, Vec<usize>)> {
    let comps = crate::dist::connected_components(g);
    let ncomp = comps.iter().copied().max().map_or(0, |m| m + 1);
    let mut nodes_of: Vec<Vec<usize>> = vec![Vec::new(); ncomp];
    for (v, &c) in comps.iter().enumerate() {
        nodes_of[c].push(v);
    }
    nodes_of
        .into_iter()
        .map(|nodes| (induced_subgraph(g, &nodes), nodes))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn union_of_triangles_is_two_components() {
        let t = generators::cycle(3);
        let u = disjoint_union(&t, &t);
        assert_eq!(u.order(), 6);
        assert_eq!(u.size(), 6);
        assert_eq!(components(&u).len(), 2);
    }

    #[test]
    fn complement_involutive() {
        let g = generators::path(5);
        assert_eq!(complement(&complement(&g)), g);
    }

    #[test]
    fn complement_of_complete_is_empty() {
        let g = generators::complete(4);
        assert_eq!(complement(&g).size(), 0);
    }

    #[test]
    fn permute_preserves_degree_sequence() {
        let g = generators::star(5);
        let p = permute(&g, &[5, 4, 3, 2, 1, 0]);
        assert_eq!(g.degree_sequence(), p.degree_sequence());
        assert!(p.has_edge(5, 4));
    }

    #[test]
    #[should_panic(expected = "not a permutation")]
    fn permute_rejects_non_permutation() {
        let g = generators::path(3);
        permute(&g, &[0, 0, 1]);
    }

    #[test]
    fn induced_subgraph_of_cycle() {
        let c = generators::cycle(5);
        let sub = induced_subgraph(&c, &[0, 1, 2]);
        // path on 3 nodes
        assert_eq!(sub.size(), 2);
        assert_eq!(sub.degree(1), 2);
    }

    #[test]
    fn line_graph_of_path() {
        // L(P4) = P3
        let p = generators::path(4);
        let l = line_graph(&p);
        assert_eq!(l.order(), 3);
        assert_eq!(l.size(), 2);
    }

    #[test]
    fn line_graph_of_star_is_complete() {
        let s = generators::star(4);
        let l = line_graph(&s);
        assert_eq!(l.order(), 4);
        assert_eq!(l.size(), 6);
    }

    #[test]
    fn blow_up_counts() {
        let e = generators::path(2); // single edge
        let b = blow_up(&e, 3);
        assert_eq!(b.order(), 6);
        assert_eq!(b.size(), 9);
    }
}

/// The Cartesian product `G □ H`: vertices `V(G) × V(H)`; `(u, v)` adjacent
/// to `(u', v')` iff (`u = u'` and `vv' ∈ E(H)`) or (`uu' ∈ E(G)` and
/// `v = v'`). Node `(u, v)` has index `u · |H| + v`.
pub fn cartesian_product(g: &Graph, h: &Graph) -> Graph {
    let (n, m) = (g.order(), h.order());
    let mut b = GraphBuilder::new(n * m);
    for u in 0..n {
        for (v, w) in h.edges() {
            b.add_edge(u * m + v, u * m + w).expect("fresh");
        }
    }
    for (u, up) in g.edges() {
        for v in 0..m {
            b.add_edge(u * m + v, up * m + v).expect("fresh");
        }
    }
    b.build()
}

/// The tensor (categorical) product `G × H`: `(u, v)` adjacent to
/// `(u', v')` iff `uu' ∈ E(G)` and `vv' ∈ E(H)`. This is the categorical
/// product of graphs: homomorphisms into it are pairs of homomorphisms, so
/// `hom(F, G × H) = hom(F, G) · hom(F, H)` — the identity behind the
/// direct-product random-walk kernel.
pub fn tensor_product(g: &Graph, h: &Graph) -> Graph {
    let m = h.order();
    let mut b = GraphBuilder::new(g.order() * m);
    for (u, up) in g.edges() {
        for (v, vp) in h.edges() {
            // Both orientations of the pair of undirected edges.
            let _ = b
                .add_edge_idempotent(u * m + v, up * m + vp)
                .expect("in range");
            let _ = b
                .add_edge_idempotent(u * m + vp, up * m + v)
                .expect("in range");
        }
    }
    b.build()
}

#[cfg(test)]
mod product_tests {
    use super::*;
    use crate::generators::{complete, cycle, path};

    #[test]
    fn cartesian_k2_square_is_c4() {
        let k2 = path(2);
        let c4 = cartesian_product(&k2, &k2);
        assert!(crate::iso::are_isomorphic(&c4, &cycle(4)));
    }

    #[test]
    fn cartesian_degree_sum() {
        // deg_{G□H}(u,v) = deg_G(u) + deg_H(v).
        let g = cycle(3);
        let h = path(3);
        let p = cartesian_product(&g, &h);
        for u in 0..3 {
            for v in 0..3 {
                assert_eq!(p.degree(u * 3 + v), g.degree(u) + h.degree(v));
            }
        }
    }

    #[test]
    fn tensor_product_edge_count() {
        // |E(G × H)| = 2 |E(G)| |E(H)| for simple graphs without
        // degenerate identifications.
        let g = cycle(5);
        let h = path(4);
        let t = tensor_product(&g, &h);
        assert_eq!(t.size(), 2 * g.size() * h.size());
    }

    #[test]
    fn tensor_of_bipartite_disconnects() {
        // K2 × K2 = two disjoint edges.
        let k2 = complete(2);
        let t = tensor_product(&k2, &k2);
        assert_eq!(t.order(), 4);
        assert_eq!(t.size(), 2);
        assert_eq!(crate::ops::components(&t).len(), 2);
    }
}
