//! Graph operations: disjoint union, complement, permutation, subgraphs,
//! line graphs, and the blow-up used by Section 5's distance measures.
//!
//! Operations whose arguments come from untrusted callers have fallible
//! `try_*` variants returning [`GraphError::InvalidArgument`]; the plain
//! forms panic on the same violations. Internal `expect`s are reserved for
//! genuine invariants (edges re-inserted from an already-validated
//! [`Graph`] cannot fail the builder).

use crate::{Graph, GraphBuilder, GraphError, Result};

/// Disjoint union `G ∪ H`. Nodes of `h` are shifted by `g.order()`.
pub fn disjoint_union(g: &Graph, h: &Graph) -> Graph {
    let n = g.order() + h.order();
    let shift = g.order();
    let mut b = GraphBuilder::new(n);
    for (u, v) in g.edges() {
        b.add_edge(u, v).expect("valid source edges");
    }
    for (u, v) in h.edges() {
        b.add_edge(u + shift, v + shift)
            .expect("valid source edges");
    }
    for (v, &l) in g.labels().iter().enumerate() {
        b.set_label(v, l).expect("in range");
    }
    for (v, &l) in h.labels().iter().enumerate() {
        b.set_label(v + shift, l).expect("in range");
    }
    b.build()
}

/// Disjoint union of many graphs.
pub fn disjoint_union_all<'a, I: IntoIterator<Item = &'a Graph>>(graphs: I) -> Graph {
    let mut acc = Graph::empty(0);
    for g in graphs {
        acc = disjoint_union(&acc, g);
    }
    acc
}

/// The complement graph (labels preserved).
pub fn complement(g: &Graph) -> Graph {
    let n = g.order();
    let mut b = GraphBuilder::new(n);
    for u in 0..n {
        for v in (u + 1)..n {
            if !g.has_edge(u, v) {
                b.add_edge(u, v).expect("fresh edge");
            }
        }
    }
    for (v, &l) in g.labels().iter().enumerate() {
        b.set_label(v, l).expect("in range");
    }
    b.build()
}

/// Relabels nodes by a permutation: node `v` of `g` becomes `perm[v]`.
///
/// The result is isomorphic to `g`; this is the workhorse for
/// isomorphism-invariance property tests.
///
/// # Panics
/// If `perm` is not a permutation of `0..g.order()` — see [`try_permute`]
/// for the typed-error variant.
pub fn permute(g: &Graph, perm: &[usize]) -> Graph {
    try_permute(g, perm).unwrap_or_else(|e| panic!("{e}"))
}

/// [`permute`] with argument violations surfaced as typed errors.
///
/// # Errors
/// [`GraphError::InvalidArgument`] when `perm` has the wrong length,
/// contains an out-of-range image, or repeats one.
pub fn try_permute(g: &Graph, perm: &[usize]) -> Result<Graph> {
    if perm.len() != g.order() {
        return Err(GraphError::InvalidArgument(format!(
            "not a permutation: length {} for a graph of order {}",
            perm.len(),
            g.order()
        )));
    }
    let mut seen = vec![false; g.order()];
    for (v, &p) in perm.iter().enumerate() {
        if p >= g.order() || seen[p] {
            return Err(GraphError::InvalidArgument(format!(
                "not a permutation: perm[{v}] = {p} is {}",
                if p >= g.order() {
                    "out of range"
                } else {
                    "repeated"
                }
            )));
        }
        seen[p] = true;
    }
    let mut b = GraphBuilder::new(g.order());
    for (u, v) in g.edges() {
        // Invariant: a bijective relabelling of a simple graph is simple.
        b.add_edge(perm[u], perm[v]).expect("permuted simple graph");
    }
    for (v, &l) in g.labels().iter().enumerate() {
        b.set_label(perm[v], l)
            .expect("permutation image is in range");
    }
    Ok(b.build())
}

/// The subgraph induced by `nodes` (which must be distinct). Node `i` of the
/// result corresponds to `nodes[i]`.
///
/// # Panics
/// On out-of-range or repeated nodes — see [`try_induced_subgraph`] for
/// the typed-error variant.
pub fn induced_subgraph(g: &Graph, nodes: &[usize]) -> Graph {
    try_induced_subgraph(g, nodes).unwrap_or_else(|e| panic!("{e}"))
}

/// [`induced_subgraph`] with argument violations surfaced as typed errors.
///
/// # Errors
/// [`GraphError::InvalidArgument`] when `nodes` contains an index
/// `>= g.order()` or the same index twice.
pub fn try_induced_subgraph(g: &Graph, nodes: &[usize]) -> Result<Graph> {
    let mut seen = vec![false; g.order()];
    for &u in nodes {
        if u >= g.order() {
            return Err(GraphError::InvalidArgument(format!(
                "induced-subgraph node {u} out of range for order {}",
                g.order()
            )));
        }
        if seen[u] {
            return Err(GraphError::InvalidArgument(format!(
                "induced-subgraph node {u} repeated"
            )));
        }
        seen[u] = true;
    }
    let mut b = GraphBuilder::new(nodes.len());
    for (i, &u) in nodes.iter().enumerate() {
        b.set_label(i, g.label(u))
            .expect("node index validated above");
        for (j, &v) in nodes.iter().enumerate().skip(i + 1) {
            if g.has_edge(u, v) {
                // Invariant: distinct (i, j) pairs are visited once each.
                b.add_edge(i, j).expect("induced simple graph");
            }
        }
    }
    Ok(b.build())
}

/// The line graph `L(G)`: one node per edge of `G`, adjacent iff the edges
/// share an endpoint.
pub fn line_graph(g: &Graph) -> Graph {
    let edges = g.edge_vec();
    let mut b = GraphBuilder::new(edges.len());
    for i in 0..edges.len() {
        for j in (i + 1)..edges.len() {
            let (a, c) = edges[i];
            let (x, y) = edges[j];
            if a == x || a == y || c == x || c == y {
                b.add_edge(i, j).expect("fresh edge");
            }
        }
    }
    b.build()
}

/// The `k`-fold blow-up: every node becomes an independent set of `k` copies,
/// every edge a complete bipartite bundle. Used to compare graphs of
/// different orders via the least common multiple (Section 5.1, after [67]).
///
/// # Panics
/// If `k == 0` or `g.order() * k` overflows — see [`try_blow_up`] for the
/// typed-error variant.
pub fn blow_up(g: &Graph, k: usize) -> Graph {
    try_blow_up(g, k).unwrap_or_else(|e| panic!("{e}"))
}

/// [`blow_up`] with argument violations surfaced as typed errors.
///
/// # Errors
/// [`GraphError::InvalidArgument`] when `k == 0` (the blow-up factor must
/// be positive) or the blown-up order `g.order() * k` overflows `usize`.
pub fn try_blow_up(g: &Graph, k: usize) -> Result<Graph> {
    if k == 0 {
        return Err(GraphError::InvalidArgument(
            "blow-up factor must be positive".into(),
        ));
    }
    let n = g.order();
    let blown = n
        .checked_mul(k)
        .ok_or_else(|| GraphError::InvalidArgument(format!("blow-up order {n} * {k} overflows")))?;
    let mut b = GraphBuilder::new(blown);
    for (u, v) in g.edges() {
        for i in 0..k {
            for j in 0..k {
                // Invariant: copies of distinct endpoints never coincide.
                b.add_edge(u * k + i, v * k + j).expect("fresh edge");
            }
        }
    }
    for v in 0..n {
        for i in 0..k {
            b.set_label(v * k + i, g.label(v))
                .expect("copy index is in range");
        }
    }
    Ok(b.build())
}

/// Splits a graph into its connected components (as induced subgraphs, each
/// with its original-node index map).
pub fn components(g: &Graph) -> Vec<(Graph, Vec<usize>)> {
    let comps = crate::dist::connected_components(g);
    let ncomp = comps.iter().copied().max().map_or(0, |m| m + 1);
    let mut nodes_of: Vec<Vec<usize>> = vec![Vec::new(); ncomp];
    for (v, &c) in comps.iter().enumerate() {
        nodes_of[c].push(v);
    }
    nodes_of
        .into_iter()
        .map(|nodes| (induced_subgraph(g, &nodes), nodes))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn union_of_triangles_is_two_components() {
        let t = generators::cycle(3);
        let u = disjoint_union(&t, &t);
        assert_eq!(u.order(), 6);
        assert_eq!(u.size(), 6);
        assert_eq!(components(&u).len(), 2);
    }

    #[test]
    fn complement_involutive() {
        let g = generators::path(5);
        assert_eq!(complement(&complement(&g)), g);
    }

    #[test]
    fn complement_of_complete_is_empty() {
        let g = generators::complete(4);
        assert_eq!(complement(&g).size(), 0);
    }

    #[test]
    fn permute_preserves_degree_sequence() {
        let g = generators::star(5);
        let p = permute(&g, &[5, 4, 3, 2, 1, 0]);
        assert_eq!(g.degree_sequence(), p.degree_sequence());
        assert!(p.has_edge(5, 4));
    }

    #[test]
    #[should_panic(expected = "not a permutation")]
    fn permute_rejects_non_permutation() {
        let g = generators::path(3);
        permute(&g, &[0, 0, 1]);
    }

    #[test]
    fn induced_subgraph_of_cycle() {
        let c = generators::cycle(5);
        let sub = induced_subgraph(&c, &[0, 1, 2]);
        // path on 3 nodes
        assert_eq!(sub.size(), 2);
        assert_eq!(sub.degree(1), 2);
    }

    #[test]
    fn line_graph_of_path() {
        // L(P4) = P3
        let p = generators::path(4);
        let l = line_graph(&p);
        assert_eq!(l.order(), 3);
        assert_eq!(l.size(), 2);
    }

    #[test]
    fn line_graph_of_star_is_complete() {
        let s = generators::star(4);
        let l = line_graph(&s);
        assert_eq!(l.order(), 4);
        assert_eq!(l.size(), 6);
    }

    #[test]
    fn blow_up_counts() {
        let e = generators::path(2); // single edge
        let b = blow_up(&e, 3);
        assert_eq!(b.order(), 6);
        assert_eq!(b.size(), 9);
    }

    #[test]
    fn try_variants_reject_bad_arguments() {
        let g = generators::path(3);
        for (got, why) in [
            (try_permute(&g, &[0, 1]), "short permutation"),
            (try_permute(&g, &[0, 1, 3]), "out-of-range image"),
            (try_permute(&g, &[0, 0, 1]), "repeated image"),
            (try_induced_subgraph(&g, &[0, 5]), "node out of range"),
            (try_induced_subgraph(&g, &[1, 1]), "node repeated"),
            (try_blow_up(&g, 0), "zero blow-up factor"),
            (try_blow_up(&g, usize::MAX / 2), "overflowing blow-up"),
        ] {
            match got {
                Err(crate::GraphError::InvalidArgument(_)) => {}
                other => panic!("{why}: expected InvalidArgument, got {other:?}"),
            }
        }
    }

    #[test]
    fn try_variants_match_infallible_on_valid_input() {
        let g = generators::cycle(4);
        assert_eq!(
            try_permute(&g, &[1, 2, 3, 0]).unwrap(),
            permute(&g, &[1, 2, 3, 0])
        );
        assert_eq!(
            try_induced_subgraph(&g, &[0, 1, 2]).unwrap(),
            induced_subgraph(&g, &[0, 1, 2])
        );
        assert_eq!(try_blow_up(&g, 2).unwrap(), blow_up(&g, 2));
    }
}

/// The Cartesian product `G □ H`: vertices `V(G) × V(H)`; `(u, v)` adjacent
/// to `(u', v')` iff (`u = u'` and `vv' ∈ E(H)`) or (`uu' ∈ E(G)` and
/// `v = v'`). Node `(u, v)` has index `u · |H| + v`.
pub fn cartesian_product(g: &Graph, h: &Graph) -> Graph {
    let (n, m) = (g.order(), h.order());
    let mut b = GraphBuilder::new(n * m);
    for u in 0..n {
        for (v, w) in h.edges() {
            b.add_edge(u * m + v, u * m + w).expect("fresh");
        }
    }
    for (u, up) in g.edges() {
        for v in 0..m {
            b.add_edge(u * m + v, up * m + v).expect("fresh");
        }
    }
    b.build()
}

/// The tensor (categorical) product `G × H`: `(u, v)` adjacent to
/// `(u', v')` iff `uu' ∈ E(G)` and `vv' ∈ E(H)`. This is the categorical
/// product of graphs: homomorphisms into it are pairs of homomorphisms, so
/// `hom(F, G × H) = hom(F, G) · hom(F, H)` — the identity behind the
/// direct-product random-walk kernel.
pub fn tensor_product(g: &Graph, h: &Graph) -> Graph {
    let m = h.order();
    let mut b = GraphBuilder::new(g.order() * m);
    for (u, up) in g.edges() {
        for (v, vp) in h.edges() {
            // Both orientations of the pair of undirected edges.
            let _ = b
                .add_edge_idempotent(u * m + v, up * m + vp)
                .expect("in range");
            let _ = b
                .add_edge_idempotent(u * m + vp, up * m + v)
                .expect("in range");
        }
    }
    b.build()
}

#[cfg(test)]
mod product_tests {
    use super::*;
    use crate::generators::{complete, cycle, path};

    #[test]
    fn cartesian_k2_square_is_c4() {
        let k2 = path(2);
        let c4 = cartesian_product(&k2, &k2);
        assert!(crate::iso::are_isomorphic(&c4, &cycle(4)));
    }

    #[test]
    fn cartesian_degree_sum() {
        // deg_{G□H}(u,v) = deg_G(u) + deg_H(v).
        let g = cycle(3);
        let h = path(3);
        let p = cartesian_product(&g, &h);
        for u in 0..3 {
            for v in 0..3 {
                assert_eq!(p.degree(u * 3 + v), g.degree(u) + h.degree(v));
            }
        }
    }

    #[test]
    fn tensor_product_edge_count() {
        // |E(G × H)| = 2 |E(G)| |E(H)| for simple graphs without
        // degenerate identifications.
        let g = cycle(5);
        let h = path(4);
        let t = tensor_product(&g, &h);
        assert_eq!(t.size(), 2 * g.size() * h.size());
    }

    #[test]
    fn tensor_of_bipartite_disconnects() {
        // K2 × K2 = two disjoint edges.
        let k2 = complete(2);
        let t = tensor_product(&k2, &k2);
        assert_eq!(t.order(), 4);
        assert_eq!(t.size(), 2);
        assert_eq!(crate::ops::components(&t).len(), 2);
    }
}
