//! Distance and connectivity primitives: BFS, all-pairs shortest paths,
//! components, bipartiteness, triangle counts.
//!
//! These feed the metric node embeddings of Section 2.1 (similarity matrices
//! `exp(-c · dist)`), the shortest-path graph kernel (Section 2.4), and
//! various dataset generators.

use crate::Graph;
use std::collections::VecDeque;

/// Marker for "unreachable" in distance arrays.
pub const INF: usize = usize::MAX;

/// BFS distances from `src`; unreachable nodes get [`INF`].
pub fn bfs_distances(g: &Graph, src: usize) -> Vec<usize> {
    let mut dist = vec![INF; g.order()];
    let mut queue = VecDeque::with_capacity(g.order());
    dist[src] = 0;
    queue.push_back(src);
    while let Some(v) = queue.pop_front() {
        let d = dist[v] + 1;
        for &w in g.neighbours(v) {
            if dist[w] == INF {
                dist[w] = d;
                queue.push_back(w);
            }
        }
    }
    dist
}

/// All-pairs shortest-path matrix via repeated BFS, row-major `n * n`.
pub fn all_pairs_distances(g: &Graph) -> Vec<usize> {
    let n = g.order();
    let mut out = Vec::with_capacity(n * n);
    for v in 0..n {
        out.extend_from_slice(&bfs_distances(g, v));
    }
    out
}

/// The diameter (max finite distance); `None` for the empty graph, [`INF`]
/// wrapped in `Some` never occurs — disconnected graphs return the largest
/// finite eccentricity over all components.
pub fn diameter(g: &Graph) -> Option<usize> {
    if g.order() == 0 {
        return None;
    }
    let mut best = 0;
    for v in 0..g.order() {
        for &d in bfs_distances(g, v).iter() {
            if d != INF && d > best {
                best = d;
            }
        }
    }
    Some(best)
}

/// Component id per node (ids are `0..k` in first-seen order).
pub fn connected_components(g: &Graph) -> Vec<usize> {
    let n = g.order();
    let mut comp = vec![usize::MAX; n];
    let mut next = 0;
    let mut stack = Vec::new();
    for s in 0..n {
        if comp[s] != usize::MAX {
            continue;
        }
        comp[s] = next;
        stack.push(s);
        while let Some(v) = stack.pop() {
            for &w in g.neighbours(v) {
                if comp[w] == usize::MAX {
                    comp[w] = next;
                    stack.push(w);
                }
            }
        }
        next += 1;
    }
    comp
}

/// Whether the graph is connected (the empty graph counts as connected).
pub fn is_connected(g: &Graph) -> bool {
    let comp = connected_components(g);
    comp.iter().all(|&c| c == 0)
}

/// 2-colouring if the graph is bipartite, `None` otherwise.
pub fn bipartition(g: &Graph) -> Option<Vec<u8>> {
    let n = g.order();
    let mut colour = vec![u8::MAX; n];
    let mut queue = VecDeque::new();
    for s in 0..n {
        if colour[s] != u8::MAX {
            continue;
        }
        colour[s] = 0;
        queue.push_back(s);
        while let Some(v) = queue.pop_front() {
            for &w in g.neighbours(v) {
                if colour[w] == u8::MAX {
                    colour[w] = 1 - colour[v];
                    queue.push_back(w);
                } else if colour[w] == colour[v] {
                    return None;
                }
            }
        }
    }
    Some(colour)
}

/// Number of triangles in the graph.
pub fn triangle_count(g: &Graph) -> usize {
    let mut count = 0;
    for (u, v) in g.edges() {
        // Count common neighbours w with w > v > u to count each triangle once.
        let (mut i, mut j) = (0, 0);
        let nu = g.neighbours(u);
        let nv = g.neighbours(v);
        while i < nu.len() && j < nv.len() {
            match nu[i].cmp(&nv[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    if nu[i] > v {
                        count += 1;
                    }
                    i += 1;
                    j += 1;
                }
            }
        }
    }
    count
}

/// Girth (length of a shortest cycle); `None` for forests.
pub fn girth(g: &Graph) -> Option<usize> {
    // BFS from each vertex; a non-tree edge at depths (d1, d2) closes a cycle
    // of length d1 + d2 + 1.
    let n = g.order();
    let mut best: Option<usize> = None;
    for s in 0..n {
        let mut dist = vec![INF; n];
        let mut parent = vec![usize::MAX; n];
        let mut queue = VecDeque::new();
        dist[s] = 0;
        queue.push_back(s);
        while let Some(v) = queue.pop_front() {
            for &w in g.neighbours(v) {
                if dist[w] == INF {
                    dist[w] = dist[v] + 1;
                    parent[w] = v;
                    queue.push_back(w);
                } else if parent[v] != w {
                    let cyc = dist[v] + dist[w] + 1;
                    if best.is_none_or(|b| cyc < b) {
                        best = Some(cyc);
                    }
                }
            }
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn path_distances() {
        let p = generators::path(5);
        assert_eq!(bfs_distances(&p, 0), vec![0, 1, 2, 3, 4]);
        assert_eq!(diameter(&p), Some(4));
    }

    #[test]
    fn cycle_distances() {
        let c = generators::cycle(6);
        let d = bfs_distances(&c, 0);
        assert_eq!(d, vec![0, 1, 2, 3, 2, 1]);
        assert_eq!(diameter(&c), Some(3));
    }

    #[test]
    fn disconnected_components_and_inf() {
        let g = crate::ops::disjoint_union(&generators::path(2), &generators::path(2));
        assert!(!is_connected(&g));
        assert_eq!(connected_components(&g), vec![0, 0, 1, 1]);
        assert_eq!(bfs_distances(&g, 0)[2], INF);
    }

    #[test]
    fn bipartite_detection() {
        assert!(bipartition(&generators::cycle(6)).is_some());
        assert!(bipartition(&generators::cycle(5)).is_none());
        assert!(bipartition(&generators::complete(3)).is_none());
        assert!(bipartition(&generators::complete_bipartite(3, 4)).is_some());
    }

    #[test]
    fn triangles() {
        assert_eq!(triangle_count(&generators::complete(4)), 4);
        assert_eq!(triangle_count(&generators::cycle(6)), 0);
        assert_eq!(triangle_count(&generators::cycle(3)), 1);
        assert_eq!(triangle_count(&generators::complete(5)), 10);
    }

    #[test]
    fn girth_cases() {
        assert_eq!(girth(&generators::cycle(5)), Some(5));
        assert_eq!(girth(&generators::complete(4)), Some(3));
        assert_eq!(girth(&generators::path(10)), None);
        assert_eq!(girth(&generators::petersen()), Some(5));
    }

    #[test]
    fn all_pairs_matches_single_source() {
        let g = generators::petersen();
        let ap = all_pairs_distances(&g);
        for v in 0..g.order() {
            assert_eq!(
                &ap[v * g.order()..(v + 1) * g.order()],
                &bfs_distances(&g, v)[..]
            );
        }
    }
}
