//! # x2v-graph — graph and relational-structure substrate
//!
//! Core data structures for the `x2vec` workspace, a Rust reproduction of
//! Grohe's *"word2vec, node2vec, graph2vec, X2vec: Towards a Theory of Vector
//! Embeddings of Structured Data"* (PODS 2020).
//!
//! This crate provides everything the theory crates operate on:
//!
//! * [`Graph`] — undirected simple graphs in CSR form, with optional node
//!   labels (the objects of Sections 3 and 4 of the paper);
//! * [`DiGraph`] — directed graphs (Section 3.2, Section 4.2);
//! * [`WeightedGraph`] — real edge weights, the input of weighted 1-WL and
//!   partition functions (Section 3.2, Theorem 4.13);
//! * [`relational`] — relational structures of arbitrary arity and their
//!   binary *incidence structures* (Section 4.2);
//! * [`generators`] — deterministic and random graph families, including the
//!   Cai–Fürer–Immerman construction ([`cfi`]);
//! * [`enumerate`] — exhaustive small-graph and free-tree universes used to
//!   check the paper's theorems on every graph of bounded order;
//! * [`iso`] / [`canon`] — ground-truth isomorphism testing and canonical
//!   forms for small graphs;
//! * [`hash`] — a fast FxHash-style hasher used by the hot colour-interning
//!   paths of the WL crate;
//! * [`csr`] — the flat compressed-sparse-row adjacency layout as a
//!   first-class type: a zero-copy [`csr::CsrView`] over a [`Graph`]
//!   ([`Graph::csr`]) plus an owned [`csr::Csr`] built straight from edge
//!   streams, scanned by the WL-refinement and walk-generation hot loops.
//!
//! All node indices are `usize` in `0..n`. Graphs are simple (no loops, no
//! parallel edges); builders reject violations with [`GraphError`].

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
#![allow(clippy::needless_range_loop)]

pub mod canon;
pub mod cfi;
pub mod csr;
pub mod dist;
pub mod enumerate;
mod error;
pub mod generators;
mod graph;
pub mod hash;
pub mod io;
pub mod iso;
pub mod ops;
pub mod relational;

pub use error::GraphError;
pub use graph::{DiGraph, Graph, GraphBuilder, RootedGraph, WeightedGraph};

/// Convenient result alias for fallible graph construction.
pub type Result<T> = std::result::Result<T, GraphError>;
