//! A fast, non-cryptographic hasher in the style of rustc's FxHash.
//!
//! Colour interning during Weisfeiler-Leman refinement hashes millions of
//! short integer signatures; SipHash (the std default) is measurably slower
//! for this workload (see the Rust Performance Book, "Hashing"). This module
//! provides a drop-in [`FxHashMap`]/[`FxHashSet`] built on a word-at-a-time
//! multiply-rotate hasher. It is *not* HashDoS resistant; all inputs in this
//! workspace are internally generated.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// Multiplicative constant from FxHash (a truncation of pi in hex).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// Word-at-a-time multiply-rotate hasher (FxHash).
#[derive(Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            // Unwrap is fine: chunks_exact guarantees 8 bytes.
            self.add_to_hash(u64::from_le_bytes(chunk.try_into().unwrap()));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }
}

/// `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` using [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// A `HashSet` using [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_roundtrip() {
        let mut m: FxHashMap<u64, u64> = FxHashMap::default();
        for i in 0..1000u64 {
            m.insert(i, i * i);
        }
        for i in 0..1000u64 {
            assert_eq!(m.get(&i), Some(&(i * i)));
        }
        assert_eq!(m.len(), 1000);
    }

    #[test]
    fn hash_is_deterministic() {
        let h = |x: &[u64]| {
            let mut hasher = FxHasher::default();
            for &w in x {
                hasher.write_u64(w);
            }
            hasher.finish()
        };
        assert_eq!(h(&[1, 2, 3]), h(&[1, 2, 3]));
        assert_ne!(h(&[1, 2, 3]), h(&[3, 2, 1]));
    }

    #[test]
    fn byte_writes_cover_remainder_path() {
        let mut a = FxHasher::default();
        a.write(&[1, 2, 3, 4, 5, 6, 7, 8, 9]);
        let mut b = FxHasher::default();
        b.write(&[1, 2, 3, 4, 5, 6, 7, 8, 9]);
        assert_eq!(a.finish(), b.finish());
        let mut c = FxHasher::default();
        c.write(&[1, 2, 3, 4, 5, 6, 7, 8, 10]);
        assert_ne!(a.finish(), c.finish());
    }
}
