use std::fmt;

/// Errors produced when constructing or parsing graphs and structures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// A node index was `>= n` for a graph of order `n`.
    NodeOutOfRange {
        /// The offending node index.
        node: usize,
        /// The order of the graph.
        order: usize,
    },
    /// A self-loop `(v, v)` was supplied to a simple-graph builder.
    SelfLoop(usize),
    /// The same edge was supplied twice to a simple-graph builder.
    DuplicateEdge(usize, usize),
    /// A label vector's length did not match the graph order.
    LabelLengthMismatch {
        /// Number of labels supplied.
        got: usize,
        /// Expected number (the graph order).
        expected: usize,
    },
    /// A tuple supplied to a relational structure had the wrong arity.
    ArityMismatch {
        /// Name of the relation.
        relation: String,
        /// Arity the tuple should have had.
        expected: usize,
        /// Arity it actually had.
        got: usize,
    },
    /// Textual input could not be parsed.
    Parse(String),
    /// An operation received an argument outside its domain (e.g. a
    /// non-permutation relabelling or a zero blow-up factor).
    InvalidArgument(String),
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::NodeOutOfRange { node, order } => {
                write!(
                    f,
                    "node index {node} out of range for graph of order {order}"
                )
            }
            GraphError::SelfLoop(v) => {
                write!(f, "self-loop at node {v} not allowed in a simple graph")
            }
            GraphError::DuplicateEdge(u, v) => write!(f, "duplicate edge ({u}, {v})"),
            GraphError::LabelLengthMismatch { got, expected } => {
                write!(f, "label vector has length {got}, expected {expected}")
            }
            GraphError::ArityMismatch {
                relation,
                expected,
                got,
            } => {
                write!(
                    f,
                    "relation {relation} expects arity {expected}, got a tuple of arity {got}"
                )
            }
            GraphError::Parse(msg) => write!(f, "parse error: {msg}"),
            GraphError::InvalidArgument(msg) => write!(f, "invalid argument: {msg}"),
        }
    }
}

impl std::error::Error for GraphError {}

/// Every graph-construction failure is an invalid input from the guard
/// layer's point of view, so callers holding a `x2v_guard::Result` can use
/// `?` on graph builders directly.
impl From<GraphError> for x2v_guard::GuardError {
    fn from(e: GraphError) -> Self {
        x2v_guard::GuardError::invalid_input("graph", e.to_string())
    }
}
