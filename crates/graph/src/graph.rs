//! Core graph types: [`Graph`], [`DiGraph`], [`WeightedGraph`], [`RootedGraph`].

use crate::{GraphError, Result};

/// An undirected simple graph in CSR (compressed sparse row) form, with
/// optional node labels.
///
/// Nodes are `0..n`. Neighbour lists are sorted, enabling `O(log deg)` edge
/// queries via binary search and deterministic iteration order. Labels are
/// small integers (`u32`); an unlabelled graph has every label equal to `0`.
///
/// This is the object the paper's Sections 3 and 4 quantify over: 1-WL
/// refines its nodes, homomorphism vectors count maps into it.
#[derive(Clone, PartialEq, Eq)]
pub struct Graph {
    /// CSR offsets, length `n + 1`.
    offsets: Vec<usize>,
    /// Concatenated sorted neighbour lists, length `2m`.
    neighbours: Vec<usize>,
    /// One label per node (all zero for unlabelled graphs).
    labels: Vec<u32>,
}

impl Graph {
    /// Builds a graph of order `n` from an edge list. Edges may appear in any
    /// order; each unordered pair must appear at most once.
    ///
    /// # Errors
    /// Rejects out-of-range endpoints, self-loops and duplicate edges.
    pub fn from_edges(n: usize, edges: &[(usize, usize)]) -> Result<Self> {
        let mut b = GraphBuilder::new(n);
        for &(u, v) in edges {
            b.add_edge(u, v)?;
        }
        Ok(b.build())
    }

    /// Like [`Graph::from_edges`] but panics on invalid input. Intended for
    /// statically-known literals in tests and generators.
    pub fn from_edges_unchecked(n: usize, edges: &[(usize, usize)]) -> Self {
        Self::from_edges(n, edges).expect("invalid static edge list")
    }

    /// The empty graph on `n` nodes.
    pub fn empty(n: usize) -> Self {
        Graph {
            offsets: vec![0; n + 1],
            neighbours: Vec::new(),
            labels: vec![0; n],
        }
    }

    /// Number of nodes (the paper's `|G|`, the *order*).
    #[inline]
    pub fn order(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of edges (the paper's `‖G‖`).
    #[inline]
    pub fn size(&self) -> usize {
        self.neighbours.len() / 2
    }

    /// Sorted neighbour slice of `v`.
    #[inline]
    pub fn neighbours(&self, v: usize) -> &[usize] {
        &self.neighbours[self.offsets[v]..self.offsets[v + 1]]
    }

    /// The raw CSR offset array, length `order() + 1` (see [`crate::csr`]).
    #[inline]
    pub(crate) fn csr_offsets(&self) -> &[usize] {
        &self.offsets
    }

    /// The raw concatenated sorted neighbour array, length `2 * size()`.
    #[inline]
    pub(crate) fn csr_targets(&self) -> &[usize] {
        &self.neighbours
    }

    /// Degree of `v`.
    #[inline]
    pub fn degree(&self, v: usize) -> usize {
        self.offsets[v + 1] - self.offsets[v]
    }

    /// Whether the unordered pair `{u, v}` is an edge.
    #[inline]
    pub fn has_edge(&self, u: usize, v: usize) -> bool {
        self.neighbours(u).binary_search(&v).is_ok()
    }

    /// Label of node `v`.
    #[inline]
    pub fn label(&self, v: usize) -> u32 {
        self.labels[v]
    }

    /// All node labels.
    #[inline]
    pub fn labels(&self) -> &[u32] {
        &self.labels
    }

    /// True if any node carries a non-zero label.
    pub fn is_labelled(&self) -> bool {
        self.labels.iter().any(|&l| l != 0)
    }

    /// Replaces the node labels.
    ///
    /// # Errors
    /// The label vector must have length `order()`.
    pub fn set_labels(&mut self, labels: Vec<u32>) -> Result<()> {
        if labels.len() != self.order() {
            return Err(GraphError::LabelLengthMismatch {
                got: labels.len(),
                expected: self.order(),
            });
        }
        self.labels = labels;
        Ok(())
    }

    /// Returns a copy with the given labels.
    pub fn with_labels(mut self, labels: Vec<u32>) -> Result<Self> {
        self.set_labels(labels)?;
        Ok(self)
    }

    /// Iterates over all edges as ordered pairs `(u, v)` with `u < v`.
    pub fn edges(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        (0..self.order()).flat_map(move |u| {
            self.neighbours(u)
                .iter()
                .copied()
                .filter(move |&v| u < v)
                .map(move |v| (u, v))
        })
    }

    /// Collects the edge list.
    pub fn edge_vec(&self) -> Vec<(usize, usize)> {
        self.edges().collect()
    }

    /// Dense adjacency matrix in row-major order (length `n * n`), as `f64`.
    pub fn adjacency_flat(&self) -> Vec<f64> {
        let n = self.order();
        let mut a = vec![0.0; n * n];
        for (u, v) in self.edges() {
            a[u * n + v] = 1.0;
            a[v * n + u] = 1.0;
        }
        a
    }

    /// Adjacency rows as 64-bit bitsets: `bits[v][w / 64] >> (w % 64) & 1`.
    /// Useful for O(1) adjacency tests in tight backtracking loops.
    pub fn adjacency_bits(&self) -> Vec<Vec<u64>> {
        let n = self.order();
        let words = n.div_ceil(64);
        let mut bits = vec![vec![0u64; words]; n];
        for (u, v) in self.edges() {
            bits[u][v / 64] |= 1 << (v % 64);
            bits[v][u / 64] |= 1 << (u % 64);
        }
        bits
    }

    /// The degree sequence, sorted descending.
    pub fn degree_sequence(&self) -> Vec<usize> {
        let mut d: Vec<usize> = (0..self.order()).map(|v| self.degree(v)).collect();
        d.sort_unstable_by(|a, b| b.cmp(a));
        d
    }

    /// Roots the graph at `v`, producing a [`RootedGraph`] view.
    pub fn rooted(&self, v: usize) -> RootedGraph<'_> {
        assert!(v < self.order(), "root out of range");
        RootedGraph {
            graph: self,
            root: v,
        }
    }
}

impl std::fmt::Debug for Graph {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Graph(n={}, m={}, edges={:?}",
            self.order(),
            self.size(),
            self.edge_vec()
        )?;
        if self.is_labelled() {
            write!(f, ", labels={:?}", self.labels)?;
        }
        write!(f, ")")
    }
}

/// Incremental builder for [`Graph`]. Detects duplicate edges and self-loops.
pub struct GraphBuilder {
    n: usize,
    adj: Vec<Vec<usize>>,
    labels: Vec<u32>,
}

impl GraphBuilder {
    /// Starts a builder for a graph of order `n`.
    pub fn new(n: usize) -> Self {
        GraphBuilder {
            n,
            adj: vec![Vec::new(); n],
            labels: vec![0; n],
        }
    }

    /// Adds the undirected edge `{u, v}`.
    ///
    /// # Errors
    /// Rejects out-of-range endpoints, self-loops and duplicates.
    pub fn add_edge(&mut self, u: usize, v: usize) -> Result<()> {
        if u >= self.n {
            return Err(GraphError::NodeOutOfRange {
                node: u,
                order: self.n,
            });
        }
        if v >= self.n {
            return Err(GraphError::NodeOutOfRange {
                node: v,
                order: self.n,
            });
        }
        if u == v {
            return Err(GraphError::SelfLoop(u));
        }
        if self.adj[u].contains(&v) {
            return Err(GraphError::DuplicateEdge(u, v));
        }
        self.adj[u].push(v);
        self.adj[v].push(u);
        Ok(())
    }

    /// Adds the edge if not already present; returns whether it was added.
    pub fn add_edge_idempotent(&mut self, u: usize, v: usize) -> Result<bool> {
        match self.add_edge(u, v) {
            Ok(()) => Ok(true),
            Err(GraphError::DuplicateEdge(..)) => Ok(false),
            Err(e) => Err(e),
        }
    }

    /// Sets the label of a single node.
    ///
    /// # Errors
    /// Rejects out-of-range nodes.
    pub fn set_label(&mut self, v: usize, label: u32) -> Result<()> {
        if v >= self.n {
            return Err(GraphError::NodeOutOfRange {
                node: v,
                order: self.n,
            });
        }
        self.labels[v] = label;
        Ok(())
    }

    /// Finalises the builder into a CSR [`Graph`].
    pub fn build(self) -> Graph {
        let mut offsets = Vec::with_capacity(self.n + 1);
        offsets.push(0);
        let total: usize = self.adj.iter().map(Vec::len).sum();
        let mut neighbours = Vec::with_capacity(total);
        for mut list in self.adj {
            list.sort_unstable();
            neighbours.extend_from_slice(&list);
            offsets.push(neighbours.len());
        }
        Graph {
            offsets,
            neighbours,
            labels: self.labels,
        }
    }
}

/// A graph together with a distinguished root node (Section 4.4's rooted
/// graphs `(G, v)` used for homomorphism node embeddings).
#[derive(Clone, Copy)]
pub struct RootedGraph<'a> {
    /// The underlying graph.
    pub graph: &'a Graph,
    /// The distinguished node.
    pub root: usize,
}

/// A directed graph in double-CSR form (out- and in-neighbour lists).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DiGraph {
    out_offsets: Vec<usize>,
    out_neighbours: Vec<usize>,
    in_offsets: Vec<usize>,
    in_neighbours: Vec<usize>,
    labels: Vec<u32>,
}

impl DiGraph {
    /// Builds a directed graph of order `n` from arcs `(u, v)` meaning `u → v`.
    ///
    /// # Errors
    /// Rejects out-of-range endpoints, self-loops and duplicate arcs.
    pub fn from_arcs(n: usize, arcs: &[(usize, usize)]) -> Result<Self> {
        let mut out = vec![Vec::new(); n];
        let mut inn = vec![Vec::new(); n];
        for &(u, v) in arcs {
            if u >= n {
                return Err(GraphError::NodeOutOfRange { node: u, order: n });
            }
            if v >= n {
                return Err(GraphError::NodeOutOfRange { node: v, order: n });
            }
            if u == v {
                return Err(GraphError::SelfLoop(u));
            }
            if out[u].contains(&v) {
                return Err(GraphError::DuplicateEdge(u, v));
            }
            out[u].push(v);
            inn[v].push(u);
        }
        let pack = |lists: Vec<Vec<usize>>| {
            let mut offsets = Vec::with_capacity(n + 1);
            offsets.push(0);
            let mut flat = Vec::new();
            for mut l in lists {
                l.sort_unstable();
                flat.extend_from_slice(&l);
                offsets.push(flat.len());
            }
            (offsets, flat)
        };
        let (out_offsets, out_neighbours) = pack(out);
        let (in_offsets, in_neighbours) = pack(inn);
        Ok(DiGraph {
            out_offsets,
            out_neighbours,
            in_offsets,
            in_neighbours,
            labels: vec![0; n],
        })
    }

    /// Number of nodes.
    #[inline]
    pub fn order(&self) -> usize {
        self.out_offsets.len() - 1
    }

    /// Number of arcs.
    #[inline]
    pub fn size(&self) -> usize {
        self.out_neighbours.len()
    }

    /// Sorted out-neighbours of `v`.
    #[inline]
    pub fn out_neighbours(&self, v: usize) -> &[usize] {
        &self.out_neighbours[self.out_offsets[v]..self.out_offsets[v + 1]]
    }

    /// Sorted in-neighbours of `v`.
    #[inline]
    pub fn in_neighbours(&self, v: usize) -> &[usize] {
        &self.in_neighbours[self.in_offsets[v]..self.in_offsets[v + 1]]
    }

    /// Whether the arc `u → v` exists.
    #[inline]
    pub fn has_arc(&self, u: usize, v: usize) -> bool {
        self.out_neighbours(u).binary_search(&v).is_ok()
    }

    /// Node labels.
    #[inline]
    pub fn labels(&self) -> &[u32] {
        &self.labels
    }

    /// Replaces node labels.
    ///
    /// # Errors
    /// The label vector must have length `order()`.
    pub fn set_labels(&mut self, labels: Vec<u32>) -> Result<()> {
        if labels.len() != self.order() {
            return Err(GraphError::LabelLengthMismatch {
                got: labels.len(),
                expected: self.order(),
            });
        }
        self.labels = labels;
        Ok(())
    }

    /// All arcs `(u, v)`.
    pub fn arcs(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        (0..self.order()).flat_map(move |u| self.out_neighbours(u).iter().map(move |&v| (u, v)))
    }

    /// Forgets orientation, producing the underlying undirected simple graph.
    pub fn to_undirected(&self) -> Graph {
        let mut b = GraphBuilder::new(self.order());
        for (u, v) in self.arcs() {
            // Both orientations may exist; keep the edge once.
            let _ = b.add_edge_idempotent(u, v);
        }
        let mut g = b.build();
        g.set_labels(self.labels.clone()).expect("same order");
        g
    }
}

/// An undirected graph with real edge weights `α(u, v)` (Section 3.2).
///
/// A missing edge has weight `0`; stored edges may carry any non-zero weight
/// (including negative — the paper's weighted WL works over any commutative
/// monoid, here `(ℝ, +)`).
#[derive(Clone, Debug, PartialEq)]
pub struct WeightedGraph {
    offsets: Vec<usize>,
    /// Pairs `(neighbour, weight)`, sorted by neighbour.
    entries: Vec<(usize, f64)>,
    labels: Vec<u32>,
}

impl WeightedGraph {
    /// Builds from weighted edges. Zero-weight edges are dropped (weight 0
    /// means "no edge" in the paper's convention).
    ///
    /// # Errors
    /// Rejects out-of-range endpoints, self-loops and duplicates.
    pub fn from_weighted_edges(n: usize, edges: &[(usize, usize, f64)]) -> Result<Self> {
        let mut adj: Vec<Vec<(usize, f64)>> = vec![Vec::new(); n];
        for &(u, v, w) in edges {
            if u >= n {
                return Err(GraphError::NodeOutOfRange { node: u, order: n });
            }
            if v >= n {
                return Err(GraphError::NodeOutOfRange { node: v, order: n });
            }
            if u == v {
                return Err(GraphError::SelfLoop(u));
            }
            if adj[u].iter().any(|&(x, _)| x == v) {
                return Err(GraphError::DuplicateEdge(u, v));
            }
            if w != 0.0 {
                adj[u].push((v, w));
                adj[v].push((u, w));
            }
        }
        let mut offsets = Vec::with_capacity(n + 1);
        offsets.push(0);
        let mut entries = Vec::new();
        for mut list in adj {
            list.sort_unstable_by_key(|&(x, _)| x);
            entries.extend_from_slice(&list);
            offsets.push(entries.len());
        }
        Ok(WeightedGraph {
            offsets,
            entries,
            labels: vec![0; n],
        })
    }

    /// Lifts an unweighted graph to weight 1 on every edge.
    pub fn from_graph(g: &Graph) -> Self {
        let edges: Vec<(usize, usize, f64)> = g.edges().map(|(u, v)| (u, v, 1.0)).collect();
        let mut wg = Self::from_weighted_edges(g.order(), &edges).expect("valid source graph");
        wg.labels = g.labels().to_vec();
        wg
    }

    /// Number of nodes.
    #[inline]
    pub fn order(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of (non-zero) weighted edges.
    #[inline]
    pub fn size(&self) -> usize {
        self.entries.len() / 2
    }

    /// Sorted `(neighbour, weight)` slice of `v`.
    #[inline]
    pub fn weighted_neighbours(&self, v: usize) -> &[(usize, f64)] {
        &self.entries[self.offsets[v]..self.offsets[v + 1]]
    }

    /// The weight `α(u, v)`, `0.0` if there is no edge.
    pub fn weight(&self, u: usize, v: usize) -> f64 {
        match self
            .weighted_neighbours(u)
            .binary_search_by_key(&v, |&(x, _)| x)
        {
            Ok(i) => self.weighted_neighbours(u)[i].1,
            Err(_) => 0.0,
        }
    }

    /// Node labels.
    #[inline]
    pub fn labels(&self) -> &[u32] {
        &self.labels
    }

    /// Replaces node labels.
    ///
    /// # Errors
    /// The label vector must have length `order()`.
    pub fn set_labels(&mut self, labels: Vec<u32>) -> Result<()> {
        if labels.len() != self.order() {
            return Err(GraphError::LabelLengthMismatch {
                got: labels.len(),
                expected: self.order(),
            });
        }
        self.labels = labels;
        Ok(())
    }

    /// Dense weighted adjacency matrix, row-major, length `n * n`.
    pub fn adjacency_flat(&self) -> Vec<f64> {
        let n = self.order();
        let mut a = vec![0.0; n * n];
        for v in 0..n {
            for &(w, alpha) in self.weighted_neighbours(v) {
                a[v * n + w] = alpha;
            }
        }
        a
    }

    /// All weighted edges `(u, v, α)` with `u < v`.
    pub fn weighted_edges(&self) -> impl Iterator<Item = (usize, usize, f64)> + '_ {
        (0..self.order()).flat_map(move |u| {
            self.weighted_neighbours(u)
                .iter()
                .filter(move |&&(v, _)| u < v)
                .map(move |&(v, w)| (u, v, w))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn triangle_basics() {
        let g = Graph::from_edges(3, &[(0, 1), (1, 2), (2, 0)]).unwrap();
        assert_eq!(g.order(), 3);
        assert_eq!(g.size(), 3);
        assert!(g.has_edge(0, 2));
        assert!(!g.has_edge(0, 0));
        assert_eq!(g.neighbours(1), &[0, 2]);
        assert_eq!(g.degree_sequence(), vec![2, 2, 2]);
    }

    #[test]
    fn builder_rejects_bad_input() {
        assert!(matches!(
            Graph::from_edges(2, &[(0, 0)]),
            Err(GraphError::SelfLoop(0))
        ));
        assert!(matches!(
            Graph::from_edges(2, &[(0, 1), (1, 0)]),
            Err(GraphError::DuplicateEdge(1, 0))
        ));
        assert!(matches!(
            Graph::from_edges(2, &[(0, 5)]),
            Err(GraphError::NodeOutOfRange { node: 5, order: 2 })
        ));
    }

    #[test]
    fn labels_roundtrip() {
        let g = Graph::from_edges(2, &[(0, 1)])
            .unwrap()
            .with_labels(vec![3, 7])
            .unwrap();
        assert_eq!(g.label(0), 3);
        assert_eq!(g.label(1), 7);
        assert!(g.is_labelled());
        assert!(matches!(
            g.clone().with_labels(vec![1]),
            Err(GraphError::LabelLengthMismatch {
                got: 1,
                expected: 2
            })
        ));
    }

    #[test]
    fn edges_iterator_each_edge_once() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0), (0, 2)]).unwrap();
        let e = g.edge_vec();
        assert_eq!(e.len(), 5);
        for &(u, v) in &e {
            assert!(u < v);
        }
    }

    #[test]
    fn adjacency_flat_symmetric() {
        let g = Graph::from_edges(3, &[(0, 1), (1, 2)]).unwrap();
        let a = g.adjacency_flat();
        assert_eq!(a[1], 1.0); // (0,1)
        assert_eq!(a[3], 1.0); // (1,0)
        assert_eq!(a[2], 0.0); // (0,2)
    }

    #[test]
    fn adjacency_bits_matches_has_edge() {
        let g = Graph::from_edges(70, &[(0, 69), (3, 64), (1, 2)]).unwrap();
        let bits = g.adjacency_bits();
        for u in 0..70 {
            for v in 0..70 {
                let bit = bits[u][v / 64] >> (v % 64) & 1 == 1;
                assert_eq!(bit, g.has_edge(u, v), "({u},{v})");
            }
        }
    }

    #[test]
    fn digraph_orientation() {
        let d = DiGraph::from_arcs(3, &[(0, 1), (1, 2), (2, 0)]).unwrap();
        assert!(d.has_arc(0, 1));
        assert!(!d.has_arc(1, 0));
        assert_eq!(d.in_neighbours(0), &[2]);
        assert_eq!(d.out_neighbours(0), &[1]);
        let g = d.to_undirected();
        assert_eq!(g.size(), 3);
    }

    #[test]
    fn digraph_two_cycle_undirected_once() {
        let d = DiGraph::from_arcs(2, &[(0, 1), (1, 0)]).unwrap();
        assert_eq!(d.size(), 2);
        assert_eq!(d.to_undirected().size(), 1);
    }

    #[test]
    fn weighted_graph_weights() {
        let w = WeightedGraph::from_weighted_edges(3, &[(0, 1, 2.5), (1, 2, -1.0), (0, 2, 0.0)])
            .unwrap();
        assert_eq!(w.weight(0, 1), 2.5);
        assert_eq!(w.weight(1, 0), 2.5);
        assert_eq!(w.weight(1, 2), -1.0);
        // zero-weight edge dropped
        assert_eq!(w.weight(0, 2), 0.0);
        assert_eq!(w.size(), 2);
    }

    #[test]
    fn weighted_from_graph_is_unit() {
        let g = Graph::from_edges(3, &[(0, 1), (1, 2)]).unwrap();
        let w = WeightedGraph::from_graph(&g);
        assert_eq!(w.weight(0, 1), 1.0);
        assert_eq!(w.weight(0, 2), 0.0);
    }

    #[test]
    fn rooted_view() {
        let g = Graph::from_edges(2, &[(0, 1)]).unwrap();
        let r = g.rooted(1);
        assert_eq!(r.root, 1);
        assert_eq!(r.graph.order(), 2);
    }
}
