//! Property-based tests of the graph substrate.

use proptest::prelude::*;
use x2v_graph::canon::{canonical_key, tree_canonical};
use x2v_graph::dist;
use x2v_graph::generators;
use x2v_graph::iso::are_isomorphic;
use x2v_graph::ops::{complement, disjoint_union, permute};
use x2v_graph::Graph;

/// Strategy: a graph of order `n ∈ 3..=7` from an edge bitmask.
fn arb_graph() -> impl Strategy<Value = Graph> {
    (3usize..=7, any::<u32>()).prop_map(|(n, mask)| {
        let pairs: Vec<(usize, usize)> = (0..n)
            .flat_map(|u| ((u + 1)..n).map(move |v| (u, v)))
            .collect();
        let edges: Vec<(usize, usize)> = pairs
            .iter()
            .enumerate()
            .filter(|&(i, _)| mask >> (i % 32) & 1 == 1 || mask >> ((i + 7) % 32) & 1 == 1)
            .map(|(_, &e)| e)
            .collect();
        Graph::from_edges_unchecked(n, &edges)
    })
}

/// Strategy: a permutation of `0..n`.
fn arb_perm(n: usize) -> impl Strategy<Value = Vec<usize>> {
    Just((0..n).collect::<Vec<usize>>()).prop_shuffle()
}

proptest! {
    #[test]
    fn permutation_preserves_isomorphism_class(g in arb_graph(), seed in any::<u64>()) {
        let mut perm: Vec<usize> = (0..g.order()).collect();
        // cheap seeded shuffle
        let mut s = seed;
        for i in (1..perm.len()).rev() {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
            perm.swap(i, (s >> 33) as usize % (i + 1));
        }
        let h = permute(&g, &perm);
        prop_assert_eq!(g.degree_sequence(), h.degree_sequence());
        prop_assert_eq!(canonical_key(&g), canonical_key(&h));
        prop_assert!(are_isomorphic(&g, &h));
    }

    #[test]
    fn complement_is_involutive(g in arb_graph()) {
        prop_assert_eq!(complement(&complement(&g)), g.clone());
        let n = g.order();
        prop_assert_eq!(g.size() + complement(&g).size(), n * (n - 1) / 2);
    }

    #[test]
    fn union_adds_orders_and_sizes(g in arb_graph(), h in arb_graph()) {
        let u = disjoint_union(&g, &h);
        prop_assert_eq!(u.order(), g.order() + h.order());
        prop_assert_eq!(u.size(), g.size() + h.size());
        // Components of the union refine into the two parts.
        let comp = dist::connected_components(&u);
        for v in 0..g.order() {
            for w in g.order()..u.order() {
                prop_assert_ne!(comp[v], comp[w]);
            }
        }
    }

    #[test]
    fn bfs_distance_is_symmetric(g in arb_graph()) {
        let n = g.order();
        let all = dist::all_pairs_distances(&g);
        for v in 0..n {
            for w in 0..n {
                prop_assert_eq!(all[v * n + w], all[w * n + v]);
            }
        }
    }

    #[test]
    fn handshake_lemma(g in arb_graph()) {
        let total: usize = (0..g.order()).map(|v| g.degree(v)).sum();
        prop_assert_eq!(total, 2 * g.size());
    }

    #[test]
    fn tree_canonical_is_permutation_invariant(n in 2usize..=9, seed in any::<u64>()) {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let t = generators::random_tree(n, &mut rng);
        let mut perm: Vec<usize> = (0..n).collect();
        let mut s = seed ^ 0xabcd;
        for i in (1..n).rev() {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
            perm.swap(i, (s >> 33) as usize % (i + 1));
        }
        let p = permute(&t, &perm);
        prop_assert_eq!(tree_canonical(&t), tree_canonical(&p));
    }

    #[test]
    fn text_roundtrip(g in arb_graph()) {
        let parsed = x2v_graph::io::from_text(&x2v_graph::io::to_text(&g)).unwrap();
        prop_assert_eq!(g, parsed);
    }

    #[test]
    fn shuffle_strategy_gives_valid_permutation(p in arb_perm(6)) {
        let mut sorted = p.clone();
        sorted.sort_unstable();
        prop_assert_eq!(sorted, (0..6).collect::<Vec<usize>>());
    }

    #[test]
    fn csr_from_edges_matches_graph_and_round_trips(g in arb_graph()) {
        use x2v_graph::csr::Csr;
        let edges = g.edge_vec();
        let c = Csr::from_edges(g.order(), &edges).unwrap();
        // Same neighbour sets and degrees as the validated Graph build.
        prop_assert_eq!(c.order(), g.order());
        prop_assert_eq!(c.nnz(), 2 * g.size());
        for v in 0..g.order() {
            prop_assert_eq!(c.neighbours(v), g.neighbours(v));
            prop_assert_eq!(c.degree(v), g.degree(v));
        }
        // Handshake: degree sum equals stored entries.
        let degree_sum: usize = (0..c.order()).map(|v| c.degree(v)).sum();
        prop_assert_eq!(degree_sum, c.nnz());
        // Round-trip through adjacency lists is the identity.
        prop_assert_eq!(&Csr::from_adjacency(&c.to_adjacency()).unwrap(), &c);
        // From-graph copy and zero-copy view agree with the rebuilt CSR.
        prop_assert_eq!(&Csr::from_graph(&g), &c);
        prop_assert_eq!(g.csr().offsets(), c.view().offsets());
        prop_assert_eq!(g.csr().targets(), c.view().targets());
    }

    #[test]
    fn csr_build_is_edge_order_independent(g in arb_graph(), seed in any::<u64>()) {
        use x2v_graph::csr::Csr;
        let mut edges = g.edge_vec();
        let forward = Csr::from_edges(g.order(), &edges).unwrap();
        // Seeded shuffle plus endpoint flips: same multiset, different order.
        let mut s = seed | 1;
        for i in (1..edges.len()).rev() {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
            edges.swap(i, (s >> 33) as usize % (i + 1));
            if s & 1 == 1 {
                let (u, v) = edges[i];
                edges[i] = (v, u);
            }
        }
        prop_assert_eq!(Csr::from_edges(g.order(), &edges).unwrap(), forward);
    }
}
