//! # x2v-par — deterministic std-only parallelism for the quadratic hot paths
//!
//! Every hot path the reproduction hinges on — WL colour refinement,
//! Gram-matrix assembly, hom counting over pattern families, walk
//! generation, SGNS epochs — is embarrassingly parallel over
//! rows/nodes/patterns. This crate parallelises them **without giving up
//! bit-determinism**: the same inputs produce bit-identical outputs for
//! any `X2V_THREADS` value, including 1.
//!
//! ## The determinism contract
//!
//! 1. **Chunk decomposition is keyed by input size, never by thread
//!    count.** [`ChunkPlan::new`] splits `total` items into a fixed
//!    sequence of contiguous ranges that depends only on `total` and the
//!    call site's `grain`; threads merely race to *execute* a fixed plan.
//! 2. **Randomised chunks draw from split RNG streams**, derived with the
//!    vendored xoshiro `jump()` (`StdRng::split_stream`) from a single
//!    base state — substream `c` is a pure function of (base, `c`).
//! 3. **Reduction is ordered**: [`map_chunks`] returns chunk results in
//!    chunk-index order, so any fold over them is order-stable.
//! 4. **Budget work accounting stays on the coordinator.** Parallel call
//!    sites pre-charge their [`x2v_guard::Meter`] chunk-by-chunk in chunk
//!    order *before* dispatching, so a work-limit trip cuts the plan at
//!    the same chunk index on every run; workers only poll the
//!    (timing-dependent anyway) deadline/cancel via [`x2v_guard::Budget::poll`],
//!    which never touches fault-injection call counts.
//!
//! ## Execution model
//!
//! A process-global pool per thread count (`X2V_THREADS`, overridable in
//! process via [`with_threads`]) executes plans over per-worker lanes
//! (chunk `i` homes on lane `i mod k`) with lock-free stealing between
//! lanes. A chunk that panics is contained with `catch_unwind`: the job
//! aborts, remaining chunks are skipped, and the panic surfaces either
//! re-thrown ([`map_chunks`]) or as the typed
//! [`GuardError::WorkerPanic`] ([`try_map_chunks`]) — the pool itself is
//! never poisoned. The armed fault `X2V_FAULTS=panic@par/worker`
//! (`x2v_guard::faults::panic_fault`) panics a worker deliberately so this
//! containment path is itself under test.
//!
//! Observability: every executed chunk counts into `par/tasks` (and
//! `par/steals` when it ran off its home lane), pool spawns count into
//! `par/threads`, and each chunk runs under a `par/chunk` span — so
//! `x2v-prof`'s Chrome trace shows one lane per worker thread.
//!
//! Nested parallel calls from inside a worker run inline on that worker
//! (same plan, same order — same bits), so call sites never deadlock by
//! composition.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use std::cell::Cell;
use std::collections::HashMap;
use std::ops::Range;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

use x2v_guard::GuardError;

/// The guarded site name of the worker loop: panic faults armed at this
/// site (`X2V_FAULTS=panic@par/worker`) panic a worker mid-job, and
/// [`GuardError::WorkerPanic`] reports it.
pub const WORKER_SITE: &str = "par/worker";

/// Hard cap on chunks per plan: enough to keep 64 workers busy, small
/// enough that per-chunk bookkeeping (ordered reduction, pre-charging)
/// stays negligible.
const MAX_CHUNKS: usize = 64;

// ---------------------------------------------------------------------------
// Thread-count resolution
// ---------------------------------------------------------------------------

thread_local! {
    /// In-process override installed by [`with_threads`].
    static OVERRIDE: Cell<Option<usize>> = const { Cell::new(None) };
    /// Set while the current thread is a pool worker executing a chunk;
    /// nested parallel calls then run inline.
    static IN_WORKER: Cell<bool> = const { Cell::new(false) };
}

fn env_threads() -> Option<usize> {
    static ENV: OnceLock<Option<usize>> = OnceLock::new();
    *ENV.get_or_init(|| {
        let raw = std::env::var("X2V_THREADS").ok()?;
        match raw.trim().parse::<usize>() {
            Ok(0) | Err(_) => {
                eprintln!("[x2v-par] ignoring invalid X2V_THREADS={raw:?}");
                None
            }
            Ok(n) => Some(n.min(512)),
        }
    })
}

/// The worker-thread count parallel call sites will use: the innermost
/// [`with_threads`] override, else `X2V_THREADS`, else the machine's
/// available parallelism. Inside a pool worker this is 1 (nested calls run
/// inline). **Never keys any chunk decomposition** — it only sizes the
/// pool that executes a plan.
pub fn threads() -> usize {
    if IN_WORKER.with(|w| w.get()) {
        return 1;
    }
    if let Some(n) = OVERRIDE.with(|o| o.get()) {
        return n.max(1);
    }
    env_threads().unwrap_or_else(|| {
        // Cached: `available_parallelism` re-reads the cgroup cpu quota on
        // every call on Linux, which is far too slow for a per-call-site
        // resolution (hot paths resolve it once per WL round).
        static AVAIL: OnceLock<usize> = OnceLock::new();
        *AVAIL.get_or_init(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        })
    })
}

/// Runs `f` with [`threads`] forced to `n` on the current thread — the
/// in-process equivalent of setting `X2V_THREADS`, used by the
/// determinism battery to compare thread counts without re-executing the
/// test binary. Restores the previous override on exit, including on
/// panic.
pub fn with_threads<R>(n: usize, f: impl FnOnce() -> R) -> R {
    struct Restore(Option<usize>);
    impl Drop for Restore {
        fn drop(&mut self) {
            OVERRIDE.with(|o| o.set(self.0));
        }
    }
    let _restore = Restore(OVERRIDE.with(|o| o.replace(Some(n.max(1)))));
    f()
}

// ---------------------------------------------------------------------------
// Chunk plans
// ---------------------------------------------------------------------------

/// A fixed decomposition of `0..total` into contiguous chunks.
///
/// The decomposition depends only on `total` and `grain` — never on the
/// thread count — which is the root of the crate's determinism contract:
/// every reduction, every RNG substream and every budget pre-charge is
/// keyed by the chunk index of this plan.
#[derive(Clone, Debug)]
pub struct ChunkPlan {
    total: usize,
    n_chunks: usize,
}

impl ChunkPlan {
    /// Splits `total` items into balanced chunks of at least `grain` items
    /// each (except that a non-empty input always yields at least one
    /// chunk), capped at 64 chunks.
    pub fn new(total: usize, grain: usize) -> Self {
        let grain = grain.max(1);
        let n_chunks = if total == 0 {
            0
        } else {
            (total / grain).clamp(1, MAX_CHUNKS)
        };
        ChunkPlan { total, n_chunks }
    }

    /// Number of chunks in the plan.
    pub fn n_chunks(&self) -> usize {
        self.n_chunks
    }

    /// Total number of items covered.
    pub fn total(&self) -> usize {
        self.total
    }

    /// The half-open item range of chunk `idx`. Chunks partition
    /// `0..total` in order; sizes differ by at most one item.
    pub fn range(&self, idx: usize) -> Range<usize> {
        debug_assert!(idx < self.n_chunks);
        let base = self.total / self.n_chunks;
        let rem = self.total % self.n_chunks;
        let start = idx * base + idx.min(rem);
        let len = base + usize::from(idx < rem);
        start..start + len
    }
}

// ---------------------------------------------------------------------------
// Job execution
// ---------------------------------------------------------------------------

/// How one chunk (or the whole job) failed.
enum Failure {
    Guard(GuardError),
    Panic(String),
}

fn render_panic(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_string()
    }
}

/// One result slot, written at most once by whichever worker claims the
/// chunk, read by the coordinator only after the job completes.
struct Slot<T> {
    val: std::cell::UnsafeCell<std::mem::MaybeUninit<T>>,
    init: AtomicBool,
}

unsafe impl<T: Send> Sync for Slot<T> {}

impl<T> Slot<T> {
    fn new() -> Self {
        Slot {
            val: std::cell::UnsafeCell::new(std::mem::MaybeUninit::uninit()),
            init: AtomicBool::new(false),
        }
    }

    /// # Safety
    /// Must be called at most once per slot, with no concurrent access.
    unsafe fn write(&self, v: T) {
        (*self.val.get()).write(v);
        self.init.store(true, Ordering::Release);
    }

    /// # Safety
    /// Must be called at most once, after all writers are done.
    unsafe fn take(&self) -> Option<T> {
        if self.init.swap(false, Ordering::Acquire) {
            Some((*self.val.get()).assume_init_read())
        } else {
            None
        }
    }
}

/// The typed context a job's trampoline executes against; lives on the
/// coordinator's stack for the duration of the job.
struct Ctx<'a, T, F> {
    f: &'a F,
    plan: &'a ChunkPlan,
    slots: &'a [Slot<T>],
    /// Lowest-chunk-index failure observed so far.
    fail: &'a Mutex<Option<(usize, Failure)>>,
    abort: &'a AtomicBool,
}

/// Executes chunk `idx` against a type-erased [`Ctx`]: fault check, panic
/// containment, result/failure recording. Shared by the inline path and
/// the pool workers.
///
/// # Safety
/// `ctx` must point to a live `Ctx<T, F>` of the matching type.
unsafe fn exec_chunk<T, F>(ctx: *const (), idx: usize)
where
    T: Send,
    F: Fn(usize, Range<usize>) -> Result<T, GuardError> + Sync,
{
    let ctx = &*(ctx as *const Ctx<'_, T, F>);
    if ctx.abort.load(Ordering::Relaxed) {
        return;
    }
    let range = ctx.plan.range(idx);
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        let _span = x2v_obs::span("par/chunk");
        if x2v_guard::faults::panic_fault(WORKER_SITE) {
            panic!("injected panic fault at {WORKER_SITE} (chunk {idx})");
        }
        (ctx.f)(idx, range)
    }));
    x2v_obs::counter_add("par/tasks", 1);
    let failure = match outcome {
        Ok(Ok(v)) => {
            // Each chunk index is claimed exactly once, so this write is
            // unique to the slot.
            ctx.slots[idx].write(v);
            return;
        }
        Ok(Err(e)) => Failure::Guard(e),
        Err(payload) => Failure::Panic(render_panic(payload)),
    };
    ctx.abort.store(true, Ordering::Relaxed);
    let mut fail = ctx.fail.lock().expect("par failure lock");
    if fail.as_ref().is_none_or(|(i, _)| idx < *i) {
        *fail = Some((idx, failure));
    }
}

/// A type-erased in-flight job, shared between the coordinator and the
/// pool workers through an `Arc`.
struct JobCore {
    n_chunks: usize,
    k: usize,
    /// Per-lane claim cursors: lane `l` owns chunk indices `l + s·k`.
    lanes: Vec<AtomicUsize>,
    /// Chunks not yet executed-or-skipped; the job is done at zero.
    pending: AtomicUsize,
    run: unsafe fn(*const (), usize),
    /// Points into the coordinator's stack; never dereferenced after
    /// `pending` reaches zero (every chunk index is claimed exactly once,
    /// and the coordinator blocks until all claims are accounted).
    ctx: *const (),
    done: Mutex<bool>,
    done_cv: Condvar,
}

// Safety: `ctx` is only dereferenced through `run` while the coordinator
// keeps the pointee alive (it blocks on `done_cv` until `pending` hits 0),
// and the erased closure/result types are constrained `Sync`/`Send` at
// erasure time in `run_plan`.
unsafe impl Send for JobCore {}
unsafe impl Sync for JobCore {}

impl JobCore {
    /// Claims and executes chunks: the worker's own lane first, then the
    /// other lanes in cyclic order (stealing). Returns the number of
    /// chunks executed off-lane.
    fn run_lanes(&self, home: usize) -> u64 {
        let mut steals = 0u64;
        for offset in 0..self.k {
            let lane = (home + offset) % self.k;
            loop {
                let s = self.lanes[lane].fetch_add(1, Ordering::Relaxed);
                let idx = lane + s * self.k;
                if idx >= self.n_chunks {
                    break;
                }
                if offset != 0 {
                    steals += 1;
                }
                // Safety: idx was claimed exactly once (unique (lane, s)),
                // and pending > 0 keeps the coordinator's ctx alive.
                unsafe { (self.run)(self.ctx, idx) };
                if self.pending.fetch_sub(1, Ordering::AcqRel) == 1 {
                    let mut done = self.done.lock().expect("par done lock");
                    *done = true;
                    self.done_cv.notify_all();
                }
            }
        }
        steals
    }
}

struct PoolState {
    epoch: u64,
    job: Option<Arc<JobCore>>,
}

struct PoolShared {
    state: Mutex<PoolState>,
    work_cv: Condvar,
}

/// A lazily spawned pool of `k` persistent workers. One pool per distinct
/// thread count lives for the rest of the process (workers park between
/// jobs); jobs on one pool are serialised by `submit`.
struct Pool {
    k: usize,
    shared: Arc<PoolShared>,
    submit: Mutex<()>,
}

impl Pool {
    fn spawn(k: usize) -> Arc<Pool> {
        let shared = Arc::new(PoolShared {
            state: Mutex::new(PoolState {
                epoch: 0,
                job: None,
            }),
            work_cv: Condvar::new(),
        });
        for w in 0..k {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name(format!("x2v-par/{k}.{w}"))
                .spawn(move || worker_loop(shared, w))
                .expect("spawn x2v-par worker");
        }
        x2v_obs::counter_add("par/threads", k as u64);
        Arc::new(Pool {
            k,
            shared,
            submit: Mutex::new(()),
        })
    }

    fn get(k: usize) -> Arc<Pool> {
        static POOLS: OnceLock<Mutex<HashMap<usize, Arc<Pool>>>> = OnceLock::new();
        let pools = POOLS.get_or_init(|| Mutex::new(HashMap::new()));
        let mut pools = pools.lock().expect("par pool registry lock");
        Arc::clone(pools.entry(k).or_insert_with(|| Pool::spawn(k)))
    }

    /// Runs a job to completion: posts it, wakes the workers, and blocks
    /// until every chunk has been executed or skipped.
    fn run(&self, n_chunks: usize, run: unsafe fn(*const (), usize), ctx: *const ()) {
        let _serial = self.submit.lock().expect("par submit lock");
        let job = Arc::new(JobCore {
            n_chunks,
            k: self.k,
            lanes: (0..self.k).map(|_| AtomicUsize::new(0)).collect(),
            pending: AtomicUsize::new(n_chunks),
            run,
            ctx,
            done: Mutex::new(false),
            done_cv: Condvar::new(),
        });
        {
            let mut state = self.shared.state.lock().expect("par pool lock");
            state.epoch += 1;
            state.job = Some(Arc::clone(&job));
        }
        self.shared.work_cv.notify_all();
        let mut done = job.done.lock().expect("par done lock");
        while !*done {
            done = job.done_cv.wait(done).expect("par done wait");
        }
        // Unpublish so late-waking workers don't re-enter a finished job's
        // (already drained) lanes after the coordinator frees `ctx`.
        self.shared.state.lock().expect("par pool lock").job = None;
    }
}

fn worker_loop(shared: Arc<PoolShared>, home: usize) {
    let mut seen_epoch = 0u64;
    loop {
        let job = {
            let mut state = shared.state.lock().expect("par pool lock");
            loop {
                if state.epoch != seen_epoch {
                    seen_epoch = state.epoch;
                    if let Some(job) = &state.job {
                        break Arc::clone(job);
                    }
                }
                state = shared.work_cv.wait(state).expect("par pool wait");
            }
        };
        IN_WORKER.with(|w| w.set(true));
        let steals = job.run_lanes(home);
        IN_WORKER.with(|w| w.set(false));
        if steals > 0 {
            x2v_obs::counter_add("par/steals", steals);
        }
    }
}

/// Core driver shared by the public entry points: executes `plan` with
/// `f`, inline when one thread suffices, on the pool otherwise. Results
/// come back in chunk order; the lowest-index failure wins.
fn run_plan<T, F>(plan: &ChunkPlan, f: F) -> Result<Vec<T>, Failure>
where
    T: Send,
    F: Fn(usize, Range<usize>) -> Result<T, GuardError> + Sync,
{
    let n = plan.n_chunks();
    if n == 0 {
        return Ok(Vec::new());
    }
    let k = threads().min(n);
    if k <= 1 {
        // Serial fast path: same chunk order, same fault check, same
        // failure semantics — but none of the slot/type-erasure machinery,
        // which would otherwise dominate sub-microsecond call sites (a
        // 20-node WL round costs less than the bookkeeping).
        let mut out = Vec::with_capacity(n);
        for idx in 0..n {
            let range = plan.range(idx);
            let outcome = catch_unwind(AssertUnwindSafe(|| {
                let _span = x2v_obs::span("par/chunk");
                if x2v_guard::faults::panic_fault(WORKER_SITE) {
                    panic!("injected panic fault at {WORKER_SITE} (chunk {idx})");
                }
                f(idx, range)
            }));
            x2v_obs::counter_add("par/tasks", 1);
            match outcome {
                Ok(Ok(v)) => out.push(v),
                Ok(Err(e)) => return Err(Failure::Guard(e)),
                Err(payload) => return Err(Failure::Panic(render_panic(payload))),
            }
        }
        return Ok(out);
    }
    let slots: Vec<Slot<T>> = (0..n).map(|_| Slot::new()).collect();
    let fail = Mutex::new(None);
    let abort = AtomicBool::new(false);
    let ctx = Ctx {
        f: &f,
        plan,
        slots: &slots,
        fail: &fail,
        abort: &abort,
    };
    let ctx_ptr = &ctx as *const Ctx<'_, T, F> as *const ();
    {
        let _span = x2v_obs::span("par/job");
        // Safety: `ctx` stays alive until Pool::run returns, which is
        // after every chunk is accounted; T: Send and F: Sync bound the
        // erased types.
        Pool::get(k).run(n, exec_chunk::<T, F>, ctx_ptr);
    }
    match fail.into_inner().expect("par failure lock") {
        Some((_, failure)) => {
            // Drop any chunk results that did complete.
            for slot in &slots {
                unsafe {
                    drop(slot.take());
                }
            }
            Err(failure)
        }
        None => Ok(slots
            .iter()
            .map(|slot| unsafe { slot.take() }.expect("complete job fills every slot"))
            .collect()),
    }
}

// ---------------------------------------------------------------------------
// Public entry points
// ---------------------------------------------------------------------------

/// Maps `f` over the chunks of `plan`, returning per-chunk results in
/// chunk-index order. A panic inside `f` (or an armed
/// `panic@par/worker` fault) aborts the job, skips the remaining chunks
/// and re-panics on the caller — exactly like the serial loop it
/// replaces; the pool stays usable.
pub fn map_chunks<T, F>(plan: &ChunkPlan, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize, Range<usize>) -> T + Sync,
{
    match run_plan(plan, |idx, range| Ok(f(idx, range))) {
        Ok(results) => results,
        Err(Failure::Panic(detail)) => panic!("{detail}"),
        Err(Failure::Guard(_)) => unreachable!("infallible chunks cannot return GuardError"),
    }
}

/// Fallible [`map_chunks`]: a chunk returning `Err` aborts the job (the
/// remaining chunks are skipped) and the error surfaces to the caller; a
/// panicking chunk surfaces as [`GuardError::WorkerPanic`]. When several
/// chunks fail concurrently the lowest *observed* chunk index wins — call
/// sites that need a fully deterministic trip point pre-charge their
/// budget on the coordinator (see the crate docs) so worker-side errors
/// are only ever the timing-dependent deadline/cancel kind.
pub fn try_map_chunks<T, F>(plan: &ChunkPlan, f: F) -> Result<Vec<T>, GuardError>
where
    T: Send,
    F: Fn(usize, Range<usize>) -> Result<T, GuardError> + Sync,
{
    match run_plan(plan, f) {
        Ok(results) => Ok(results),
        Err(Failure::Guard(e)) => Err(e),
        Err(Failure::Panic(detail)) => Err(GuardError::WorkerPanic {
            site: WORKER_SITE,
            chunk: 0,
            detail,
        }),
    }
}

/// Maps `f` over `0..total` items in parallel chunks of at least `grain`
/// items, returning the per-item results in item order.
pub fn map_items<T, F>(total: usize, grain: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let plan = ChunkPlan::new(total, grain);
    let chunks = map_chunks(&plan, |_, range| range.map(&f).collect::<Vec<T>>());
    let mut out = Vec::with_capacity(total);
    for chunk in chunks {
        out.extend(chunk);
    }
    out
}

/// Fallible [`map_items`].
pub fn try_map_items<T, F>(total: usize, grain: usize, f: F) -> Result<Vec<T>, GuardError>
where
    T: Send,
    F: Fn(usize) -> Result<T, GuardError> + Sync,
{
    let plan = ChunkPlan::new(total, grain);
    let chunks = try_map_chunks(&plan, |_, range| {
        range.map(&f).collect::<Result<Vec<T>, GuardError>>()
    })?;
    let mut out = Vec::with_capacity(total);
    for chunk in chunks {
        out.extend(chunk);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunk_plans_partition_and_ignore_thread_count() {
        for total in [0usize, 1, 7, 64, 100, 1000, 4097] {
            for grain in [1usize, 4, 64, 1000] {
                let plan = ChunkPlan::new(total, grain);
                let mut covered = 0usize;
                for idx in 0..plan.n_chunks() {
                    let r = plan.range(idx);
                    assert_eq!(r.start, covered, "chunks must be contiguous");
                    assert!(!r.is_empty());
                    covered = r.end;
                }
                assert_eq!(covered, total, "chunks must cover 0..total");
                assert!(plan.n_chunks() <= MAX_CHUNKS);
                // No thread-count input exists: the plan is a pure
                // function of (total, grain) by construction.
            }
        }
    }

    #[test]
    fn map_items_is_identity_ordered_for_every_thread_count() {
        let expected: Vec<u64> = (0..1000u64).map(|i| i * i).collect();
        for t in [1usize, 2, 3, 8] {
            let got = with_threads(t, || map_items(1000, 8, |i| (i as u64) * (i as u64)));
            assert_eq!(got, expected, "threads={t}");
        }
    }

    #[test]
    fn try_map_surfaces_the_error_and_skips_cleanly() {
        let plan = ChunkPlan::new(100, 10);
        let err = with_threads(4, || {
            try_map_chunks(&plan, |idx, _range| {
                if idx == 3 {
                    Err(GuardError::invalid_input("par/test", "chunk 3 is bad"))
                } else {
                    Ok(idx)
                }
            })
        })
        .unwrap_err();
        assert!(matches!(err, GuardError::InvalidInput { .. }));
        // The pool is not poisoned: the next job on the same thread count
        // runs to completion.
        let ok = with_threads(4, || map_items(50, 5, |i| i + 1));
        assert_eq!(ok, (1..=50).collect::<Vec<_>>());
    }

    #[test]
    fn panic_in_chunk_propagates_and_pool_survives() {
        let plan = ChunkPlan::new(64, 1);
        let caught = std::panic::catch_unwind(|| {
            with_threads(4, || {
                map_chunks(&plan, |idx, _| {
                    if idx == 7 {
                        panic!("deliberate chunk panic");
                    }
                    idx
                })
            })
        });
        let msg = render_panic(caught.unwrap_err());
        assert!(msg.contains("deliberate chunk panic"), "got {msg:?}");
        let ok = with_threads(4, || map_items(10, 1, |i| i));
        assert_eq!(ok, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn nested_calls_run_inline_without_deadlock() {
        let out = with_threads(4, || {
            map_items(8, 1, |i| {
                // Nested call from a worker: must take the inline path.
                let inner: usize = map_items(100, 10, |j| j).into_iter().sum();
                (i, inner, threads())
            })
        });
        for (i, inner, nested_threads) in out {
            assert_eq!(inner, 4950, "item {i}");
            assert_eq!(nested_threads, 1, "nested threads() must report inline");
        }
    }
}
