//! Extending distances to graphs of different orders via blow-ups
//! (Section 5.1, after [67, §8.1]): replace each node by `k` twins so both
//! graphs reach the least common multiple of their orders, then compare
//! with normalised distances.

use crate::matrix_dist::{dist_exact, GraphNorm};
use x2v_graph::ops::blow_up;
use x2v_graph::Graph;

fn gcd(a: usize, b: usize) -> usize {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

/// Least common multiple.
pub fn lcm(a: usize, b: usize) -> usize {
    a / gcd(a, b) * b
}

/// Blows both graphs up to order `lcm(|G|, |H|)`.
pub fn blow_up_to_common(g: &Graph, h: &Graph) -> (Graph, Graph) {
    let target = lcm(g.order().max(1), h.order().max(1));
    (
        blow_up(g, target / g.order()),
        blow_up(h, target / h.order()),
    )
}

/// Edit distance between graphs of arbitrary orders: blow up to the lcm,
/// take the exact distance, and normalise by the square of the blow-up
/// order so the value is comparable across scales (graphon-style density
/// normalisation).
///
/// # Panics
/// If the lcm exceeds 10 (the exact-search limit).
pub fn normalised_distance_any_order(g: &Graph, h: &Graph, norm: GraphNorm) -> f64 {
    let (gb, hb) = blow_up_to_common(g, h);
    let n = gb.order() as f64;
    dist_exact(&gb, &hb, norm) / (n * n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use x2v_graph::generators::{complete, cycle, path};

    #[test]
    fn lcm_basics() {
        assert_eq!(lcm(4, 6), 12);
        assert_eq!(lcm(5, 5), 5);
        assert_eq!(lcm(1, 7), 7);
    }

    #[test]
    fn blow_up_orders_match() {
        let g = cycle(3);
        let h = path(4);
        let (gb, hb) = blow_up_to_common(&g, &h);
        assert_eq!(gb.order(), 12);
        assert_eq!(hb.order(), 12);
    }

    #[test]
    fn same_graph_different_scale_small_distance() {
        // C3 vs its own 2-blow-up C3[2] at the common order 6: distance 0?
        // Not exactly — blow-ups of the same graph to the same order are
        // identical, so the distance vanishes.
        let g = cycle(3);
        let d = normalised_distance_any_order(&g, &blow_up(&g, 2), GraphNorm::Entrywise(1.0));
        assert!(d < 1e-9);
    }

    #[test]
    fn dense_vs_sparse_larger_than_similar_densities() {
        // K2 (density 1) vs P3, and C3 vs P3: compare normalised distances.
        let d_far = normalised_distance_any_order(
            &complete(2),
            &x2v_graph::Graph::empty(3),
            GraphNorm::Entrywise(1.0),
        );
        let d_near = normalised_distance_any_order(&cycle(3), &path(3), GraphNorm::Entrywise(1.0));
        assert!(d_far > d_near);
    }
}
