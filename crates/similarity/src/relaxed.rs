//! The relaxed distance (eq. 5.5): minimise `‖AX − XB‖_F` over doubly
//! stochastic `X` by Frank-Wolfe. A pseudo-metric: zero exactly on
//! fractionally isomorphic pairs (Theorem 3.2), and efficiently computable —
//! the tractable surrogate the paper proposes for the NP-hard exact
//! distances.

use x2v_graph::Graph;
use x2v_linalg::birkhoff::{frank_wolfe_fractional_iso, FrankWolfeResult};
use x2v_linalg::Matrix;

/// Default Frank-Wolfe budget.
const MAX_ITERS: usize = 2000;
const TOL: f64 = 1e-9;

/// The relaxed Frobenius distance between equal-order graphs.
///
/// Frank-Wolfe returns an iterate, so the value is an *upper bound* on the
/// true relaxed optimum, tight to roughly 1e-3 within the default budget —
/// comfortably below the smallest positive exact distances on small graphs,
/// so zero/non-zero classification (Theorem 3.2) is reliable.
///
/// # Panics
/// If orders differ.
pub fn relaxed_distance(g: &Graph, h: &Graph) -> f64 {
    relaxed_distance_full(g, h).objective
}

/// Full Frank-Wolfe result (iterate, objective, iteration count).
pub fn relaxed_distance_full(g: &Graph, h: &Graph) -> FrankWolfeResult {
    assert_eq!(g.order(), h.order(), "relaxed distance needs equal orders");
    let n = g.order();
    let a = Matrix::from_flat(n, n, g.adjacency_flat());
    let b = Matrix::from_flat(n, n, h.adjacency_flat());
    frank_wolfe_fractional_iso(&a, &b, MAX_ITERS, TOL)
}

/// Whether the relaxed distance certifies fractional isomorphism
/// (objective below `tol`).
pub fn numerically_fractionally_isomorphic(g: &Graph, h: &Graph, tol: f64) -> bool {
    relaxed_distance(g, h) < tol
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix_dist::{dist_exact, GraphNorm};
    use x2v_graph::generators::{cycle, path, star};
    use x2v_graph::ops::disjoint_union;
    use x2v_wl::fractional::fractionally_isomorphic;

    #[test]
    fn zero_exactly_on_fractionally_isomorphic_pairs() {
        let c6 = cycle(6);
        let tt = disjoint_union(&cycle(3), &cycle(3));
        assert!(fractionally_isomorphic(&c6, &tt));
        assert!(relaxed_distance(&c6, &tt) < 1e-7);
        // Non-equivalent graphs stay bounded away from zero.
        let p6 = path(6);
        assert!(!fractionally_isomorphic(&c6, &p6));
        assert!(relaxed_distance(&c6, &p6) > 1e-3);
    }

    #[test]
    fn relaxed_lower_bounds_exact() {
        // The Birkhoff polytope contains the permutation matrices, so the
        // relaxed optimum is ≤ the exact Frobenius distance.
        let pairs = [
            (cycle(5), path(5)),
            (star(4), path(5)),
            (cycle(6), disjoint_union(&cycle(3), &cycle(3))),
        ];
        for (g, h) in &pairs {
            let relaxed = relaxed_distance(g, h);
            let exact = dist_exact(g, h, GraphNorm::Entrywise(2.0));
            assert!(
                relaxed <= exact + 1e-6,
                "relaxed {relaxed} must lower-bound exact {exact}"
            );
        }
    }

    #[test]
    fn pseudo_metric_not_metric() {
        // The paper's point: distance 0 between non-isomorphic graphs.
        let c6 = cycle(6);
        let tt = disjoint_union(&cycle(3), &cycle(3));
        assert!(!x2v_graph::iso::are_isomorphic(&c6, &tt));
        assert!(numerically_fractionally_isomorphic(&c6, &tt, 1e-6));
    }

    #[test]
    fn agrees_with_wl_on_small_sample() {
        let graphs = [
            cycle(6),
            path(6),
            star(5),
            disjoint_union(&cycle(3), &cycle(3)),
        ];
        for g in &graphs {
            for h in &graphs {
                let wl = fractionally_isomorphic(g, h);
                let fw = numerically_fractionally_isomorphic(g, h, 1e-6);
                assert_eq!(wl, fw, "{g:?} vs {h:?}");
            }
        }
    }
}
