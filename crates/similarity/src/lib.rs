//! # x2v-similarity — graph distance measures (Section 5)
//!
//! * [`matrix_dist`] — `dist_‖·‖(G, H) = min_P ‖PᵀAP − B‖` over permutation
//!   matrices, exactly (branch-and-bound for entrywise norms, enumeration
//!   for operator/cut norms), plus the edit-distance interpretations (5.3)
//!   and (5.4);
//! * [`relaxed`] — the convex relaxation (5.5) over doubly stochastic
//!   matrices, solved by Frank-Wolfe: a pseudo-metric that is zero exactly
//!   on fractionally isomorphic pairs (Theorem 3.2);
//! * [`cutdist`] — the cut distance `dist_□`;
//! * [`blowup`] — lcm blow-ups that extend the distances to graphs of
//!   different orders (Section 5.1 after [67]);
//! * [`compare`] — machinery for the paper's Section 5.2 question:
//!   correlating matrix-norm distances with homomorphism-embedding
//!   distances.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod blowup;
pub mod compare;
pub mod cutdist;
pub mod matrix_dist;
pub mod relaxed;
