//! Section 5.2 machinery: do homomorphism-embedding distances track
//! matrix-norm distances? The paper poses this as an open direction; this
//! module provides the empirical comparison used by the `exp_similarity`
//! experiment.

use crate::matrix_dist::{dist_exact, GraphNorm};
use crate::relaxed::relaxed_distance;
use x2v_graph::Graph;
use x2v_hom::vectors::HomBasis;
use x2v_linalg::vector::euclidean;

/// All pairwise values of a symmetric graph-distance function over a family
/// (upper triangle, row-major order).
pub fn pairwise<F: FnMut(&Graph, &Graph) -> f64>(graphs: &[Graph], mut d: F) -> Vec<f64> {
    let mut out = Vec::new();
    for i in 0..graphs.len() {
        for j in (i + 1)..graphs.len() {
            out.push(d(&graphs[i], &graphs[j]));
        }
    }
    out
}

/// Pearson correlation coefficient.
pub fn pearson(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "length mismatch");
    let n = x.len() as f64;
    let mx = x.iter().sum::<f64>() / n;
    let my = y.iter().sum::<f64>() / n;
    let cov: f64 = x.iter().zip(y).map(|(a, b)| (a - mx) * (b - my)).sum();
    let vx: f64 = x.iter().map(|a| (a - mx) * (a - mx)).sum();
    let vy: f64 = y.iter().map(|b| (b - my) * (b - my)).sum();
    if vx == 0.0 || vy == 0.0 {
        0.0
    } else {
        cov / (vx * vy).sqrt()
    }
}

/// Spearman rank correlation.
pub fn spearman(x: &[f64], y: &[f64]) -> f64 {
    pearson(&ranks(x), &ranks(y))
}

fn ranks(x: &[f64]) -> Vec<f64> {
    let mut idx: Vec<usize> = (0..x.len()).collect();
    idx.sort_by(|&a, &b| x[a].partial_cmp(&x[b]).expect("finite values"));
    let mut r = vec![0.0; x.len()];
    let mut i = 0;
    while i < idx.len() {
        // average ranks over ties
        let mut j = i;
        while j + 1 < idx.len() && x[idx[j + 1]] == x[idx[i]] {
            j += 1;
        }
        let avg = (i + j) as f64 / 2.0;
        for &k in &idx[i..=j] {
            r[k] = avg;
        }
        i = j + 1;
    }
    r
}

/// The comparison report of one family: correlations between the
/// hom-embedding distance and several matrix distances.
pub struct ComparisonReport {
    /// Pearson correlation with the exact Frobenius distance.
    pub pearson_frobenius: f64,
    /// Spearman correlation with the exact Frobenius distance.
    pub spearman_frobenius: f64,
    /// Pearson correlation with the relaxed (Frank-Wolfe) distance.
    pub pearson_relaxed: f64,
    /// Pearson correlation with the edit distance.
    pub pearson_edit: f64,
}

/// Runs the Section 5.2 comparison over an equal-order family.
pub fn compare_hom_vs_matrix(graphs: &[Graph], basis: &HomBasis) -> ComparisonReport {
    let embeds: Vec<Vec<f64>> = graphs.iter().map(|g| basis.embed_log(g)).collect();
    let mut hom_d = Vec::new();
    for i in 0..graphs.len() {
        for j in (i + 1)..graphs.len() {
            hom_d.push(euclidean(&embeds[i], &embeds[j]));
        }
    }
    let frob = pairwise(graphs, |g, h| dist_exact(g, h, GraphNorm::Entrywise(2.0)));
    let edit = pairwise(graphs, |g, h| dist_exact(g, h, GraphNorm::Entrywise(1.0)));
    let relax = pairwise(graphs, relaxed_distance_wrapper);
    ComparisonReport {
        pearson_frobenius: pearson(&hom_d, &frob),
        spearman_frobenius: spearman(&hom_d, &frob),
        pearson_relaxed: pearson(&hom_d, &relax),
        pearson_edit: pearson(&hom_d, &edit),
    }
}

fn relaxed_distance_wrapper(g: &Graph, h: &Graph) -> f64 {
    relaxed_distance(g, h)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn correlation_basics() {
        assert!((pearson(&[1.0, 2.0, 3.0], &[2.0, 4.0, 6.0]) - 1.0).abs() < 1e-12);
        assert!((pearson(&[1.0, 2.0, 3.0], &[3.0, 2.0, 1.0]) + 1.0).abs() < 1e-12);
        assert_eq!(pearson(&[1.0, 1.0], &[2.0, 3.0]), 0.0);
        assert!((spearman(&[1.0, 5.0, 100.0], &[1.0, 2.0, 3.0]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ranks_average_ties() {
        assert_eq!(ranks(&[1.0, 1.0, 2.0]), vec![0.5, 0.5, 2.0]);
    }

    #[test]
    fn hom_distance_positively_correlates_on_structured_family() {
        // Family of 7-node graphs spanning trees, cycles and dense graphs.
        let graphs = vec![
            x2v_graph::generators::path(7),
            x2v_graph::generators::cycle(7),
            x2v_graph::generators::star(6),
            x2v_graph::generators::complete(7),
            x2v_graph::generators::circulant(7, &[1, 2]),
        ];
        let basis = HomBasis::trees_and_cycles(10);
        let report = compare_hom_vs_matrix(&graphs, &basis);
        assert!(
            report.spearman_frobenius > 0.3,
            "expected positive rank correlation, got {}",
            report.spearman_frobenius
        );
    }
}
