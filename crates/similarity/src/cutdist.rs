//! The cut distance `dist_□` (Section 5.1): minimum over alignments of the
//! cut norm of the adjacency difference — the distance under which graph
//! limit theory works ([67]) and the only matrix distance with a constant-
//! factor approximation (Alon–Naor).

use crate::matrix_dist::{dist_exact, GraphNorm};
use x2v_graph::Graph;
use x2v_linalg::norms::{cut_norm_exact, cut_norm_local_search};
use x2v_linalg::Matrix;

/// Exact cut distance (small graphs: permutation enumeration × exact cut
/// norm).
pub fn cut_distance_exact(g: &Graph, h: &Graph) -> f64 {
    dist_exact(g, h, GraphNorm::Cut)
}

/// Heuristic cut distance for larger graphs: greedy degree-ordered
/// alignment, then local-search cut norm of the difference. An upper bound
/// on the aligned cut norm and a practical proxy for `dist_□`.
pub fn cut_distance_greedy(g: &Graph, h: &Graph) -> f64 {
    assert_eq!(g.order(), h.order(), "equal orders required");
    let n = g.order();
    // Align by sorted degree, ties by neighbour-degree sums.
    let key = |gr: &Graph, v: usize| {
        let nd: usize = gr.neighbours(v).iter().map(|&w| gr.degree(w)).sum();
        (gr.degree(v), nd)
    };
    let mut gv: Vec<usize> = (0..n).collect();
    let mut hv: Vec<usize> = (0..n).collect();
    gv.sort_by_key(|&v| key(g, v));
    hv.sort_by_key(|&v| key(h, v));
    // map g-node gv[i] → h-node hv[i].
    let mut diff = Matrix::zeros(n, n);
    let mut perm = vec![0usize; n];
    for i in 0..n {
        perm[gv[i]] = hv[i];
    }
    for u in 0..n {
        for v in 0..n {
            let a = f64::from(g.has_edge(u, v));
            let b = f64::from(h.has_edge(perm[u], perm[v]));
            diff[(perm[u], perm[v])] = a - b;
        }
    }
    if n <= 20 {
        cut_norm_exact(&diff)
    } else {
        cut_norm_local_search(&diff)
    }
}

/// Normalised cut distance `dist_□ / n²` (the graphon scaling).
pub fn cut_distance_normalised(g: &Graph, h: &Graph) -> f64 {
    let n = g.order() as f64;
    cut_distance_exact(g, h) / (n * n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use x2v_graph::generators::{complete, cycle, gnp, path};
    use x2v_graph::ops::permute;

    #[test]
    fn zero_for_isomorphic() {
        let g = cycle(5);
        let h = permute(&g, &[4, 2, 0, 3, 1]);
        assert!(cut_distance_exact(&g, &h) < 1e-9);
    }

    #[test]
    fn complete_vs_empty_is_total_edges() {
        let k = complete(5);
        let e = x2v_graph::Graph::empty(5);
        // All 20 ordered non-diagonal pairs differ; best S=T=V gives 20.
        assert_eq!(cut_distance_exact(&k, &e), 20.0);
        assert!((cut_distance_normalised(&k, &e) - 0.8).abs() < 1e-9);
    }

    #[test]
    fn cut_bounded_by_entrywise_l1() {
        let a = cycle(6);
        let b = path(6);
        let cut = cut_distance_exact(&a, &b);
        let l1 = dist_exact(&a, &b, GraphNorm::Entrywise(1.0));
        assert!(cut <= l1 + 1e-9);
        assert!(cut > 0.0);
    }

    #[test]
    fn greedy_upper_bounds_exact() {
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..4 {
            let g = gnp(7, 0.4, &mut rng);
            let h = gnp(7, 0.4, &mut rng);
            let exact = cut_distance_exact(&g, &h);
            let greedy = cut_distance_greedy(&g, &h);
            assert!(greedy >= exact - 1e-9, "greedy {greedy} < exact {exact}");
        }
    }
}
