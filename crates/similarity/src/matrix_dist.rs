//! Exact matrix-norm graph distances (Section 5.1).
//!
//! `dist_‖·‖(G, H) = min_P ‖AP − PB‖` over permutation matrices `P`
//! (equivalently `‖PᵀAP − B‖`). NP-hard in general; we compute it exactly
//! for small graphs: branch-and-bound with incremental lower bounds for the
//! entrywise `ℓ_p` norms, full enumeration for operator norms.

use x2v_graph::Graph;
use x2v_linalg::norms;
use x2v_linalg::Matrix;

/// The matrix norms the distance can be taken over.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum GraphNorm {
    /// Entrywise `ℓ_p` (`p = 2` is Frobenius, `p = 1` twice the edit
    /// distance).
    Entrywise(f64),
    /// Operator 1-norm (max column sum) — the per-node edit distance (5.4).
    Operator1,
    /// Operator ∞-norm (max row sum).
    OperatorInf,
    /// Spectral norm.
    Spectral,
    /// Cut norm.
    Cut,
}

/// Exact `dist_‖·‖(G, H)` for graphs of equal order.
///
/// # Panics
/// If orders differ (use [`crate::blowup`] first) or order exceeds 10.
pub fn dist_exact(g: &Graph, h: &Graph, norm: GraphNorm) -> f64 {
    let _timer = x2v_obs::span("similarity/dist_exact");
    assert_eq!(g.order(), h.order(), "blow up to equal orders first");
    let n = g.order();
    assert!(n <= 10, "exact distance limited to order 10");
    match norm {
        GraphNorm::Entrywise(p) => entrywise_bnb(g, h, p),
        _ => enumerate_all(g, h, norm),
    }
}

/// Edit distance: the minimum number of edge flips turning `G` into a graph
/// isomorphic to `H` — equals `dist_1 / 2` (eq. 5.3).
pub fn edit_distance(g: &Graph, h: &Graph) -> f64 {
    dist_exact(g, h, GraphNorm::Entrywise(1.0)) / 2.0
}

/// Branch-and-bound over assignments `perm[i of G] = node of H`, pruning on
/// the partial `Σ |a − b|^p` over fully-assigned pairs.
fn entrywise_bnb(g: &Graph, h: &Graph, p: f64) -> f64 {
    let n = g.order();
    let a = g.adjacency_flat();
    let b = h.adjacency_flat();
    let mut perm = vec![usize::MAX; n];
    let mut used = vec![false; n];
    let mut best = f64::INFINITY;
    #[allow(clippy::too_many_arguments)] // recursion state is clearer spelled out
    fn rec(
        depth: usize,
        n: usize,
        a: &[f64],
        b: &[f64],
        p: f64,
        perm: &mut [usize],
        used: &mut [bool],
        partial: f64,
        best: &mut f64,
    ) {
        if partial >= *best {
            return;
        }
        if depth == n {
            *best = partial;
            return;
        }
        for cand in 0..n {
            if used[cand] {
                continue;
            }
            // Added cost: pairs (depth, j) for j <= depth (both assigned).
            let mut add = 0.0;
            for j in 0..=depth {
                let pj = if j == depth { cand } else { perm[j] };
                let av = a[depth * n + j];
                let bv = b[cand * n + pj];
                if av != bv {
                    // Symmetric matrix: the pair (j, depth) contributes too,
                    // except on the diagonal.
                    let d = (av - bv).abs().powf(p);
                    add += if j == depth { d } else { 2.0 * d };
                }
            }
            perm[depth] = cand;
            used[cand] = true;
            rec(depth + 1, n, a, b, p, perm, used, partial + add, best);
            used[cand] = false;
            perm[depth] = usize::MAX;
        }
    }
    rec(0, n, &a, &b, p, &mut perm, &mut used, 0.0, &mut best);
    best.powf(1.0 / p)
}

fn enumerate_all(g: &Graph, h: &Graph, norm: GraphNorm) -> f64 {
    let n = g.order();
    let a = Matrix::from_flat(n, n, g.adjacency_flat());
    let b = Matrix::from_flat(n, n, h.adjacency_flat());
    let mut perm: Vec<usize> = (0..n).collect();
    let mut best = f64::INFINITY;
    permute_rec(&mut perm, 0, &mut |perm| {
        // M = PᵀAP − B where node i of G goes to perm[i] of H:
        // (PᵀAP)[perm[i], perm[j]] = A[i, j].
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..n {
                m[(perm[i], perm[j])] = a[(i, j)];
            }
        }
        let diff = &m - &b;
        let val = match norm {
            GraphNorm::Entrywise(p) => norms::entrywise_p(&diff, p),
            GraphNorm::Operator1 => norms::operator_1(&diff),
            GraphNorm::OperatorInf => norms::operator_inf(&diff),
            GraphNorm::Spectral => norms::spectral(&diff),
            GraphNorm::Cut => norms::cut_norm_exact(&diff),
        };
        if val < best {
            best = val;
        }
    });
    best
}

fn permute_rec(perm: &mut Vec<usize>, at: usize, visit: &mut impl FnMut(&[usize])) {
    if at == perm.len() {
        visit(perm);
        return;
    }
    for i in at..perm.len() {
        perm.swap(at, i);
        permute_rec(perm, at + 1, visit);
        perm.swap(at, i);
    }
}

/// The per-node edit distance of eq. (5.4): minimum over bijections of the
/// maximum per-node symmetric difference of neighbourhoods — equal to
/// `dist_⟨1⟩`.
pub fn per_node_edit_distance(g: &Graph, h: &Graph) -> f64 {
    dist_exact(g, h, GraphNorm::Operator1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use x2v_graph::generators::{complete, cycle, path, star};
    use x2v_graph::ops::permute;

    #[test]
    fn isomorphic_graphs_have_zero_distance() {
        let g = cycle(5);
        let h = permute(&g, &[2, 0, 3, 1, 4]);
        for norm in [
            GraphNorm::Entrywise(1.0),
            GraphNorm::Entrywise(2.0),
            GraphNorm::Operator1,
            GraphNorm::Spectral,
            GraphNorm::Cut,
        ] {
            assert!(dist_exact(&g, &h, norm) < 1e-9, "{norm:?}");
        }
        assert_eq!(edit_distance(&g, &h), 0.0);
    }

    #[test]
    fn single_edge_flip() {
        // C4 vs P4: one edge removal → edit distance 1, dist_1 = 2,
        // Frobenius = √2.
        let c = cycle(4);
        let p = path(4);
        assert_eq!(edit_distance(&c, &p), 1.0);
        assert!((dist_exact(&c, &p, GraphNorm::Entrywise(2.0)) - 2f64.sqrt()).abs() < 1e-9);
        // Per-node: the flip touches two nodes, one edge each.
        assert_eq!(per_node_edit_distance(&c, &p), 1.0);
    }

    #[test]
    fn complete_vs_empty() {
        let k = complete(4);
        let e = x2v_graph::Graph::empty(4);
        assert_eq!(edit_distance(&k, &e), 6.0);
        assert_eq!(per_node_edit_distance(&k, &e), 3.0);
    }

    #[test]
    fn symmetry_of_distance() {
        let a = star(4);
        let b = path(5);
        for norm in [
            GraphNorm::Entrywise(2.0),
            GraphNorm::Operator1,
            GraphNorm::Cut,
        ] {
            let d1 = dist_exact(&a, &b, norm);
            let d2 = dist_exact(&b, &a, norm);
            assert!((d1 - d2).abs() < 1e-9, "{norm:?}: {d1} vs {d2}");
        }
    }

    #[test]
    fn triangle_inequality_samples() {
        let graphs = [cycle(5), path(5), star(4)];
        let d = |x: &x2v_graph::Graph, y: &x2v_graph::Graph| {
            dist_exact(x, y, GraphNorm::Entrywise(2.0))
        };
        for a in &graphs {
            for b in &graphs {
                for c in &graphs {
                    assert!(d(a, c) <= d(a, b) + d(b, c) + 1e-9);
                }
            }
        }
    }

    #[test]
    fn bnb_matches_enumeration() {
        let a = cycle(5);
        let b = star(4);
        let fast = entrywise_bnb(&a, &b, 2.0);
        let slow = enumerate_all(&a, &b, GraphNorm::Entrywise(2.0));
        assert!((fast - slow).abs() < 1e-9);
        let fast1 = entrywise_bnb(&a, &b, 1.0);
        let slow1 = enumerate_all(&a, &b, GraphNorm::Entrywise(1.0));
        assert!((fast1 - slow1).abs() < 1e-9);
    }
}
