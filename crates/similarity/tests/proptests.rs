//! Property-based tests: distance measures are permutation-invariant
//! pseudo-metrics and relaxations lower-bound exact distances.

use proptest::prelude::*;
use x2v_graph::ops::permute;
use x2v_graph::Graph;
use x2v_similarity::matrix_dist::{dist_exact, GraphNorm};
use x2v_similarity::relaxed::relaxed_distance;

fn arb_graph(n: usize) -> impl Strategy<Value = Graph> {
    any::<u32>().prop_map(move |mask| {
        let pairs: Vec<(usize, usize)> = (0..n)
            .flat_map(|u| ((u + 1)..n).map(move |v| (u, v)))
            .collect();
        let edges: Vec<(usize, usize)> = pairs
            .iter()
            .enumerate()
            .filter(|&(i, _)| mask >> (i % 31) & 1 == 1)
            .map(|(_, &e)| e)
            .collect();
        Graph::from_edges_unchecked(n, &edges)
    })
}

fn seeded_perm(n: usize, seed: u64) -> Vec<usize> {
    let mut perm: Vec<usize> = (0..n).collect();
    let mut s = seed | 1;
    for i in (1..n).rev() {
        s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
        perm.swap(i, (s >> 33) as usize % (i + 1));
    }
    perm
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn distance_zero_on_isomorphic_copies(g in arb_graph(6), seed in any::<u64>()) {
        let h = permute(&g, &seeded_perm(6, seed));
        prop_assert!(dist_exact(&g, &h, GraphNorm::Entrywise(2.0)) < 1e-9);
        prop_assert!(dist_exact(&g, &h, GraphNorm::Entrywise(1.0)) < 1e-9);
    }

    #[test]
    fn distance_symmetric(g in arb_graph(5), h in arb_graph(5)) {
        for norm in [GraphNorm::Entrywise(1.0), GraphNorm::Entrywise(2.0)] {
            let d1 = dist_exact(&g, &h, norm);
            let d2 = dist_exact(&h, &g, norm);
            prop_assert!((d1 - d2).abs() < 1e-9);
        }
    }

    #[test]
    fn relaxed_lower_bounds_exact(g in arb_graph(6), h in arb_graph(6)) {
        let relaxed = relaxed_distance(&g, &h);
        let exact = dist_exact(&g, &h, GraphNorm::Entrywise(2.0));
        // Frank-Wolfe returns an iterate (an upper bound on the relaxed
        // optimum), so allow its convergence slack.
        prop_assert!(relaxed <= exact + 1e-2, "relaxed {} > exact {}", relaxed, exact);
    }

    #[test]
    fn edit_distance_bounded_by_symmetric_difference(g in arb_graph(6), h in arb_graph(6)) {
        // Identity alignment gives an upper bound on the optimal alignment.
        let naive: usize = {
            let mut count = 0;
            for u in 0..6 {
                for v in (u + 1)..6 {
                    if g.has_edge(u, v) != h.has_edge(u, v) {
                        count += 1;
                    }
                }
            }
            count
        };
        let opt = x2v_similarity::matrix_dist::edit_distance(&g, &h);
        prop_assert!(opt <= naive as f64 + 1e-9);
    }
}
